#!/usr/bin/env python3
"""MiniQMC: wide arrival distributions and how much communication they hide
(§4.2.3, Figures 8/9, and the §5 "binning vs fine-grained" discussion).

MiniQMC is the application where the paper sees the largest opportunity:
the per-thread mover times spread over tens of milliseconds every iteration,
so half the cores sit idle waiting for the slowest walkers.  This example

* reproduces the Figure 8 percentile plot and the Figure 9 single-iteration
  histogram,
* quantifies the idle time (reclaimable time / idle ratio), and
* sweeps the early-bird model over message sizes and partition granularities
  to show when fine-grained delivery vs binned aggregation wins.

Run with::

    python examples/miniqmc_overlap.py
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import BinnedStrategy, BulkStrategy, FineGrainedStrategy, ThreadTimingAnalyzer
from repro.core.earlybird import EarlyBirdModel
from repro.core.laggard import IterationClass
from repro.core.strategies import compare_strategies
from repro.experiments.campaign import run_campaign
from repro.experiments.config import CampaignConfig
from repro.experiments.figures import figure9_miniqmc_histogram
from repro.viz import ascii_histogram, ascii_percentile_plot, ascii_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--processes", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=200)
    parser.add_argument("--threads", type=int, default=48)
    parser.add_argument("--seed", type=int, default=20230421)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = CampaignConfig(
        application="miniqmc",
        trials=args.trials,
        processes=args.processes,
        iterations=args.iterations,
        threads=args.threads,
        seed=args.seed,
    )
    print("running MiniQMC campaign...")
    dataset = run_campaign(config)
    analyzer = ThreadTimingAnalyzer(dataset)

    print("\nFigure 8 analogue — per-iteration mover percentiles (ms):")
    print(ascii_percentile_plot(analyzer.percentile_series(), width=70, height=16))

    figure9 = figure9_miniqmc_histogram(dataset)
    print(
        f"\nFigure 9 analogue — one process-iteration, 1 ms bins "
        f"(spread {figure9['spread_ms']:.1f} ms):"
    )
    print(ascii_histogram(figure9["histogram"], max_rows=20, unit_scale=1e3))

    reclaimable = analyzer.reclaimable()
    print(
        f"\nreclaimable time: {reclaimable.mean_reclaimable_s * 1e3:.1f} ms per "
        f"iteration; idle ratio {reclaimable.mean_idle_ratio:.3f} — "
        f"roughly {100 * reclaimable.mean_idle_ratio:.0f}% of the fork/join window is idle"
    )

    # ------------------------------------------------------------ buffer sweep
    grouped = analyzer.grouped("process_iteration")
    exemplar = analyzer.laggards().exemplar(IterationClass.WIDE)
    arrivals = grouped.group(exemplar) if exemplar is not None else grouped.values[0]

    print("\nHow much of the message can early-bird delivery hide?")
    rows = []
    for buffer_mb in (1, 4, 16, 64):
        model = EarlyBirdModel(buffer_bytes=buffer_mb * 1024 * 1024)
        outcome = model.evaluate(arrivals)
        rows.append(
            {
                "buffer (MB)": buffer_mb,
                "bulk exposed comm (ms)": (outcome.bulk_completion_s - outcome.last_arrival_s) * 1e3,
                "early-bird exposed (ms)": outcome.post_compute_communication_s * 1e3,
                "hidden fraction": outcome.overlap_efficiency,
            }
        )
    print(ascii_table(rows))

    # -------------------------------------------------- granularity comparison
    print("\nfine-grained vs binned aggregation (16 MB buffer):")
    strategies = [
        BulkStrategy(),
        FineGrainedStrategy(),
        BinnedStrategy(4),
        BinnedStrategy(12),
    ]
    comparison = compare_strategies(
        arrivals, buffer_bytes=16 * 1024 * 1024, strategies=strategies
    )
    rows = [
        {
            "strategy": name,
            "completion (ms)": outcome.completion_s * 1e3,
            "exposed after compute (us)": outcome.exposed_after_compute_s * 1e6,
            "messages": outcome.n_messages,
        }
        for name, outcome in comparison.outcomes.items()
    ]
    print(ascii_table(rows))
    print(
        "\nConclusion: with MiniQMC-like spreads both binned aggregation and "
        "fine-grained early-bird transmission hide almost all of the "
        "communication, matching the paper's §5 assessment."
    )


if __name__ == "__main__":
    main()
