#!/usr/bin/env python3
"""MiniFE feasibility study (the paper's §4.2.1 walk-through).

Reproduces, at a configurable scale, everything the paper reports about
MiniFE's mat-vec region:

* the per-iteration percentile plot (Figure 4),
* the no-laggard / laggard distribution classes with example histograms
  (Figure 5) and the fraction of iterations in each class,
* the reclaimable-time and idle-ratio metrics, and
* the §5 recommendation: a timeout-based flush, evaluated quantitatively
  against bulk and fine-grained delivery.

Run with::

    python examples/minife_feasibility.py            # reduced scale (~seconds)
    python examples/minife_feasibility.py --trials 10 --processes 8  # paper scale
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import ThreadTimingAnalyzer, TimeoutStrategy, compare_strategies
from repro.core.laggard import IterationClass
from repro.experiments.campaign import run_campaign
from repro.experiments.config import CampaignConfig
from repro.experiments.figures import figure5_minife_classes
from repro.experiments.paper import SECTION4_METRICS
from repro.viz import ascii_histogram, ascii_percentile_plot, ascii_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--processes", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=200)
    parser.add_argument("--threads", type=int, default=48)
    parser.add_argument("--seed", type=int, default=20230421)
    parser.add_argument("--buffer-mb", type=float, default=8.0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = CampaignConfig(
        application="minife",
        trials=args.trials,
        processes=args.processes,
        iterations=args.iterations,
        threads=args.threads,
        seed=args.seed,
    )
    print(
        f"running MiniFE campaign: {config.trials} trials x {config.processes} "
        f"processes x {config.iterations} iterations x {config.threads} threads"
    )
    dataset = run_campaign(config)
    analyzer = ThreadTimingAnalyzer(dataset)
    paper = SECTION4_METRICS["minife"]

    # ------------------------------------------------------------------ Figure 4
    series = analyzer.percentile_series()
    print("\nFigure 4 analogue — per-iteration arrival percentiles (ms):")
    print(ascii_percentile_plot(series, width=70, height=16))
    print(
        f"\nmean median arrival: {series.mean_median():.2f} ms "
        f"(paper: {paper['mean_median_arrival_ms']:.2f} ms); "
        f"mean IQR {series.iqr.mean():.3f} ms (paper {paper['mean_iqr_ms']:.2f} ms); "
        f"skew: {series.skew_direction()} arrivals dominate"
    )

    # ------------------------------------------------------------------ Figure 5
    figure5 = figure5_minife_classes(dataset)
    print(
        f"\nFigure 5 analogue — {100 * figure5['no_laggard_fraction']:.1f}% of "
        f"process-iterations contain no laggard, "
        f"{100 * figure5['laggard_fraction']:.1f}% contain one "
        f"(paper: 77.6% / 22.4%)"
    )
    for label in ("no_laggard", "laggard"):
        histogram = figure5[f"{label}_histogram"]
        if histogram is not None:
            print(f"\nexample {label.replace('_', '-')} iteration (50 µs bins):")
            print(ascii_histogram(histogram, max_rows=14))

    # ------------------------------------------------------- reclaimable time
    reclaimable = analyzer.reclaimable()
    print(
        f"\nreclaimable time: {reclaimable.mean_reclaimable_s * 1e3:.2f} ms per "
        f"process-iteration on average (idle ratio {reclaimable.mean_idle_ratio:.4f})"
    )

    # ------------------------------------------------------------- strategies
    grouped = analyzer.grouped("process_iteration")
    laggards = analyzer.laggards()
    key = laggards.exemplar(IterationClass.LAGGARD)
    if key is not None:
        arrivals = grouped.group(key)
        buffer_bytes = int(args.buffer_mb * 1024 * 1024)
        comparison = compare_strategies(
            arrivals,
            buffer_bytes=buffer_bytes,
            strategies=None,
        )
        # add a tighter timeout tuned from the measured laggard threshold
        tuned = TimeoutStrategy(0.5e-3)
        comparison.outcomes[tuned.name] = tuned.evaluate(
            arrivals, buffer_bytes=buffer_bytes
        )
        print(
            f"\n§5 recommendation check — delivery strategies on a laggard "
            f"iteration ({args.buffer_mb:g} MB buffer):"
        )
        rows = [
            {
                "strategy": name,
                "completion (ms)": outcome.completion_s * 1e3,
                "exposed after compute (us)": outcome.exposed_after_compute_s * 1e6,
            }
            for name, outcome in comparison.outcomes.items()
        ]
        print(ascii_table(rows))

    print("\n" + analyzer.report().summary())


if __name__ == "__main__":
    main()
