#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Thin wrapper around the ``repro-campaign`` CLI (``repro.experiments.runner``)
with the three reproduction presets:

* ``--scale smoke``      — seconds; sanity check of the pipeline.
* ``--scale benchmark``  — a few minutes; full 48-thread teams, 200
  iterations, 2 trials × 2 processes (what the pytest benchmarks use).
* ``--scale paper``      — the paper's full §3.2 configuration
  (10 trials × 8 processes × 200 iterations × 48 threads = 768 000 samples
  per application); the numbers recorded in EXPERIMENTS.md come from this.

Examples::

    python examples/paper_reproduction.py --scale benchmark --output results/
    python examples/paper_reproduction.py --scale paper --output results-paper/
"""

from __future__ import annotations

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
