#!/usr/bin/env python3
"""Quickstart: measure thread arrival times and ask the early-bird question.

This walks through the paper's methodology end to end, in three steps:

1. Instrument a *real* Python thread pool with the Listing-1 procedure
   (barrier → timestamp → static loop share → timestamp) just to show the
   measurement interface; absolute numbers from CPython threads are not
   meaningful (GIL), which is exactly why the package ships a simulated
   substrate.
2. Run a small simulated MiniFE campaign (the paper's §3.2 procedure at
   reduced scale) and print the per-application feasibility report.
3. Feed one measured arrival vector to the early-bird model and compare
   delivery strategies.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import CampaignConfig, CampaignSession
from repro.core import ThreadTimingAnalyzer, compare_strategies
from repro.core.instrument import PythonThreadRegion
from repro.viz import ascii_histogram, ascii_table


def measure_real_thread_pool() -> None:
    """Step 1: the measurement procedure on real (GIL-bound) Python threads."""
    print("=" * 72)
    print("Step 1: instrumenting a real Python thread pool (illustrative only)")
    print("=" * 72)

    def work(item: int) -> None:
        # a little numerical busy-work per loop item
        math.fsum(math.sqrt(i + 1) for i in range(200 + (item % 7) * 40))

    region = PythonThreadRegion(n_threads=4, work_fn=work, n_items=64)
    dataset = region.run(n_iterations=5, application="python-pool")
    times_ms = dataset.compute_times_ms
    print(f"collected {dataset.n_samples} samples from {dataset.n_threads} threads")
    print(
        f"per-thread compute time: median {np.median(times_ms):.3f} ms, "
        f"min {times_ms.min():.3f} ms, max {times_ms.max():.3f} ms"
    )
    print("(CPython threads share the GIL; use the simulated substrate for analysis)\n")


def run_simulated_campaign():
    """Step 2: the paper's measurement campaign on the simulated substrate."""
    print("=" * 72)
    print("Step 2: simulated MiniFE campaign (reduced scale)")
    print("=" * 72)
    config = CampaignConfig(
        application="minife", trials=1, processes=2, iterations=40, threads=48,
        seed=2023,
    )
    session = CampaignSession(config)
    analyzer = session.run().analyze()
    report = analyzer.report()
    print(report.summary())
    print()
    print("Application-level arrival histogram (Figure 3a analogue, 50 µs bins):")
    print(ascii_histogram(analyzer.application_histogram(50e-6), max_rows=18))
    print()
    return analyzer


def evaluate_strategies(analyzer: ThreadTimingAnalyzer) -> None:
    """Step 3: what do these arrivals mean for partitioned communication?"""
    print("=" * 72)
    print("Step 3: early-bird delivery strategies on one measured iteration")
    print("=" * 72)
    grouped = analyzer.grouped("process_iteration")
    arrivals = grouped.values[len(grouped.values) // 2]
    comparison = compare_strategies(arrivals, buffer_bytes=8 * 1024 * 1024)
    rows = []
    for name, outcome in comparison.outcomes.items():
        rows.append(
            {
                "strategy": name,
                "completion (ms)": outcome.completion_s * 1e3,
                "exposed comm after compute (us)": outcome.exposed_after_compute_s * 1e6,
                "messages": outcome.n_messages,
            }
        )
    print(ascii_table(rows))
    best = comparison.best()
    print(f"\nbest strategy for this iteration: {best.strategy}")


def main() -> None:
    measure_real_thread_pool()
    analyzer = run_simulated_campaign()
    evaluate_strategies(analyzer)


if __name__ == "__main__":
    main()
