#!/usr/bin/env python3
"""Event-driven demo of early-bird partitioned communication between ranks.

Everything else in the package evaluates early-bird delivery in closed form;
this example runs the *mechanism* on the discrete-event engine, end to end:

* two simulated MPI ranks on the Manzano-like machine model,
* the sender's OpenMP team executes an instrumented compute region whose
  per-thread arrival times come from the MiniQMC work model,
* each thread calls ``Pready`` on its partition the moment it finishes,
* the receiver observes ``Parrived`` events and reports when the first and
  last partitions landed, compared against a bulk send issued after the last
  thread.

Run with::

    python examples/partitioned_communication_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.miniqmc import MiniQMCApp
from repro.cluster.config import manzano
from repro.mpi.network import omni_path
from repro.mpi.partitioned import PartitionedRecvRequest, PartitionedSendRequest
from repro.openmp.barrier import Barrier
from repro.sim.engine import SimulationEngine
from repro.sim.events import Delay, WaitEvent
from repro.viz import ascii_table

N_THREADS = 16
BUFFER_BYTES = 16 * 1024 * 1024


def main() -> None:
    machine = manzano()
    network = omni_path()
    engine = SimulationEngine()

    # per-thread compute times for one MiniQMC-like iteration
    app = MiniQMCApp()
    app.config.n_threads = N_THREADS
    rng = np.random.default_rng(7)
    app.begin_process(0, rng)
    compute_times = app.thread_compute_times(
        process=0, iteration=0, rng=rng, noise=machine.build_noise_model(rng)
    )

    # partitioned request pair: one partition per thread
    receiver = PartitionedRecvRequest(engine, N_THREADS)
    sender = PartitionedSendRequest(
        engine,
        network,
        N_THREADS,
        BUFFER_BYTES // N_THREADS,
        hops=2,
        receiver=receiver,
    )
    sender.start()
    barrier = Barrier(engine, N_THREADS, name="region.entry")

    def worker(thread_id: int):
        yield from barrier.wait(thread_id)
        yield Delay(float(compute_times[thread_id]))
        sender.pready(thread_id)

    def observer():
        first = yield WaitEvent(receiver._events[int(np.argmin(compute_times))])
        print(f"[t={first * 1e3:8.3f} ms] first partition arrived at the receiver")
        completion = yield WaitEvent(receiver.all_arrived)
        print(f"[t={completion * 1e3:8.3f} ms] all partitions arrived (early-bird complete)")

    workers = [engine.spawn(worker(t), name=f"thread{t}") for t in range(N_THREADS)]
    engine.spawn(observer(), name="observer")
    engine.run_until_complete(workers)
    engine.run()

    earlybird_completion = receiver.all_arrived.trigger_time
    last_arrival = float(compute_times.max())
    bulk_completion = last_arrival + network.message_time(BUFFER_BYTES, hops=2)

    rows = [
        {
            "event": "last thread finishes compute",
            "time (ms)": last_arrival * 1e3,
        },
        {
            "event": "early-bird partitioned message fully delivered",
            "time (ms)": earlybird_completion * 1e3,
        },
        {
            "event": "bulk (BSP) message fully delivered",
            "time (ms)": bulk_completion * 1e3,
        },
    ]
    print()
    print(ascii_table(rows))
    gain_us = (bulk_completion - earlybird_completion) * 1e6
    print(
        f"\nearly-bird delivery completes {gain_us:.1f} µs earlier than the bulk "
        f"send for this {BUFFER_BYTES // (1024 * 1024)} MB message "
        f"({N_THREADS} partitions, Omni-Path-like fabric)."
    )


if __name__ == "__main__":
    main()
