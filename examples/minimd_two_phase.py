#!/usr/bin/env python3
"""MiniMD two-phase behaviour and the role of OS noise (§4.2.2, Figures 6/7).

MiniMD is the application the paper flags as *hard* for early-bird
communication: outside of a wide warm-up phase its threads arrive nearly
simultaneously, and the rare laggards that do appear are caused by OS noise
rather than by the work distribution.  This example shows all three pieces:

* the two-phase percentile plot (Figure 6) and per-phase IQR table,
* the three distribution classes with example histograms (Figure 7), and
* an OS-noise ablation: re-running the same campaign with the noise model
  disabled makes the post-warm-up laggards disappear.

Run with::

    python examples/minimd_two_phase.py
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import ThreadTimingAnalyzer
from repro.experiments.campaign import run_campaign
from repro.experiments.config import CampaignConfig
from repro.experiments.figures import figure7_minimd_classes
from repro.experiments.tables import minimd_phase_table
from repro.viz import ascii_histogram, ascii_percentile_plot, ascii_table


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=2)
    parser.add_argument("--processes", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=200)
    parser.add_argument("--threads", type=int, default=48)
    parser.add_argument("--seed", type=int, default=20230421)
    return parser.parse_args()


def _steady_laggard_fraction(analyzer: ThreadTimingAnalyzer, warmup: int = 19) -> float:
    laggards = analyzer.laggards()
    steady = [
        bool(has)
        for key, has in zip(laggards.keys, laggards.has_laggard)
        if key[-1] >= warmup
    ]
    return float(np.mean(steady)) if steady else 0.0


def main() -> None:
    args = parse_args()
    base_config = CampaignConfig(
        application="minimd",
        trials=args.trials,
        processes=args.processes,
        iterations=args.iterations,
        threads=args.threads,
        seed=args.seed,
    )

    print("running MiniMD campaign (OS-noise model enabled)...")
    noisy = run_campaign(base_config)
    noisy_analyzer = ThreadTimingAnalyzer(noisy)

    print("\nFigure 6 analogue — per-iteration arrival percentiles (ms):")
    print(ascii_percentile_plot(noisy_analyzer.percentile_series(), width=70, height=16))

    print("\ntwo-phase IQR comparison (paper §4.2.2):")
    print(ascii_table(minimd_phase_table(noisy)))

    figure7 = figure7_minimd_classes(noisy)
    print(
        f"\npost-warm-up classes: {100 * figure7['steady_no_laggard_fraction']:.1f}% "
        f"no laggard vs {100 * figure7['steady_laggard_fraction']:.1f}% laggard "
        f"(paper: 95.2% / 4.8%)"
    )
    if figure7["initial_histogram"] is not None:
        print("\nexample warm-up iteration (Figure 7a, 50 µs bins):")
        print(ascii_histogram(figure7["initial_histogram"], max_rows=14))
    if figure7["laggard_histogram"] is not None:
        print("\nexample laggard iteration (Figure 7c, 10 µs bins):")
        print(ascii_histogram(figure7["laggard_histogram"], max_rows=14))

    # ------------------------------------------------------------ noise ablation
    print("\nre-running the identical campaign with OS noise disabled...")
    quiet_config = CampaignConfig(
        application="minimd",
        trials=args.trials,
        processes=args.processes,
        iterations=args.iterations,
        threads=args.threads,
        seed=args.seed,
    )
    quiet_config.machine = quiet_config.machine.without_noise()
    quiet = run_campaign(quiet_config)
    quiet_analyzer = ThreadTimingAnalyzer(quiet)

    rows = [
        {
            "campaign": "noise enabled",
            "steady-state laggard %": 100 * _steady_laggard_fraction(noisy_analyzer),
            "mean IQR (ms)": noisy_analyzer.percentile_series().iqr[19:].mean(),
        },
        {
            "campaign": "noise disabled",
            "steady-state laggard %": 100 * _steady_laggard_fraction(quiet_analyzer),
            "mean IQR (ms)": quiet_analyzer.percentile_series().iqr[19:].mean(),
        },
    ]
    print("\nOS-noise ablation (post-warm-up iterations only):")
    print(ascii_table(rows))
    print(
        "\nConclusion: MiniMD's rare, high-magnitude laggards are a noise "
        "phenomenon — exactly the situation the paper says needs 'a more "
        "sophisticated approach' before early-bird delivery pays off."
    )


if __name__ == "__main__":
    main()
