"""Property-based tests of clocks, noise, datasets and persistence."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster.clock import MonotonicClock
from repro.cluster.noise import NoiseSpec, OSNoiseModel
from repro.cluster.topology import Core
from repro.core.aggregation import AggregationLevel, aggregate
from repro.core.timing import TimingDataset
from repro.io.dataset_io import load_dataset, save_dataset


@given(
    st.floats(0.0, 1e6),
    st.floats(0.0, 1e-4),
    st.floats(0.0, 100.0),
    st.lists(st.floats(0.0, 10.0), min_size=2, max_size=50),
)
@settings(max_examples=80, deadline=None)
def test_clock_monotonic_for_any_read_pattern(offset, drift, jitter_ns, times):
    clock = MonotonicClock(offset, drift, jitter_ns, rng=np.random.default_rng(0))
    readings = [clock.read_ns(t) for t in sorted(times)]
    assert all(b >= a for a, b in zip(readings, readings[1:]))


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.integers(1, 64),
        elements=st.floats(0.0, 0.1, allow_nan=False),
    ),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=80, deadline=None)
def test_noise_delays_nonnegative_for_any_workload(work, seed):
    model = OSNoiseModel(NoiseSpec(), np.random.default_rng(seed))
    batch = model.batch_delays(work)
    assert np.all(batch >= 0.0)
    core = Core(0, 0, 0)
    assert model.delay_over(core, 0.0, float(work[0])) >= 0.0


@st.composite
def dense_shapes(draw):
    return (
        draw(st.integers(1, 3)),
        draw(st.integers(1, 3)),
        draw(st.integers(1, 5)),
        draw(st.integers(1, 16)),
    )


@given(dense_shapes(), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_aggregation_levels_partition_the_dataset(shape, seed):
    rng = np.random.default_rng(seed)
    times = rng.uniform(1e-4, 1e-1, size=shape)
    ds = TimingDataset.from_compute_times(times, {"application": "prop"})
    total = ds.compute_times_s.sum()
    for level in AggregationLevel:
        grouped = aggregate(ds, level)
        # the groups are a partition: same number of samples, same total time
        assert grouped.values.size == ds.n_samples
        np.testing.assert_allclose(grouped.values.sum(), total, rtol=1e-9)


@given(shape=dense_shapes(), seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_dataset_roundtrip_through_disk(tmp_path_factory, shape, seed):
    rng = np.random.default_rng(seed)
    times = rng.uniform(1e-4, 1e-1, size=shape)
    ds = TimingDataset.from_compute_times(
        times, {"application": "prop", "seed": seed}
    )
    target = tmp_path_factory.mktemp("roundtrip") / f"ds_{seed}.npz"
    loaded = load_dataset(save_dataset(ds, target))
    np.testing.assert_array_equal(loaded.compute_times_s, ds.compute_times_s)
    assert loaded.metadata["seed"] == seed
    assert loaded.is_dense()
