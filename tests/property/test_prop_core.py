"""Property-based tests of the core analysis metrics and the early-bird model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.earlybird import EarlyBirdModel
from repro.core.reclaimable import idle_ratio, reclaimable_time
from repro.core.strategies import (
    BinnedStrategy,
    BulkStrategy,
    FineGrainedStrategy,
    TimeoutStrategy,
)
from repro.mpi.network import NetworkModel
from repro.mpi.partitioned import partitioned_completion_times

arrivals_strategy = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(2, 64),
    elements=st.floats(1e-4, 0.2, allow_nan=False),
)

FLAT = NetworkModel(
    latency_s=1e-6,
    per_hop_latency_s=0.0,
    o_send_s=1e-7,
    o_recv_s=1e-7,
    bandwidth_bytes_per_s=1e9,
    eager_threshold_bytes=1 << 40,
)


@given(arrivals_strategy)
@settings(max_examples=100, deadline=None)
def test_reclaimable_time_identities(arrivals):
    reclaim = reclaimable_time(arrivals)[0]
    n = len(arrivals)
    # identity: sum(max - t_i) == n*max - sum(t_i)
    np.testing.assert_allclose(
        reclaim, n * arrivals.max() - arrivals.sum(), rtol=1e-9, atol=1e-12
    )
    ratio = idle_ratio(arrivals)[0]
    assert 0.0 <= ratio < 1.0
    # shifting all arrivals later decreases the ratio, never increases it
    shifted = idle_ratio(arrivals + 0.05)[0]
    assert shifted <= ratio + 1e-12


@given(arrivals_strategy, st.integers(10_000, 5_000_000))
@settings(max_examples=60, deadline=None)
def test_earlybird_never_loses_to_bulk_and_bounds_hold(arrivals, buffer_bytes):
    model = EarlyBirdModel(FLAT, buffer_bytes=buffer_bytes, hops=1)
    outcome = model.evaluate(arrivals)
    # early-bird can never finish after the bulk send (same data, same NIC,
    # bulk is the degenerate "everything ready at the last arrival" plan)
    assert outcome.earlybird_completion_s <= outcome.bulk_completion_s + 1e-12
    # and never before the last thread's own partition could possibly arrive
    last_partition_floor = arrivals.max() + FLAT.wire_latency(1)
    assert outcome.earlybird_completion_s >= last_partition_floor - 1e-12
    # the "green boxes" of Figure 2 sum to exactly the reclaimable time
    np.testing.assert_allclose(
        outcome.potential_overlap_s, reclaimable_time(arrivals)[0], rtol=1e-9, atol=1e-15
    )


@given(arrivals_strategy)
@settings(max_examples=60, deadline=None)
def test_partitioned_deliveries_follow_ready_order_on_fifo_nic(arrivals):
    transfer = partitioned_completion_times(arrivals, 4096, FLAT, hops=1)
    order_by_ready = np.argsort(transfer.ready_times(), kind="stable")
    deliveries = transfer.delivery_times()[order_by_ready]
    assert np.all(np.diff(deliveries) >= -1e-12)
    assert transfer.completion_time >= transfer.first_delivery_time


@given(arrivals_strategy, st.integers(50_000, 2_000_000))
@settings(max_examples=60, deadline=None)
def test_all_strategies_deliver_everything_after_last_arrival(arrivals, buffer_bytes):
    strategies = [
        BulkStrategy(),
        FineGrainedStrategy(),
        BinnedStrategy(4),
        TimeoutStrategy(1e-3),
    ]
    for strategy in strategies:
        outcome = strategy.evaluate(
            arrivals, buffer_bytes=buffer_bytes, network=FLAT, hops=1
        )
        assert outcome.bytes_sent == buffer_bytes
        assert outcome.completion_s >= arrivals.max()
        assert outcome.first_delivery_s <= outcome.completion_s
