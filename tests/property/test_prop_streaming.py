"""Property-based tests of the mergeable streaming accumulators (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats.histogram import fixed_width_histogram
from repro.stats.moments import kurtosis, skewness
from repro.stats.sketch import PercentileSketch
from repro.stats.streaming import StreamingHistogram, StreamingMoments

#: physical-range sample vectors, long enough to split into several shards
sample_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(8, 400),
    elements=st.floats(1e-6, 1.0, allow_nan=False, allow_infinity=False),
)


@given(sample_vectors, st.integers(2, 6))
@settings(max_examples=80, deadline=None)
def test_streaming_moments_merge_matches_pooled_numpy_moments(samples, n_parts):
    """The satellite property: per-shard ``StreamingMoments`` merged in any
    grouping agree with the pooled numpy moments."""
    parts = np.array_split(samples, n_parts)
    merged = StreamingMoments()
    for part in parts:
        merged = merged.merge(StreamingMoments.from_samples(part))
    assert merged.count == len(samples)
    np.testing.assert_allclose(merged.mean, samples.mean(), rtol=1e-9)
    np.testing.assert_allclose(merged.variance(), samples.var(), rtol=1e-7, atol=1e-12)
    if samples.var() > 1e-12:  # moments of near-constant data are degenerate
        np.testing.assert_allclose(
            merged.skewness, float(skewness(samples)), rtol=1e-5, atol=1e-7
        )
        np.testing.assert_allclose(
            merged.kurtosis, float(kurtosis(samples)), rtol=1e-5, atol=1e-7
        )
    assert merged.minimum == samples.min()
    assert merged.maximum == samples.max()


@given(sample_vectors, st.integers(2, 5), st.floats(1e-4, 1e-1))
@settings(max_examples=60, deadline=None)
def test_streaming_histogram_is_exact_under_any_sharding(samples, n_parts, width):
    reference = fixed_width_histogram(samples, width)
    acc = StreamingHistogram(width)
    for part in np.array_split(samples, n_parts):
        acc = acc.merge(StreamingHistogram(width).update(part))
    merged = acc.finalize()
    np.testing.assert_array_equal(merged.counts, reference.counts)
    np.testing.assert_array_equal(merged.edges, reference.edges)
    assert merged.total == len(samples)


@given(sample_vectors, st.integers(2, 5))
@settings(max_examples=60, deadline=None)
def test_exact_sketch_quantiles_equal_numpy_percentile(samples, n_parts):
    sketch = PercentileSketch(exact=True)
    for part in np.array_split(samples, n_parts):
        sketch = sketch.merge(PercentileSketch(exact=True).update(part))
    levels = [5.0, 50.0, 95.0]
    np.testing.assert_array_equal(
        sketch.quantile(levels), np.percentile(samples, levels)
    )


@given(sample_vectors)
@settings(max_examples=60, deadline=None)
def test_compressed_sketch_brackets_the_true_range(samples):
    sketch = PercentileSketch(64).update(samples)
    assert len(sketch.support) <= 64
    assert sketch.minimum == samples.min()
    assert sketch.maximum == samples.max()
    median = float(sketch.quantile(50.0))
    assert samples.min() <= median <= samples.max()
