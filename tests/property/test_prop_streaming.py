"""Property-based tests of the mergeable streaming accumulators (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats.histogram import fixed_width_histogram
from repro.stats.moments import kurtosis, skewness
from repro.stats.sketch import PercentileSketch
from repro.stats.streaming import StreamingHistogram, StreamingMoments

#: physical-range sample vectors, long enough to split into several shards
sample_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(8, 400),
    elements=st.floats(1e-6, 1.0, allow_nan=False, allow_infinity=False),
)


@given(sample_vectors, st.integers(2, 6))
@settings(max_examples=80, deadline=None)
def test_streaming_moments_merge_matches_pooled_numpy_moments(samples, n_parts):
    """The satellite property: per-shard ``StreamingMoments`` merged in any
    grouping agree with the pooled numpy moments."""
    parts = np.array_split(samples, n_parts)
    merged = StreamingMoments()
    for part in parts:
        merged = merged.merge(StreamingMoments.from_samples(part))
    assert merged.count == len(samples)
    np.testing.assert_allclose(merged.mean, samples.mean(), rtol=1e-9)
    np.testing.assert_allclose(merged.variance(), samples.var(), rtol=1e-7, atol=1e-12)
    if samples.var() > 1e-12:  # moments of near-constant data are degenerate
        np.testing.assert_allclose(
            merged.skewness, float(skewness(samples)), rtol=1e-5, atol=1e-7
        )
        np.testing.assert_allclose(
            merged.kurtosis, float(kurtosis(samples)), rtol=1e-5, atol=1e-7
        )
    assert merged.minimum == samples.min()
    assert merged.maximum == samples.max()


@given(sample_vectors, st.integers(2, 5), st.floats(1e-4, 1e-1))
@settings(max_examples=60, deadline=None)
def test_streaming_histogram_is_exact_under_any_sharding(samples, n_parts, width):
    reference = fixed_width_histogram(samples, width)
    acc = StreamingHistogram(width)
    for part in np.array_split(samples, n_parts):
        acc = acc.merge(StreamingHistogram(width).update(part))
    merged = acc.finalize()
    np.testing.assert_array_equal(merged.counts, reference.counts)
    np.testing.assert_array_equal(merged.edges, reference.edges)
    assert merged.total == len(samples)


@given(sample_vectors, st.integers(2, 5))
@settings(max_examples=60, deadline=None)
def test_exact_sketch_quantiles_equal_numpy_percentile(samples, n_parts):
    sketch = PercentileSketch(exact=True)
    for part in np.array_split(samples, n_parts):
        sketch = sketch.merge(PercentileSketch(exact=True).update(part))
    levels = [5.0, 50.0, 95.0]
    np.testing.assert_array_equal(
        sketch.quantile(levels), np.percentile(samples, levels)
    )


@given(sample_vectors)
@settings(max_examples=60, deadline=None)
def test_compressed_sketch_brackets_the_true_range(samples):
    sketch = PercentileSketch(64).update(samples)
    assert len(sketch.support) <= 64
    assert sketch.minimum == samples.min()
    assert sketch.maximum == samples.max()
    median = float(sketch.quantile(50.0))
    assert samples.min() <= median <= samples.max()


def _strided_reference_support(chunks, capacity):
    """The pre-KLL strided compressor: merge-sort each chunk in, then keep
    ``capacity`` evenly spaced order statistics of the sorted support."""
    support = np.empty(0, dtype=np.float64)
    for chunk in chunks:
        support = np.sort(np.concatenate([support, chunk]))
        if len(support) > capacity:
            idx = np.round(
                np.linspace(0, len(support) - 1, capacity)
            ).astype(np.int64)
            support = support[idx]
    return support


def _rank_errors(estimates, sorted_samples, quantiles):
    ranks = np.searchsorted(sorted_samples, estimates) / len(sorted_samples)
    return np.abs(ranks - np.asarray(quantiles) / 100.0)


@given(
    st.integers(0, 2**32 - 1),
    st.sampled_from([128, 256, 1024]),
    st.integers(7, 60),
)
@settings(max_examples=25, deadline=None)
def test_kll_rank_error_no_worse_than_strided_compression(seed, capacity, n_chunks):
    """The KLL compactor's satellite contract: bounded state and mean rank
    error at or below the strided recompression it replaced (with a
    ``2 / capacity`` floor so ties on easy streams cannot flake), plus an
    absolute worst-case ceiling from the compaction schedule."""
    rng = np.random.default_rng(seed)
    samples = rng.lognormal(mean=0.0, sigma=0.7, size=20_000)
    chunks = np.array_split(samples, n_chunks)

    sketch = PercentileSketch(capacity)
    for chunk in chunks:
        sketch.update(chunk)
    assert sketch.n == len(samples)
    assert len(sketch.support) <= capacity

    quantiles = np.linspace(1.0, 99.0, 40)
    sorted_samples = np.sort(samples)
    strided_errs = _rank_errors(
        np.percentile(_strided_reference_support(chunks, capacity), quantiles),
        sorted_samples,
        quantiles,
    )
    bound = max(float(strided_errs.mean()), 2.0 / capacity)
    for probe in (
        sketch,
        # mergeability: two half-stream sketches merged obey the same bound
        _merged_halves(chunks, capacity),
    ):
        errs = _rank_errors(
            np.asarray(probe.quantile(quantiles)), sorted_samples, quantiles
        )
        assert float(errs.mean()) <= bound
        assert float(errs.max()) <= 8.0 / capacity
        assert probe.n == len(samples)
        assert len(probe.support) <= capacity
        assert probe.minimum == samples.min()
        assert probe.maximum == samples.max()


def _merged_halves(chunks, capacity):
    half = len(chunks) // 2 or 1
    left = PercentileSketch(capacity)
    right = PercentileSketch(capacity)
    for chunk in chunks[:half]:
        left.update(chunk)
    for chunk in chunks[half:]:
        right.update(chunk)
    return left.merge(right)
