"""Property-based tests of the noise-source registry and scenario catalog.

Two invariants the scenario matrix relies on:

* every registered noise source — at default *and* randomly rescaled
  parameters — produces non-negative, finite delays on both execution paths
  (batch and event), for any workload;
* a ``without_noise()`` machine adds exactly zero delay, for every
  registered scenario's machine.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster.noise import NoiseSpec, OSNoiseModel
from repro.cluster.topology import Core
from repro.scenarios import (
    available_noise_profiles,
    available_noise_sources,
    available_scenarios,
    get_scenario,
    make_noise_source,
    noise_profile,
)

CORE = Core(0, 0, 0)

work_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 48),
    elements=st.floats(0.0, 0.2, allow_nan=False),
)


@given(
    kind=st.sampled_from(sorted(available_noise_sources())),
    work=work_arrays,
    seed=st.integers(0, 2**31 - 1),
    rescale=st.floats(0.1, 3.0, allow_nan=False),
)
@settings(max_examples=120, deadline=None)
def test_any_registered_source_yields_physical_delays(kind, work, seed, rescale):
    defaults = make_noise_source(kind).params()
    source = make_noise_source(
        kind, **{name: value * rescale for name, value in defaults.items()}
    )
    rng = np.random.default_rng(seed)
    extra = source.batch_extra(work, rng)
    assert extra.shape == work.shape
    assert np.all(extra >= 0.0)
    assert np.all(np.isfinite(extra))
    for event in source.events_in(CORE.global_id, 0.0, 0.5, rng):
        assert np.isfinite(event.start) and np.isfinite(event.duration)
        assert event.duration >= 0.0


@given(
    profile=st.sampled_from(sorted(available_noise_profiles())),
    work=work_arrays,
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_any_noise_profile_model_yields_physical_delays(profile, work, seed):
    model = OSNoiseModel(noise_profile(profile), np.random.default_rng(seed))
    batch = model.batch_delays(work)
    assert np.all(batch >= 0.0) and np.all(np.isfinite(batch))
    scalar = model.delay_over(CORE, 0.0, float(work[0]))
    assert scalar >= 0.0 and np.isfinite(scalar)


@given(
    name=st.sampled_from(sorted(available_scenarios())),
    work=work_arrays,
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_without_noise_machines_add_zero_delay_for_every_scenario(name, work, seed):
    machine = get_scenario(name).machine_config().without_noise()
    model = machine.build_noise_model(np.random.default_rng(seed))
    assert not model.batch_delays(work).any()
    assert model.delay_over(CORE, 0.0, float(work[0])) == 0.0
    assert model.sample_wall_time(CORE, 0.0, float(work[0])) == float(work[0])
    assert model.events_in(CORE, 0.0, 1.0) == []


@given(
    work=work_arrays,
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_composed_default_pair_matches_legacy_scalar_fields(work, seed):
    """The registry-built default pair must reproduce the legacy draws."""
    spec = NoiseSpec(jitter_fraction=0.0)
    composed = OSNoiseModel(spec, np.random.default_rng(seed)).batch_delays(work)
    legacy = _legacy_batch_delays(spec, np.random.default_rng(seed), work)
    np.testing.assert_array_equal(composed, legacy)


def _legacy_batch_delays(spec, gen, work):
    """The seed's hardwired batch_delays, kept verbatim as a reference."""
    extra = np.zeros_like(work)
    if spec.daemon_period_s > 0 and spec.daemon_duration_s > 0:
        expected_ticks = work / spec.daemon_period_s
        ticks = np.floor(expected_ticks) + (
            gen.uniform(size=work.shape) < (expected_ticks - np.floor(expected_ticks))
        )
        extra += ticks * spec.daemon_duration_s
    if spec.interrupt_rate_hz > 0 and spec.interrupt_mean_s > 0:
        counts = gen.poisson(spec.interrupt_rate_hz * work)
        flat_counts = counts.ravel()
        total = int(flat_counts.sum())
        if total > 0:
            durations = np.minimum(
                gen.exponential(spec.interrupt_mean_s, size=total),
                spec.interrupt_max_s,
            )
            boundaries = np.cumsum(flat_counts)[:-1]
            extra += np.array(
                [seg.sum() for seg in np.split(durations, boundaries)]
            ).reshape(work.shape)
    return extra
