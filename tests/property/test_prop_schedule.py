"""Property-based tests of the OpenMP loop schedules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.openmp.schedule import DynamicSchedule, GuidedSchedule, StaticSchedule

costs_strategy = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(0, 300),
    elements=st.floats(0.0, 1e-2, allow_nan=False),
)
threads_strategy = st.integers(1, 64)
schedule_strategy = st.sampled_from(
    [StaticSchedule(), StaticSchedule(4), DynamicSchedule(1), DynamicSchedule(7), GuidedSchedule(2)]
)


@given(costs_strategy, threads_strategy, schedule_strategy)
@settings(max_examples=120, deadline=None)
def test_every_item_executed_exactly_once(costs, n_threads, schedule):
    outcome = schedule.simulate(costs, n_threads)
    executed = np.concatenate([np.asarray(a, dtype=np.int64) for a in outcome.assignment])
    assert sorted(executed.tolist()) == list(range(len(costs)))


@given(costs_strategy, threads_strategy, schedule_strategy)
@settings(max_examples=120, deadline=None)
def test_work_is_conserved(costs, n_threads, schedule):
    outcome = schedule.simulate(costs, n_threads)
    np.testing.assert_allclose(
        outcome.busy_time.sum(), costs.sum(), rtol=1e-9, atol=1e-15
    )
    assert len(outcome.busy_time) == n_threads
    assert np.all(outcome.busy_time >= 0.0)


@given(costs_strategy, threads_strategy)
@settings(max_examples=80, deadline=None)
def test_static_blocks_are_contiguous_and_ordered(costs, n_threads):
    assignment = StaticSchedule().static_assignment(len(costs), n_threads)
    previous_end = 0
    for block in assignment:
        if len(block) == 0:
            continue
        assert block[0] == previous_end
        assert np.all(np.diff(block) == 1)
        previous_end = block[-1] + 1
    assert previous_end == len(costs)


@given(costs_strategy, st.integers(2, 32))
@settings(max_examples=80, deadline=None)
def test_dynamic_makespan_never_worse_than_serial_and_not_better_than_ideal(costs, n_threads):
    outcome = DynamicSchedule(1).simulate(costs, n_threads)
    makespan = outcome.busy_time.max() if len(costs) else 0.0
    ideal = costs.sum() / n_threads
    assert makespan <= costs.sum() + 1e-12
    assert makespan >= ideal - 1e-12


# ----------------------------------------------------------------------
# the row-vectorized work-queue kernel: bit-identical to the heap replay
# ----------------------------------------------------------------------
workqueue_schedules = st.sampled_from(
    [
        DynamicSchedule(1),
        DynamicSchedule(3),
        DynamicSchedule(7),
        GuidedSchedule(1),
        GuidedSchedule(2),
        GuidedSchedule(5),
    ]
)

# tie-heavy pools: with only a couple of distinct values, equal chunk costs
# (and therefore equal thread available times) occur constantly, hammering
# the argmin-vs-heap (time, thread) tie-break; the float pool exercises the
# generic accumulation path
tie_elements = st.sampled_from([0.0, 2.5e-4, 1.0e-3])
float_elements = st.floats(0.0, 1e-2, allow_nan=False)


@st.composite
def cost_matrices(draw):
    n_instances = draw(st.integers(1, 6))
    # includes n_items < n_threads (threads go up to 64 below) and the
    # empty loop
    n_items = draw(st.integers(0, 80))
    elements = draw(st.sampled_from([tie_elements, float_elements]))
    return draw(
        hnp.arrays(np.float64, (n_instances, n_items), elements=elements)
    )


@given(costs=cost_matrices(), n_threads=threads_strategy, schedule=workqueue_schedules)
@settings(max_examples=150, deadline=None)
def test_workqueue_batch_bit_identical_to_per_row_replay(costs, n_threads, schedule):
    """simulate_batch must be *bit*-identical per row to simulate — busy
    times and the realised chunk-to-thread assignment — including under
    all-equal costs (thread-id tie-breaks) and rows with fewer items than
    threads."""
    busy, picks = schedule.simulate_batch_details(costs, n_threads)
    assert np.array_equal(busy, schedule.simulate_batch(costs, n_threads))
    assert busy.shape == (costs.shape[0], n_threads)
    for i, row in enumerate(costs):
        outcome = schedule.simulate(row, n_threads)
        assert np.array_equal(busy[i], outcome.busy_time), f"row {i} busy diverged"
        assert picks[i].tolist() == [thread for thread, _, _ in outcome.chunks], (
            f"row {i} chunk assignment diverged"
        )
