"""Distributional agreement of the campaign and vectorized backends.

The whole-campaign tensor backend draws its randomness shard-major across
the entire campaign — a different order again than both the per-iteration
vectorized path and the per-shard batched kernel — so bit-identity is
impossible by design.  What must hold, over every application, schedule
clause and noise profile, is that it samples the *same distribution*: same
location, same spread, and no detectable distributional drift under a
two-sample Kolmogorov-Smirnov test.

Campaign pairs are cached per combination (Hypothesis revisits examples
while shrinking) and the test is derandomized so CI never sees a fresh
random draw: every assertion below is deterministic.
"""

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.experiments.backends import get_backend
from repro.experiments.config import CampaignConfig

APPLICATIONS = ("minife", "minimd", "miniqmc")
SCHEDULES = (None, "static,8", "dynamic,4", "guided")
NOISE_PROFILES = ("default", "none", "heavy-tail", "bursty")

#: two-sided KS p-value below which we call the distributions different.
#: Both samples have ~1.5k points; for identical distributions a false
#: positive at this threshold is a 1-in-10^4 event per example, and the
#: test is derandomized, so a pass is stable.
KS_ALPHA = 1.0e-4


@lru_cache(maxsize=None)
def _campaign_pair(application: str, schedule, profile: str):
    config = CampaignConfig(
        application=application,
        trials=1,
        processes=2,
        iterations=48,
        threads=16,
        seed=1303,
        schedule=schedule,
    )
    config.machine = config.machine.with_noise_profile(profile)
    samples = {}
    for backend in ("vectorized", "campaign"):
        dataset = get_backend(backend).run(config.with_backend(backend))
        samples[backend] = np.asarray(dataset.compute_times_s)
    return samples["vectorized"], samples["campaign"]


@settings(derandomize=True, max_examples=12, deadline=None)
@given(
    application=st.sampled_from(APPLICATIONS),
    schedule=st.sampled_from(SCHEDULES),
    profile=st.sampled_from(NOISE_PROFILES),
)
def test_campaign_agrees_with_vectorized_in_distribution(
    application, schedule, profile
):
    vectorized, campaign = _campaign_pair(application, schedule, profile)
    assert vectorized.shape == campaign.shape
    assert np.all(np.isfinite(campaign)) and np.all(campaign >= 0)
    # location: medians within a percent of each other (medians are robust
    # even under the heavy-tail profile's infinite-variance bursts); the
    # absolute floor covers degenerate schedules where most threads draw no
    # work and the median sits on near-zero noise delays
    median_v, median_c = np.median(vectorized), np.median(campaign)
    assert median_c == pytest.approx(median_v, rel=1e-2, abs=5e-5)
    # spread: robust IQR within 15 %
    iqr_v = np.subtract(*np.percentile(vectorized, [75, 25]))
    iqr_c = np.subtract(*np.percentile(campaign, [75, 25]))
    assert iqr_c == pytest.approx(iqr_v, rel=0.15, abs=5e-5)
    # whole-shape agreement: two-sample KS must not reject
    result = scipy_stats.ks_2samp(vectorized, campaign)
    assert result.pvalue > KS_ALPHA, (
        f"KS rejects campaign ~ vectorized for {application} "
        f"(schedule={schedule}, profile={profile}): "
        f"D={result.statistic:.4f}, p={result.pvalue:.2e}"
    )


def test_noise_off_paths_are_deterministic_and_equal():
    """Without noise or application randomness the two backends must agree
    exactly: MiniFE's costs are deterministic once stragglers are the only
    application-level randomness — disable noise and compare the paths on
    the schedule fold alone."""
    config = CampaignConfig(
        application="minife", trials=1, processes=1, iterations=6, threads=16,
        seed=9,
    )
    config.machine = config.machine.without_noise()
    vectorized = get_backend("vectorized").run(config.with_backend("vectorized"))
    campaign = get_backend("campaign").run(config.with_backend("campaign"))
    v = vectorized.compute_times_s.reshape(6, 16)
    c = campaign.compute_times_s.reshape(6, 16)
    # rows without a straggler event carry the pure schedule fold: identical
    base_v = np.min(v, axis=0)
    base_c = np.min(c, axis=0)
    np.testing.assert_allclose(base_c, base_v, rtol=0, atol=0)


def test_campaign_agrees_with_batched_in_distribution():
    """The two lifted kernels (per-shard batched, whole-campaign tensor)
    must also agree with each other — one deterministic KS check on the
    default recipe."""
    config = CampaignConfig(
        application="miniqmc", trials=1, processes=2, iterations=48, threads=16,
        seed=1303,
    )
    batched = get_backend("batched").run(config.with_backend("batched"))
    campaign = get_backend("campaign").run(config.with_backend("campaign"))
    result = scipy_stats.ks_2samp(
        batched.compute_times_s, campaign.compute_times_s
    )
    assert result.pvalue > KS_ALPHA
