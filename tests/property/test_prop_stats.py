"""Property-based tests of the statistics layer (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats.anderson import anderson_darling
from repro.stats.battery import NormalityBattery
from repro.stats.dagostino import dagostino_k2
from repro.stats.histogram import fixed_width_histogram
from repro.stats.moments import kurtosis, skewness
from repro.stats.percentiles import iqr
from repro.stats.shapiro import shapiro_wilk

#: groups of n in [8, 64] samples with values in a physical range (µs..s)
sample_groups = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 6), st.integers(8, 64)),
    elements=st.floats(1e-6, 1.0, allow_nan=False, allow_infinity=False),
)


@given(sample_groups)
@settings(max_examples=60, deadline=None)
def test_normality_statistics_are_finite_and_pvalues_bounded(groups):
    for result in (dagostino_k2(groups), shapiro_wilk(groups), anderson_darling(groups)):
        assert np.all((result.pvalue >= 0.0) & (result.pvalue <= 1.0))
    w = shapiro_wilk(groups).statistic
    assert np.all((w >= 0.0) & (w <= 1.0))


@given(sample_groups)
@settings(max_examples=60, deadline=None)
def test_tests_are_location_and_scale_invariant(groups):
    """Affine transforms (unit changes) must not change any decision.

    The property only holds for groups whose spread is numerically
    meaningful: when a group's range is a few ULPs the test statistics are
    computed on float rounding noise, and an affine transform rewrites that
    noise (e.g. collapsing a 1-ULP spread to exactly constant), so
    decisions on such degenerate groups are arbitrary either way.
    """
    from hypothesis import assume

    spreads = np.ptp(groups, axis=1)
    assume(np.all(spreads > 1e-9 * np.max(np.abs(groups), axis=1)))
    battery = NormalityBattery()
    base = battery.run(groups)
    transformed = battery.run(groups * 1e3 + 17.0)
    for name, outcome in base.outcomes.items():
        np.testing.assert_array_equal(outcome.passed, transformed.outcomes[name].passed)


@given(sample_groups)
@settings(max_examples=60, deadline=None)
def test_shuffling_samples_does_not_change_statistics(groups):
    rng = np.random.default_rng(0)
    shuffled = groups.copy()
    for row in shuffled:
        rng.shuffle(row)
    np.testing.assert_allclose(
        shapiro_wilk(groups).statistic, shapiro_wilk(shuffled).statistic, rtol=1e-10
    )
    np.testing.assert_allclose(
        anderson_darling(groups).statistic,
        anderson_darling(shuffled).statistic,
        rtol=1e-10,
        atol=1e-12,
    )


@given(sample_groups)
@settings(max_examples=60, deadline=None)
def test_moment_identities(groups):
    assert np.all(kurtosis(groups) >= 0.0)
    # skewness of mirrored data is the negation of the original
    np.testing.assert_allclose(skewness(-groups), -skewness(groups), atol=1e-8)


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.integers(2, 400),
        elements=st.floats(0.0, 0.2, allow_nan=False),
    ),
    st.floats(1e-5, 1e-2),
)
@settings(max_examples=60, deadline=None)
def test_histogram_conserves_samples_and_covers_range(samples, bin_width):
    hist = fixed_width_histogram(samples, bin_width)
    assert hist.total == len(samples)
    assert hist.edges[0] <= samples.min()
    assert hist.edges[-1] >= samples.max()
    widths = np.diff(hist.edges)
    np.testing.assert_allclose(widths, bin_width, rtol=1e-9)


@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 5), st.integers(4, 100)),
        elements=st.floats(0.0, 1.0, allow_nan=False),
    )
)
@settings(max_examples=60, deadline=None)
def test_iqr_nonnegative_and_bounded_by_range(groups):
    values = iqr(groups)
    ranges = groups.max(axis=-1) - groups.min(axis=-1)
    assert np.all(values >= -1e-12)
    assert np.all(values <= ranges + 1e-12)
