"""Unit tests for the campaign backend registry."""

import numpy as np
import pytest

from repro.core.timing import TimingDataset, TimingShard
from repro.experiments.backends import (
    CampaignBackend,
    ShardSpec,
    VectorizedBackend,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.experiments.config import CampaignConfig


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"vectorized", "batched", "event", "chunked"} <= set(available_backends())

    def test_get_backend_returns_named_instances(self):
        for name in available_backends():
            backend = get_backend(name)
            assert isinstance(backend, CampaignBackend)
            assert backend.name == name

    def test_lookup_is_case_and_whitespace_insensitive(self):
        assert type(get_backend(" Vectorized ")) is type(get_backend("vectorized"))

    def test_unknown_backend_error_lists_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_backend("warp-drive")
        message = str(excinfo.value)
        assert "warp-drive" in message
        for name in available_backends():
            assert name in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_backend("vectorized")
            class Impostor(VectorizedBackend):
                pass

        assert type(get_backend("vectorized")) is VectorizedBackend

    def test_replace_registration_allowed_and_reversible(self):
        @register_backend("vectorized", replace=True)
        class Replacement(VectorizedBackend):
            pass

        try:
            assert type(get_backend("vectorized")) is Replacement
        finally:
            register_backend("vectorized", replace=True)(VectorizedBackend)
        assert type(get_backend("vectorized")) is VectorizedBackend

    def test_non_backend_class_rejected(self):
        with pytest.raises(TypeError):
            register_backend("bogus")(dict)

    def test_custom_backend_end_to_end(self):
        @register_backend("unit-test-constant")
        class ConstantBackend(CampaignBackend):
            """Every thread takes exactly 1 ms — handy for assertions."""

            def shard_specs(self, config):
                return [
                    ShardSpec(trial=t, process=p)
                    for t in range(config.trials)
                    for p in range(config.processes)
                ]

            def run_shard(self, config, spec, streams):
                n = config.iterations * config.threads
                iteration, thread = np.divmod(np.arange(n), config.threads)
                columns = {
                    "trial": np.full(n, spec.trial),
                    "process": np.full(n, spec.process),
                    "iteration": iteration,
                    "thread": thread,
                    "compute_time_s": np.full(n, 1.0e-3),
                }
                return TimingShard(
                    trial=spec.trial, process=spec.process, columns=columns
                )

        try:
            config = CampaignConfig.smoke(application="minife")
            config.backend = "unit-test-constant"
            dataset = get_backend("unit-test-constant").run(config)
            assert isinstance(dataset, TimingDataset)
            assert dataset.n_samples == config.samples_per_application
            np.testing.assert_allclose(dataset.compute_times_s, 1.0e-3)
            assert dataset.metadata["backend"] == "unit-test-constant"
        finally:
            unregister_backend("unit-test-constant")
        assert "unit-test-constant" not in available_backends()


class TestConfigValidation:
    def test_unknown_backend_rejected_with_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            CampaignConfig(backend="gpu")
        message = str(excinfo.value)
        assert "gpu" in message
        assert "vectorized" in message and "event" in message

    def test_registered_custom_backend_accepted(self):
        @register_backend("unit-test-accepted")
        class Accepted(VectorizedBackend):
            pass

        try:
            config = CampaignConfig.smoke()
            config = config.with_backend("unit-test-accepted")
            assert config.backend == "unit-test-accepted"
        finally:
            unregister_backend("unit-test-accepted")

    def test_backend_name_normalised_like_get_backend(self):
        config = CampaignConfig.smoke()
        config = config.with_backend(" Vectorized ")
        assert config.backend == "vectorized"

    def test_max_workers_validated(self):
        with pytest.raises(ValueError, match="max_workers"):
            CampaignConfig(max_workers=0)
        assert CampaignConfig.smoke().parallel(4).max_workers == 4


class TestShardSpecs:
    def test_vectorized_shards_per_trial_process(self):
        config = CampaignConfig.smoke().scaled(trials=3, processes=2)
        specs = get_backend("vectorized").shard_specs(config)
        assert len(specs) == 6
        assert specs[0] == ShardSpec(trial=0, process=0)
        assert specs[-1] == ShardSpec(trial=2, process=1)

    def test_chunked_shares_vectorized_decomposition(self):
        config = CampaignConfig.smoke()
        assert get_backend("chunked").shard_specs(config) == get_backend(
            "vectorized"
        ).shard_specs(config)
        assert get_backend("chunked").streaming

    def test_event_shards_per_trial(self):
        config = CampaignConfig.smoke().scaled(trials=4)
        specs = get_backend("event").shard_specs(config)
        assert specs == [ShardSpec(trial=t) for t in range(4)]
