"""Unit tests for the analyzer facade and the feasibility report."""

import numpy as np
import pytest

from repro.core.aggregation import AggregationLevel
from repro.core.analyzer import ThreadTimingAnalyzer
from repro.core.laggard import IterationClass
from repro.core.report import FeasibilityReport
from repro.core.timing import TimingDataset


@pytest.fixture(scope="module")
def laggard_dataset():
    """Tight arrivals with laggards in exactly half of the process-iterations."""
    rng = np.random.default_rng(42)
    times = np.abs(rng.normal(25e-3, 0.1e-3, size=(2, 2, 10, 32)))
    times[:, :, ::2, 0] += 4e-3  # every even iteration has a +4 ms laggard
    return TimingDataset.from_compute_times(times, {"application": "lagdemo"})


class TestAnalyzer:
    def test_grouping_is_cached(self, laggard_dataset):
        analyzer = ThreadTimingAnalyzer(laggard_dataset)
        assert analyzer.grouped("process_iteration") is analyzer.grouped(
            AggregationLevel.PROCESS_ITERATION
        )

    def test_laggard_fraction_matches_construction(self, laggard_dataset):
        analyzer = ThreadTimingAnalyzer(laggard_dataset)
        assert analyzer.laggards().laggard_fraction == pytest.approx(0.5)

    def test_percentile_series_in_ms(self, laggard_dataset):
        series = ThreadTimingAnalyzer(laggard_dataset).percentile_series()
        assert series.unit == "ms"
        assert series.mean_median() == pytest.approx(25.0, rel=0.02)

    def test_application_histogram_bin_width(self, laggard_dataset):
        hist = ThreadTimingAnalyzer(laggard_dataset).application_histogram(10e-6)
        assert hist.bin_width == pytest.approx(10e-6)
        assert hist.total == laggard_dataset.n_samples

    def test_exemplar_histogram_of_laggard_class(self, laggard_dataset):
        analyzer = ThreadTimingAnalyzer(laggard_dataset)
        hist = analyzer.exemplar_histogram(IterationClass.LAGGARD, 50e-6)
        assert hist is not None
        assert hist.total == laggard_dataset.n_threads
        # the laggard produces an occupied bin ~4 ms above the main mass
        assert hist.spread() > 3.5e-3

    def test_earlybird_summary_fields(self, laggard_dataset):
        summary = ThreadTimingAnalyzer(laggard_dataset).earlybird(max_groups=10)
        assert set(summary) >= {
            "mean_improvement_s",
            "mean_speedup",
            "mean_hidden_s",
            "mean_potential_overlap_s",
        }
        assert summary["mean_speedup"] >= 1.0


class TestFeasibilityReport:
    def test_report_consistency_with_components(self, laggard_dataset):
        analyzer = ThreadTimingAnalyzer(laggard_dataset)
        report = analyzer.report()
        assert report.application == "lagdemo"
        assert report.n_samples == laggard_dataset.n_samples
        assert report.laggard_fraction == pytest.approx(
            analyzer.laggards().laggard_fraction
        )
        assert report.mean_reclaimable_ms == pytest.approx(
            analyzer.reclaimable().mean_reclaimable_s * 1e3
        )
        assert set(report.process_iteration_pass_rates) == {
            "dagostino",
            "shapiro_wilk",
            "anderson_darling",
        }

    def test_recommendation_rules(self):
        base = dict(
            application="x",
            n_samples=1,
            n_trials=1,
            n_processes=1,
            n_iterations=1,
            n_threads=1,
            mean_median_arrival_ms=25.0,
            max_iqr_ms=1.0,
            skew_direction="symmetric",
            laggard_threshold_ms=1.0,
            class_fractions={},
            mean_reclaimable_ms=10.0,
            mean_idle_ratio=0.1,
            application_level_rejected=True,
            process_iteration_pass_rates={},
        )
        wide = FeasibilityReport(mean_iqr_ms=9.0, laggard_fraction=0.0, **base)
        frequent = FeasibilityReport(mean_iqr_ms=0.2, laggard_fraction=0.3, **base)
        rare = FeasibilityReport(mean_iqr_ms=0.2, laggard_fraction=0.05, **base)
        none = FeasibilityReport(mean_iqr_ms=0.2, laggard_fraction=0.0, **base)
        assert "binned" in wide.recommendation
        assert "timeout" in frequent.recommendation
        assert "rare" in rare.recommendation
        assert "unlikely" in none.recommendation

    def test_as_dict_and_summary(self, laggard_dataset):
        report = ThreadTimingAnalyzer(laggard_dataset).report()
        payload = report.as_dict()
        assert payload["application"] == "lagdemo"
        assert "pass_rate_dagostino" in payload
        text = report.summary()
        assert "feasibility report" in text
        assert "recommendation" in text

    def test_report_without_earlybird_skips_model(self, laggard_dataset):
        report = ThreadTimingAnalyzer(laggard_dataset).report(include_earlybird=False)
        assert report.earlybird_buffer_bytes == 0
        assert report.earlybird_mean_speedup == 1.0
