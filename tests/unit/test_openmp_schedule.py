"""Unit tests for OpenMP loop schedules."""

import numpy as np
import pytest

from repro.openmp.schedule import (
    DynamicSchedule,
    GuidedSchedule,
    StaticSchedule,
    schedule_from_name,
    segment_sums,
    segment_sums_2d,
)


class TestSegmentSums:
    def test_contiguous_blocks(self):
        sums = segment_sums(np.arange(1.0, 11.0), [0, 5, 10])
        np.testing.assert_allclose(sums, [15.0, 40.0])

    def test_empty_segments_sum_to_zero(self):
        sums = segment_sums(np.arange(1.0, 4.0), [0, 3, 3, 3])
        np.testing.assert_allclose(sums, [6.0, 0.0, 0.0])

    def test_tail_beyond_offsets_is_ignored(self):
        # reduceat alone would fold values[4:] into the last segment
        sums = segment_sums(np.arange(10.0), [0, 2, 4])
        np.testing.assert_allclose(sums, [1.0, 5.0])

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(ValueError):
            segment_sums(np.arange(4.0), [0, 3, 1])


class TestSegmentSums2D:
    def test_rows_match_1d_segment_sums(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(size=(6, 17))
        offsets = [0, 4, 4, 11, 15]
        batched = segment_sums_2d(values, offsets)
        for i, row in enumerate(values):
            np.testing.assert_array_equal(batched[i], segment_sums(row, offsets))

    def test_requires_2d_input(self):
        with pytest.raises(ValueError):
            segment_sums_2d(np.arange(4.0), [0, 2, 4])

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(ValueError):
            segment_sums_2d(np.ones((2, 4)), [0, 3, 1])


def _coverage_ok(assignment, n_items):
    """Every item appears exactly once across all threads."""
    combined = np.concatenate([np.asarray(a) for a in assignment])
    return sorted(combined.tolist()) == list(range(n_items))


class TestStaticSchedule:
    def test_blocks_are_contiguous_and_cover_items(self):
        schedule = StaticSchedule()
        assignment = schedule.static_assignment(200, 48)
        assert _coverage_ok(assignment, 200)
        sizes = [len(a) for a in assignment]
        # 200 = 48*4 + 8: the first 8 threads get 5 items
        assert sizes[:8] == [5] * 8
        assert sizes[8:] == [4] * 40
        for block in assignment:
            if len(block) > 1:
                assert np.all(np.diff(block) == 1)

    def test_chunked_static_deals_round_robin(self):
        schedule = StaticSchedule(chunk=2)
        assignment = schedule.static_assignment(8, 2)
        assert assignment[0].tolist() == [0, 1, 4, 5]
        assert assignment[1].tolist() == [2, 3, 6, 7]

    def test_more_threads_than_items_gives_empty_blocks(self):
        assignment = StaticSchedule().static_assignment(3, 8)
        assert _coverage_ok(assignment, 3)
        assert sum(len(a) == 0 for a in assignment) == 5

    def test_simulate_busy_time_sums_costs(self):
        costs = np.arange(1.0, 11.0)
        outcome = StaticSchedule().simulate(costs, 2)
        np.testing.assert_allclose(outcome.busy_time, [15.0, 40.0])

    def test_invalid_chunk_rejected(self):
        with pytest.raises(ValueError):
            StaticSchedule(chunk=0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            StaticSchedule().simulate(np.array([-1.0]), 2)


class TestDynamicSchedule:
    def test_covers_all_items(self):
        costs = np.random.default_rng(0).uniform(0.5, 1.5, size=101)
        outcome = DynamicSchedule(chunk=4).simulate(costs, 7)
        assert _coverage_ok(outcome.assignment, 101)
        assert outcome.busy_time.sum() == pytest.approx(costs.sum())

    def test_balances_skewed_costs_better_than_static(self):
        # one very expensive item at the front: static gives it plus an equal
        # share of the rest to thread 0; dynamic lets other threads absorb
        # the remaining items
        costs = np.ones(64)
        costs[0] = 50.0
        static = StaticSchedule().simulate(costs, 8)
        dynamic = DynamicSchedule(chunk=1).simulate(costs, 8)
        assert dynamic.busy_time.max() < static.busy_time.max()

    def test_chunk_size_respected(self):
        outcome = DynamicSchedule(chunk=5).simulate(np.ones(23), 4)
        chunk_sizes = [n for _, _, n in outcome.chunks]
        assert chunk_sizes[:-1] == [5] * 4
        assert chunk_sizes[-1] == 3


class TestGuidedSchedule:
    def test_chunks_shrink(self):
        outcome = GuidedSchedule(min_chunk=2).simulate(np.ones(100), 4)
        sizes = [n for _, _, n in outcome.chunks]
        assert sizes[0] > sizes[-1]
        assert min(sizes[:-1]) >= 2
        assert _coverage_ok(outcome.assignment, 100)


class TestSimulateBatch:
    """The batch kernels must be row-for-row bit-identical to simulate()."""

    SCHEDULES = [
        StaticSchedule(),
        StaticSchedule(chunk=3),
        DynamicSchedule(chunk=4),
        GuidedSchedule(min_chunk=2),
    ]

    @pytest.mark.parametrize("schedule", SCHEDULES, ids=lambda s: repr(s))
    @pytest.mark.parametrize("n_items, n_threads", [(40, 7), (5, 8), (48, 48)])
    def test_batch_matches_per_row_simulate(self, schedule, n_items, n_threads):
        rng = np.random.default_rng(11)
        costs = rng.uniform(0.5, 1.5, size=(5, n_items))
        batched = schedule.simulate_batch(costs, n_threads)
        assert batched.shape == (5, n_threads)
        for i, row in enumerate(costs):
            np.testing.assert_array_equal(
                batched[i], schedule.simulate(row, n_threads).busy_time
            )

    def test_batch_rejects_1d_costs(self):
        with pytest.raises(ValueError):
            StaticSchedule().simulate_batch(np.ones(8), 2)

    def test_batch_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            StaticSchedule().simulate_batch(-np.ones((2, 8)), 2)


class TestWorkQueueBatchKernel:
    """The row-vectorized work-queue replay (dynamic/guided simulate_batch)."""

    def test_ties_break_to_lowest_thread_id(self):
        # equal costs: chunk k must land on thread k while idle threads
        # remain, exactly as the heap's (time, thread) ordering dictates
        costs = np.full((3, 6), 1.0e-3)
        busy, picks = DynamicSchedule(1).simulate_batch_details(costs, 8)
        assert picks.tolist() == [[0, 1, 2, 3, 4, 5]] * 3
        np.testing.assert_array_equal(busy[:, 6:], 0.0)

    def test_fewer_items_than_threads(self):
        costs = np.random.default_rng(0).uniform(0.5, 1.5, size=(4, 3))
        busy = GuidedSchedule().simulate_batch(costs, 16)
        for i, row in enumerate(costs):
            np.testing.assert_array_equal(
                busy[i], GuidedSchedule().simulate(row, 16).busy_time
            )

    def test_empty_loop_gives_zero_busy_times(self):
        busy = DynamicSchedule(4).simulate_batch(np.empty((3, 0)), 5)
        np.testing.assert_array_equal(busy, np.zeros((3, 5)))

    def test_details_picks_match_simulate_chunks(self):
        rng = np.random.default_rng(7)
        costs = rng.uniform(0.0, 1.0, size=(6, 41))
        for schedule in (DynamicSchedule(5), GuidedSchedule(2)):
            _, picks = schedule.simulate_batch_details(costs, 7)
            for i, row in enumerate(costs):
                outcome = schedule.simulate(row, 7)
                assert picks[i].tolist() == [t for t, _, _ in outcome.chunks]


class TestWorkQueueLayoutMemoization:
    def test_repeated_calls_share_the_cached_arrays(self):
        first = DynamicSchedule(4)._chunk_layout(200, 48)
        second = DynamicSchedule(4)._chunk_layout(200, 48)
        assert all(a is b for a, b in zip(first, second))
        g_first = GuidedSchedule(2)._chunk_layout(200, 48)
        g_second = GuidedSchedule(2)._chunk_layout(200, 48)
        assert all(a is b for a, b in zip(g_first, g_second))

    def test_cached_arrays_are_read_only(self):
        for schedule in (DynamicSchedule(3), GuidedSchedule(2)):
            sizes, bounds = schedule._chunk_layout(100, 8)
            with pytest.raises(ValueError):
                sizes[0] = 99
            with pytest.raises(ValueError):
                bounds[0] = 99

    def test_layouts_match_the_schedule_policy(self):
        sizes, bounds = DynamicSchedule(5)._chunk_layout(23, 4)
        assert sizes.tolist() == [5, 5, 5, 5, 5]
        assert bounds.tolist() == [0, 5, 10, 15, 20, 23]  # clamped tail
        # guided: geometrically shrinking, clamped below by min_chunk,
        # covering the loop exactly
        g_sizes, g_bounds = GuidedSchedule(2)._chunk_layout(100, 4)
        assert g_sizes[0] == 100 // 8
        assert g_sizes[:-1].min() >= 2  # only the final remnant may be short
        assert g_sizes.sum() == 100 and g_bounds[-1] == 100

    def test_guided_layouts_key_on_thread_count(self):
        narrow = GuidedSchedule(1)._chunk_sizes(96, 2)
        wide = GuidedSchedule(1)._chunk_sizes(96, 16)
        assert narrow[0] == 24 and wide[0] == 3


class TestStaticAssignmentMemoization:
    def test_repeated_calls_share_the_cached_arrays(self):
        first = StaticSchedule().static_assignment(200, 48)
        second = StaticSchedule().static_assignment(200, 48)
        assert all(a is b for a, b in zip(first, second))

    def test_cached_arrays_are_read_only(self):
        assignment = StaticSchedule(chunk=4).static_assignment(64, 8)
        with pytest.raises(ValueError):
            assignment[0][0] = 99
        offsets = StaticSchedule._block_offsets(200, 48)
        with pytest.raises(ValueError):
            offsets[0] = 99

    def test_chunked_and_chunkless_keys_do_not_collide(self):
        plain = StaticSchedule().static_assignment(8, 2)
        chunked = StaticSchedule(chunk=2).static_assignment(8, 2)
        assert plain[0].tolist() == [0, 1, 2, 3]
        assert chunked[0].tolist() == [0, 1, 4, 5]


class TestScheduleFromName:
    @pytest.mark.parametrize(
        "name, expected_type",
        [
            ("static", StaticSchedule),
            ("dynamic", DynamicSchedule),
            ("guided", GuidedSchedule),
            ("STATIC", StaticSchedule),
        ],
    )
    def test_names(self, name, expected_type):
        assert isinstance(schedule_from_name(name), expected_type)

    def test_chunk_parsing(self):
        schedule = schedule_from_name("dynamic,16")
        assert isinstance(schedule, DynamicSchedule)
        assert schedule.chunk == 16

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            schedule_from_name("fancy")
