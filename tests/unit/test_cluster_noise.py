"""Unit tests for the OS-noise model."""

import numpy as np
import pytest

from repro.cluster.noise import NoiseEvent, NoiseSpec, OSNoiseModel, total_noise
from repro.cluster.topology import Core

CORE = Core(0, 0, 0)


class TestNoiseSpec:
    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            NoiseSpec(interrupt_rate_hz=-1.0)

    def test_disabled_copy_switches_off(self):
        spec = NoiseSpec()
        assert spec.enabled
        assert not spec.disabled().enabled


class TestEvents:
    def test_periodic_daemon_events_follow_the_period(self):
        spec = NoiseSpec(
            daemon_period_s=0.01,
            daemon_duration_s=1e-6,
            interrupt_rate_hz=0.0,
            jitter_fraction=0.0,
        )
        model = OSNoiseModel(spec, np.random.default_rng(0))
        events = model.events_in(CORE, 0.0, 0.1)
        assert 9 <= len(events) <= 11
        gaps = np.diff([e.start for e in events])
        np.testing.assert_allclose(gaps, 0.01, rtol=1e-9)

    def test_disabled_model_produces_no_events_or_delay(self):
        model = OSNoiseModel(NoiseSpec().disabled(), np.random.default_rng(0))
        assert model.events_in(CORE, 0.0, 1.0) == []
        assert model.delay_over(CORE, 0.0, 0.05) == 0.0

    def test_total_noise_sums_durations(self):
        events = [NoiseEvent(0.0, 1e-3), NoiseEvent(0.5, 2e-3)]
        assert total_noise(events) == pytest.approx(3e-3)


class TestDelays:
    def test_delay_is_nonnegative_and_bounded(self):
        model = OSNoiseModel(NoiseSpec(), np.random.default_rng(1))
        delays = [model.delay_over(CORE, i * 0.03, 0.025) for i in range(200)]
        assert all(d >= 0.0 for d in delays)
        # one window cannot accumulate more noise than physically available
        assert max(delays) < 0.025

    def test_zero_work_has_zero_delay(self):
        model = OSNoiseModel(NoiseSpec(), np.random.default_rng(2))
        assert model.delay_over(CORE, 0.0, 0.0) == 0.0

    def test_negative_work_rejected(self):
        model = OSNoiseModel(NoiseSpec(), np.random.default_rng(2))
        with pytest.raises(ValueError):
            model.delay_over(CORE, 0.0, -1.0)

    def test_jittered_compute_disabled_is_identity(self):
        model = OSNoiseModel(NoiseSpec().disabled(), np.random.default_rng(3))
        assert model.jittered_compute(0.02) == 0.02

    def test_jittered_compute_spread_matches_fraction(self):
        spec = NoiseSpec(jitter_fraction=0.01)
        model = OSNoiseModel(spec, np.random.default_rng(4))
        samples = np.array([model.jittered_compute(1.0) for _ in range(2000)])
        assert samples.std() == pytest.approx(0.01, rel=0.15)

    def test_batch_delays_statistically_match_scalar_path(self):
        spec = NoiseSpec(jitter_fraction=0.0)
        scalar_model = OSNoiseModel(spec, np.random.default_rng(5))
        batch_model = OSNoiseModel(spec, np.random.default_rng(6))
        work = np.full(4000, 0.025)
        scalar = np.array(
            [scalar_model.delay_over(CORE, 0.0, w) for w in work[:1000]]
        )
        batch = batch_model.batch_delays(work)
        assert batch.shape == work.shape
        assert np.all(batch >= 0.0)
        # same order of magnitude of mean injected noise (both include the
        # periodic daemon plus rare interrupts)
        assert abs(batch.mean() - scalar.mean()) < 5e-4

    def test_sample_wall_time_at_least_work(self):
        model = OSNoiseModel(NoiseSpec(jitter_fraction=0.0), np.random.default_rng(7))
        wall = model.sample_wall_time(CORE, 0.0, 0.025)
        assert wall >= 0.025
