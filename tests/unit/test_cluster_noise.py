"""Unit tests for the OS-noise model."""

import numpy as np
import pytest

from repro.cluster.noise import (
    NoiseEvent,
    NoiseSpec,
    OSNoiseModel,
    WindowedNoiseModel,
    total_noise,
)
from repro.cluster.topology import Core

CORE = Core(0, 0, 0)
OTHER_CORE = Core(0, 0, 1)


class TestNoiseSpec:
    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            NoiseSpec(interrupt_rate_hz=-1.0)

    def test_disabled_copy_switches_off(self):
        spec = NoiseSpec()
        assert spec.enabled
        assert not spec.disabled().enabled


class TestEvents:
    def test_periodic_daemon_events_follow_the_period(self):
        spec = NoiseSpec(
            daemon_period_s=0.01,
            daemon_duration_s=1e-6,
            interrupt_rate_hz=0.0,
            jitter_fraction=0.0,
        )
        model = OSNoiseModel(spec, np.random.default_rng(0))
        events = model.events_in(CORE, 0.0, 0.1)
        assert 9 <= len(events) <= 11
        gaps = np.diff([e.start for e in events])
        np.testing.assert_allclose(gaps, 0.01, rtol=1e-9)

    def test_disabled_model_produces_no_events_or_delay(self):
        model = OSNoiseModel(NoiseSpec().disabled(), np.random.default_rng(0))
        assert model.events_in(CORE, 0.0, 1.0) == []
        assert model.delay_over(CORE, 0.0, 0.05) == 0.0

    def test_total_noise_sums_durations(self):
        events = [NoiseEvent(0.0, 1e-3), NoiseEvent(0.5, 2e-3)]
        assert total_noise(events) == pytest.approx(3e-3)


class TestDelays:
    def test_delay_is_nonnegative_and_bounded(self):
        model = OSNoiseModel(NoiseSpec(), np.random.default_rng(1))
        delays = [model.delay_over(CORE, i * 0.03, 0.025) for i in range(200)]
        assert all(d >= 0.0 for d in delays)
        # one window cannot accumulate more noise than physically available
        assert max(delays) < 0.025

    def test_zero_work_has_zero_delay(self):
        model = OSNoiseModel(NoiseSpec(), np.random.default_rng(2))
        assert model.delay_over(CORE, 0.0, 0.0) == 0.0

    def test_negative_work_rejected(self):
        model = OSNoiseModel(NoiseSpec(), np.random.default_rng(2))
        with pytest.raises(ValueError):
            model.delay_over(CORE, 0.0, -1.0)

    def test_jittered_compute_disabled_is_identity(self):
        model = OSNoiseModel(NoiseSpec().disabled(), np.random.default_rng(3))
        assert model.jittered_compute(0.02) == 0.02

    def test_jittered_compute_spread_matches_fraction(self):
        spec = NoiseSpec(jitter_fraction=0.01)
        model = OSNoiseModel(spec, np.random.default_rng(4))
        samples = np.array([model.jittered_compute(1.0) for _ in range(2000)])
        assert samples.std() == pytest.approx(0.01, rel=0.15)

    def test_batch_delays_statistically_match_scalar_path(self):
        spec = NoiseSpec(jitter_fraction=0.0)
        scalar_model = OSNoiseModel(spec, np.random.default_rng(5))
        batch_model = OSNoiseModel(spec, np.random.default_rng(6))
        work = np.full(4000, 0.025)
        scalar = np.array(
            [scalar_model.delay_over(CORE, 0.0, w) for w in work[:1000]]
        )
        batch = batch_model.batch_delays(work)
        assert batch.shape == work.shape
        assert np.all(batch >= 0.0)
        # same order of magnitude of mean injected noise (both include the
        # periodic daemon plus rare interrupts)
        assert abs(batch.mean() - scalar.mean()) < 5e-4

    def test_sample_wall_time_at_least_work(self):
        model = OSNoiseModel(NoiseSpec(jitter_fraction=0.0), np.random.default_rng(7))
        wall = model.sample_wall_time(CORE, 0.0, 0.025)
        assert wall >= 0.025


class TestWindowedNoiseModel:
    """Pre-generated per-core timelines (the event backend's noise path)."""

    def test_overlapping_queries_see_one_consistent_realisation(self):
        # the base model redraws events per query; the windowed model must
        # serve the *same* events for the same window, every time
        model = WindowedNoiseModel(NoiseSpec(), np.random.default_rng(0))
        first = model.events_in(CORE, 0.0, 0.2)
        again = model.events_in(CORE, 0.0, 0.2)
        assert first == again
        # a sub-window is a verbatim slice of the timeline
        sub = model.events_in(CORE, 0.05, 0.1)
        assert sub == [ev for ev in first if 0.05 <= ev.start < 0.1]

    def test_events_are_sorted_and_in_window(self):
        model = WindowedNoiseModel(
            NoiseSpec(interrupt_rate_hz=50.0), np.random.default_rng(1)
        )
        events = model.events_in(CORE, 0.3, 2.7)
        starts = [ev.start for ev in events]
        assert starts == sorted(starts)
        assert all(0.3 <= s < 2.7 for s in starts)

    def test_timeline_extends_across_window_boundaries(self):
        model = WindowedNoiseModel(
            NoiseSpec(), np.random.default_rng(2), window_s=0.05
        )
        # the query spans many generation windows; the daemon ticks must
        # keep their fixed period straight through the seams
        events = model.events_in(CORE, 0.0, 1.0)
        daemon = [ev for ev in events if ev.duration == NoiseSpec().daemon_duration_s]
        gaps = np.diff([ev.start for ev in daemon])
        np.testing.assert_allclose(gaps, 0.01, rtol=1e-9)

    def test_cores_have_independent_timelines(self):
        model = WindowedNoiseModel(NoiseSpec(), np.random.default_rng(3))
        a = model.events_in(CORE, 0.0, 0.5)
        b = model.events_in(OTHER_CORE, 0.0, 0.5)
        assert [ev.start for ev in a] != [ev.start for ev in b]

    def test_delay_over_matches_manual_walk_of_the_timeline(self):
        model = WindowedNoiseModel(NoiseSpec(), np.random.default_rng(4))
        start, work = 0.003, 0.025
        extra = model.delay_over(CORE, start, work)
        # replay the detour semantics by hand from the cached events, over
        # the same bounded look-ahead the model (and the per-query base
        # class) uses
        horizon_end = start + work * 1.5 + model.horizon_s
        events = model.events_in(CORE, start, horizon_end)
        end, expected = start + work, 0.0
        for event in events:
            if event.start < end:
                end += event.duration
                expected += event.duration
        assert extra == pytest.approx(expected, abs=0.0)

    def test_overloaded_noise_population_terminates(self):
        # duty cycle >= 1 (events arrive faster than they drain): the walk
        # must stop at the bounded look-ahead instead of chasing the
        # stretching window (and growing the timeline) forever
        spec = NoiseSpec(interrupt_rate_hz=3000.0, interrupt_mean_s=0.5e-3)
        model = WindowedNoiseModel(spec, np.random.default_rng(9))
        extra = model.delay_over(CORE, 0.0, 0.025)
        assert np.isfinite(extra) and extra >= 0.0
        # bounded by what the look-ahead window can physically contain
        assert extra <= model.spec.interrupt_max_s * len(
            model.events_in(CORE, 0.0, 0.025 * 1.5 + model.horizon_s)
        )

    def test_disabled_and_degenerate_inputs(self):
        model = WindowedNoiseModel(NoiseSpec().disabled(), np.random.default_rng(5))
        assert model.events_in(CORE, 0.0, 1.0) == []
        assert model.delay_over(CORE, 0.0, 0.05) == 0.0
        enabled = WindowedNoiseModel(NoiseSpec(), np.random.default_rng(5))
        assert enabled.delay_over(CORE, 0.0, 0.0) == 0.0
        with pytest.raises(ValueError):
            enabled.delay_over(CORE, 0.0, -1.0)
        with pytest.raises(ValueError):
            WindowedNoiseModel(NoiseSpec(), window_s=0.0)

    def test_windowed_factory_shares_spec_sources_and_rng(self):
        base = OSNoiseModel(NoiseSpec(), np.random.default_rng(6))
        windowed = base.windowed(window_s=0.5)
        assert isinstance(windowed, WindowedNoiseModel)
        assert windowed.spec is base.spec
        assert windowed.sources == base.sources
        assert windowed.window_s == 0.5

    def test_mean_delay_agrees_with_per_query_model(self):
        # same populations, different draw schedule: long-run injected noise
        # per window must agree between the two models
        spec = NoiseSpec(jitter_fraction=0.0)
        per_query = OSNoiseModel(spec, np.random.default_rng(7))
        windowed = WindowedNoiseModel(spec, np.random.default_rng(8))
        work = 0.025
        a = np.array([per_query.delay_over(CORE, i * 0.03, work) for i in range(2000)])
        b = np.array([windowed.delay_over(CORE, i * 0.03, work) for i in range(2000)])
        assert abs(a.mean() - b.mean()) < 5e-5
