"""Unit tests for the multi-level normality study."""

import numpy as np
import pytest

from repro.core.aggregation import AggregationLevel
from repro.core.normality import NormalityStudy
from repro.core.timing import TimingDataset
from repro.stats.battery import TEST_NAMES


def _normal_dataset(seed=0):
    rng = np.random.default_rng(seed)
    times = np.abs(rng.normal(25e-3, 1e-3, size=(2, 2, 10, 48)))
    return TimingDataset.from_compute_times(times, {"application": "normalapp"})


def _skewed_dataset(seed=1):
    rng = np.random.default_rng(seed)
    times = 20e-3 + rng.exponential(2e-3, size=(2, 2, 10, 48))
    return TimingDataset.from_compute_times(times, {"application": "skewapp"})


class TestNormalityStudy:
    def test_normal_data_passes_at_every_level(self):
        study = NormalityStudy(_normal_dataset())
        assert not study.application_rejects_normality()
        rates = study.process_iteration_pass_rates()
        assert all(rates[name] > 0.8 for name in TEST_NAMES)
        passes = study.application_iteration_pass_counts()
        assert all(count >= 8 for count in passes.values())

    def test_skewed_data_rejected_at_every_level(self):
        study = NormalityStudy(_skewed_dataset())
        assert study.application_rejects_normality()
        rates = study.process_iteration_pass_rates()
        assert all(rates[name] < 0.2 for name in TEST_NAMES)

    def test_results_are_cached(self):
        study = NormalityStudy(_normal_dataset())
        first = study.level_result(AggregationLevel.PROCESS_ITERATION)
        second = study.level_result("process_iteration")
        assert first is second

    def test_table1_row_structure(self):
        row = NormalityStudy(_normal_dataset()).table1_row()
        assert row["application"] == "normalapp"
        assert all(
            0.0 <= value <= 100.0
            for key, value in row.items()
            if key != "application"
        )

    def test_application_level_subsampling_keeps_shapiro_valid(self):
        # application level pools 2*2*10*48 = 1920 samples < 5000 here, but a
        # tighter cap must still work and stay deterministic
        study = NormalityStudy(_normal_dataset(), max_application_samples=500)
        result = study.level_result(AggregationLevel.APPLICATION)
        assert result.report.group_size == 500
        again = NormalityStudy(_normal_dataset(), max_application_samples=500)
        np.testing.assert_allclose(
            result.report.outcomes["shapiro_wilk"].statistic,
            again.level_result(AggregationLevel.APPLICATION).report.outcomes[
                "shapiro_wilk"
            ].statistic,
        )

    def test_passing_keys_identify_groups(self):
        study = NormalityStudy(_normal_dataset())
        result = study.level_result(AggregationLevel.APPLICATION_ITERATION)
        keys = result.passing_keys("dagostino")
        assert len(keys) == result.n_passing("dagostino")

    def test_summary_text_mentions_levels(self):
        text = NormalityStudy(_normal_dataset()).summary()
        assert "application level" in text
        assert "process-iteration level" in text
