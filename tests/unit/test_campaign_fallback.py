"""Generic campaign-kernel fallback for non-tensor applications.

Custom applications that only implement the per-shard API
(:meth:`~repro.apps.base.ProxyApplication.item_costs` and friends, with
``campaign_tensor = False``) must still run through the 3-D campaign kernel:
per-shard cost/delay draws under absolute shard scopes feeding one
whole-campaign schedule fold plus whole-tensor jitter/noise passes.  These
tests pin the fallback's two contracts — chunk invariance (bit-identical
samples for any partition of the shard axis) and distributional agreement
with the per-shard ``"batched"`` backend.
"""

from contextlib import contextmanager

import numpy as np
import pytest

from repro.apps import APPLICATIONS
from repro.apps.base import ApplicationConfig, ProxyApplication
from repro.experiments.backends import CampaignTensorBackend, get_backend
from repro.experiments.config import CampaignConfig
from repro.sim.random import PurposeSplitRNG, RandomStreams


class ToyApp(ProxyApplication):
    """Minimal third-party app: per-iteration lognormal item costs only."""

    name = "unit-toy"
    region = "compute"
    campaign_tensor = False

    def item_costs(self, process, iteration, rng):
        return rng.lognormal(mean=-9.0, sigma=0.3, size=64)

    def run_reference_kernel(self, rng):
        return {"norm": 1.0}


class RaggedApp(ToyApp):
    """Item counts differ per process: exercises the per-plane fold branch."""

    name = "unit-ragged"

    def item_costs(self, process, iteration, rng):
        return rng.lognormal(mean=-9.0, sigma=0.3, size=48 + 16 * process)


class DelayedApp(ToyApp):
    """Adds application-level delays so the ``extra`` tensor is non-zero."""

    name = "unit-delayed"

    def application_delays(self, process, iteration, rng):
        return rng.exponential(2.0e-5, size=self.config.n_threads)


@contextmanager
def registered(app_cls):
    assert app_cls.name not in APPLICATIONS
    APPLICATIONS[app_cls.name] = app_cls
    try:
        yield
    finally:
        del APPLICATIONS[app_cls.name]


def _config(app_cls, **overrides):
    params = dict(
        application=app_cls.name,
        trials=3,
        processes=2,
        iterations=60,
        threads=16,
        seed=1234,
        backend="campaign",
    )
    params.update(overrides)
    return CampaignConfig(**params)


class TestChunkInvariance:
    @pytest.mark.parametrize("app_cls", [ToyApp, RaggedApp, DelayedApp])
    def test_any_chunking_is_bit_identical(self, app_cls):
        with registered(app_cls):
            config = _config(app_cls, iterations=20)
            reference = CampaignTensorBackend(chunk_shards=8).run(config)
            for chunk_shards in (1, 2, 3):
                chunked = CampaignTensorBackend(chunk_shards=chunk_shards).run(
                    config
                )
                np.testing.assert_array_equal(
                    chunked.compute_times_s, reference.compute_times_s
                )

    def test_iter_shards_matches_run(self, app_cls=ToyApp):
        with registered(app_cls):
            config = _config(app_cls, iterations=12)
            backend = CampaignTensorBackend(chunk_shards=2)
            streamed = np.concatenate(
                [
                    shard.columns["compute_time_s"]
                    for shard in backend.iter_shards(config)
                ]
            )
            np.testing.assert_array_equal(
                streamed,
                CampaignTensorBackend(chunk_shards=2).run(config).compute_times_s,
            )


class TestDistributionalAgreement:
    @pytest.mark.parametrize("app_cls", [ToyApp, DelayedApp])
    def test_matches_batched_backend(self, app_cls):
        """Campaign fallback and per-shard batched path agree in distribution.

        Draw order necessarily differs (whole-tensor jitter/noise vs
        per-shard), so the comparison is on summary statistics, not bits.
        """
        with registered(app_cls):
            config = _config(app_cls)
            fallback = CampaignTensorBackend().run(config).compute_times_s
            batched = (
                get_backend("batched")
                .run(config.with_backend("batched"))
                .compute_times_s
            )
            assert fallback.shape == batched.shape
            assert np.isclose(fallback.mean(), batched.mean(), rtol=0.05)
            for percentile in (25, 50, 75, 95):
                assert np.isclose(
                    np.percentile(fallback, percentile),
                    np.percentile(batched, percentile),
                    rtol=0.05,
                ), f"p{percentile} diverged"

    def test_ragged_planes_fold_per_shard(self):
        """Heterogeneous item counts still produce the full tensor."""
        with registered(RaggedApp):
            config = _config(RaggedApp, iterations=15)
            dataset = CampaignTensorBackend().run(config)
            assert dataset.n_samples == 3 * 2 * 15 * 16
            assert np.all(dataset.compute_times_s > 0)


class TestAppLevelContract:
    def test_plain_generator_accepted(self):
        """``maybe_scope`` is a no-op for plain Generators — still works."""
        app = ToyApp(ApplicationConfig(n_threads=8, n_iterations=10))
        times = app.thread_compute_times_campaign(
            shards=[(0, 0), (0, 1), (1, 0)],
            rng=np.random.default_rng(7),
        )
        assert times.shape == (3, 10, 8)
        assert np.all(times > 0)

    def test_shard_scopes_are_absolute(self):
        """The same shard's draws do not depend on its chunk neighbours."""
        app = ToyApp(ApplicationConfig(n_threads=8, n_iterations=10))

        def sample(shards):
            rng = PurposeSplitRNG(RandomStreams(99), "unit-toy", "campaign")
            return app.thread_compute_times_campaign(shards=shards, rng=rng)

        together = sample([(0, 0), (0, 1)])
        alone = sample([(0, 1)])
        np.testing.assert_array_equal(together[1], alone[0])

    def test_delay_shape_mismatch_rejected(self):
        class BadDelays(ToyApp):
            def application_delays_batch(self, process, n_iterations, rng):
                return np.zeros((n_iterations, 3))

        app = BadDelays(ApplicationConfig(n_threads=8, n_iterations=5))
        with pytest.raises(ValueError, match="application_delays_batch"):
            app.thread_compute_times_campaign(
                shards=[(0, 0)], rng=np.random.default_rng(0)
            )
