"""Unit tests for the MiniMD substrate (lattice, neighbours, forces, proxy app)."""

import numpy as np
import pytest

from repro.apps.minimd import (
    MiniMDApp,
    MiniMDConfig,
    build_neighbor_lists,
    expected_neighbors,
    fcc_lattice,
    lennard_jones_forces,
)
from repro.apps.minimd.app import TARGET_MEDIAN_ARRIVAL_S, TARGET_WARMUP_MEDIAN_S
from repro.apps.minimd.integrate import run_md
from repro.apps.minimd.lattice import DEFAULT_DENSITY


class TestLattice:
    def test_atom_count_and_density(self):
        box = fcc_lattice((3, 3, 3))
        assert box.n_atoms == 4 * 27
        assert box.density == pytest.approx(DEFAULT_DENSITY, rel=1e-12)

    def test_velocities_have_zero_total_momentum(self, rng):
        box = fcc_lattice((2, 2, 2), rng=rng)
        np.testing.assert_allclose(box.velocities.sum(axis=0), 0.0, atol=1e-12)

    def test_invalid_cells_rejected(self):
        with pytest.raises(ValueError):
            fcc_lattice((0, 1, 1))


class TestNeighbors:
    def test_expected_neighbors_formula(self):
        full = expected_neighbors(0.8442, 2.5, half_list=False)
        assert full == pytest.approx(4.0 / 3.0 * np.pi * 2.5**3 * 0.8442)
        assert expected_neighbors(0.8442, 2.5) == pytest.approx(full / 2.0)

    def test_cell_list_counts_match_expectation(self):
        box = fcc_lattice((4, 4, 4))
        lists = build_neighbor_lists(box, cutoff=2.5, skin=0.0)
        measured = lists.counts().mean()
        expected = expected_neighbors(box.density, 2.5)
        assert measured == pytest.approx(expected, rel=0.15)

    def test_half_lists_store_each_pair_once(self):
        box = fcc_lattice((3, 3, 3))
        lists = build_neighbor_lists(box)
        for i, neighbors in enumerate(lists.neighbors):
            assert np.all(neighbors > i)

    def test_invalid_cutoff_rejected(self):
        with pytest.raises(ValueError):
            build_neighbor_lists(fcc_lattice((2, 2, 2)), cutoff=0.0)


class TestForces:
    def test_perfect_lattice_has_vanishing_net_forces(self):
        box = fcc_lattice((3, 3, 3))
        lists = build_neighbor_lists(box)
        result = lennard_jones_forces(box, lists)
        # by symmetry every atom's force is ~0 on an undisturbed fcc lattice
        np.testing.assert_allclose(result.forces, 0.0, atol=1e-9)
        assert result.potential_energy < 0.0  # bound crystal

    def test_newtons_third_law_total_force(self, rng):
        box = fcc_lattice((3, 3, 3), rng=rng)
        # perturb positions so forces are non-trivial
        perturbed = box.positions + rng.normal(0.0, 0.05, size=box.positions.shape)
        box = type(box)(positions=perturbed % box.box_length,
                        velocities=box.velocities, box_length=box.box_length)
        lists = build_neighbor_lists(box)
        result = lennard_jones_forces(box, lists)
        np.testing.assert_allclose(result.forces.sum(axis=0), 0.0, atol=1e-9)
        assert result.pairs_within_cutoff > 0

    def test_energy_conservation_over_short_run(self):
        box = fcc_lattice((3, 3, 3), rng=np.random.default_rng(0), temperature=0.2)
        lists = build_neighbor_lists(box)
        initial = lennard_jones_forces(box, lists)
        state = run_md(box, n_steps=10, dt=0.002, rebuild_every=0)
        e0 = initial.potential_energy + 0.5 * float(np.sum(box.velocities**2))
        drift = abs(state.total_energy - e0) / abs(e0)
        assert drift < 5e-3


class TestMiniMDApp:
    def test_calibration_hits_target_median(self):
        app = MiniMDApp()
        base = app.base_thread_times(0, 50, np.random.default_rng(0))
        assert np.median(base) == pytest.approx(TARGET_MEDIAN_ARRIVAL_S, rel=0.01)

    def test_warmup_phase_widens_and_shifts_arrivals(self):
        app = MiniMDApp()
        rng = np.random.default_rng(1)
        warm = app.thread_compute_times(process=0, iteration=3, rng=rng)
        steady = app.thread_compute_times(process=0, iteration=100, rng=rng)
        assert app.in_warmup(3) and not app.in_warmup(100)
        assert warm.std() > 3 * steady.std()
        assert np.median(warm) > np.median(steady)
        assert np.median(warm) == pytest.approx(TARGET_WARMUP_MEDIAN_S, rel=0.05)

    def test_steady_phase_is_tight(self):
        app = MiniMDApp()
        steady = app.thread_compute_times(
            process=0, iteration=150, rng=np.random.default_rng(2)
        )
        assert (steady.max() - steady.min()) < 1.0e-3

    def test_atoms_per_process_partition(self):
        app = MiniMDApp(MiniMDConfig(problem_cells=16, n_job_processes=4))
        assert app.atoms_per_process == 4 * 16**3 // 4

    def test_reference_kernel_quantities(self):
        app = MiniMDApp(MiniMDConfig(kernel_cells=3, kernel_steps=3))
        result = app.run_reference_kernel(np.random.default_rng(3))
        assert result["atoms"] == 4 * 27
        assert result["net_force_magnitude"] < 1e-6
        assert result["mean_neighbors"] == pytest.approx(
            result["expected_neighbors"], rel=0.25
        )

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MiniMDConfig(problem_cells=0)
        with pytest.raises(ValueError):
            MiniMDConfig(warmup_iterations=-1)


class TestBatchedWorkModel:
    def test_item_costs_batch_shape_and_scale(self):
        app = MiniMDApp(MiniMDConfig(n_threads=8, n_iterations=10))
        costs = app.item_costs_batch(0, 10, np.random.default_rng(0))
        assert costs.shape == (10, 8)
        single = app.item_costs(0, 0, np.random.default_rng(0))
        assert costs.mean() == pytest.approx(single.mean(), rel=0.01)

    def test_application_delays_batch_limits_to_warmup_rows(self):
        app = MiniMDApp(MiniMDConfig(n_threads=8, warmup_iterations=3))
        delays = app.application_delays_batch(0, 10, np.random.default_rng(1))
        assert delays.shape == (10, 8)
        assert np.all(delays[:3] >= 0)
        assert np.any(delays[:3] > 0)
        assert np.all(delays[3:] == 0)

    def test_short_shards_clip_the_warmup_window(self):
        app = MiniMDApp(MiniMDConfig(n_threads=4, warmup_iterations=19))
        delays = app.application_delays_batch(0, 5, np.random.default_rng(2))
        assert delays.shape == (5, 4)
        assert np.any(delays > 0)
