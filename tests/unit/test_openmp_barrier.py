"""Unit tests for the simulated barrier."""

import pytest

from repro.openmp.barrier import Barrier
from repro.sim.engine import SimulationEngine
from repro.sim.events import Delay


def _run_team(durations, n_rounds=1):
    """Spawn one thread per duration; every round: compute then barrier."""
    engine = SimulationEngine()
    barrier = Barrier(engine, len(durations))
    finish_times = {}

    def body(thread_id, duration):
        for round_idx in range(n_rounds):
            yield Delay(duration)
            yield from barrier.wait(thread_id)
        finish_times[thread_id] = engine.now

    procs = [
        engine.spawn(body(t, d), name=f"t{t}") for t, d in enumerate(durations)
    ]
    engine.run_until_complete(procs)
    return engine, barrier, finish_times


class TestBarrier:
    def test_all_threads_released_at_last_arrival(self):
        _, barrier, finish = _run_team([1.0, 2.0, 5.0])
        assert barrier.release_times[0] == pytest.approx(5.0)
        assert all(t == pytest.approx(5.0) for t in finish.values())

    def test_idle_time_matches_arrival_gaps(self):
        _, barrier, _ = _run_team([1.0, 2.0, 5.0])
        idle = barrier.idle_time(0)
        assert idle[0] == pytest.approx(4.0)
        assert idle[1] == pytest.approx(3.0)
        assert idle[2] == pytest.approx(0.0)

    def test_barrier_is_reusable_across_generations(self):
        _, barrier, finish = _run_team([1.0, 3.0], n_rounds=3)
        assert barrier.generation == 3
        assert all(t == pytest.approx(9.0) for t in finish.values())

    def test_single_thread_barrier_never_blocks(self):
        _, barrier, finish = _run_team([2.0])
        assert finish[0] == pytest.approx(2.0)
        assert barrier.generation == 1

    def test_idle_time_before_release_rejected(self):
        engine = SimulationEngine()
        barrier = Barrier(engine, 2)
        with pytest.raises(ValueError):
            barrier.idle_time(0)

    def test_invalid_thread_count_rejected(self):
        with pytest.raises(ValueError):
            Barrier(SimulationEngine(), 0)
