"""Unit tests for the analytic collective cost models."""

import math

import pytest

from repro.mpi.collectives import (
    allgather_time,
    allreduce_time,
    barrier_time,
    bcast_time,
    halo_exchange_time,
    reduce_time,
)
from repro.mpi.network import omni_path

NET = omni_path()


class TestCollectiveCosts:
    def test_single_rank_collectives_are_free(self):
        assert barrier_time(NET, 1) == 0.0
        assert bcast_time(NET, 1, 1024) == 0.0
        assert allreduce_time(NET, 1, 1024) == 0.0
        assert allgather_time(NET, 1, 1024) == 0.0

    def test_barrier_scales_logarithmically(self):
        t2 = barrier_time(NET, 2)
        t16 = barrier_time(NET, 16)
        assert t16 == pytest.approx(4 * t2)

    def test_bcast_grows_with_size_and_ranks(self):
        assert bcast_time(NET, 8, 1 << 20) > bcast_time(NET, 8, 1 << 10)
        assert bcast_time(NET, 16, 1 << 10) > bcast_time(NET, 4, 1 << 10)

    def test_reduce_equals_bcast_model(self):
        assert reduce_time(NET, 8, 4096) == pytest.approx(bcast_time(NET, 8, 4096))

    def test_allreduce_rounds(self):
        single_round = allreduce_time(NET, 2, 8192)
        assert allreduce_time(NET, 8, 8192) == pytest.approx(3 * single_round)

    def test_allgather_linear_in_ranks(self):
        per_step = allgather_time(NET, 2, 1024)
        assert allgather_time(NET, 5, 1024) == pytest.approx(4 * per_step)

    def test_halo_exchange_zero_neighbors_free(self):
        assert halo_exchange_time(NET, 1024, n_neighbors=0) == 0.0

    def test_halo_exchange_serialises_outgoing_data(self):
        one = halo_exchange_time(NET, 1 << 20, n_neighbors=1)
        six = halo_exchange_time(NET, 1 << 20, n_neighbors=6)
        assert six > one
        assert six < 6.5 * one  # latency paid once, serialisation six times

    def test_invalid_rank_counts_rejected(self):
        with pytest.raises(ValueError):
            barrier_time(NET, 0)
        with pytest.raises(ValueError):
            halo_exchange_time(NET, 10, n_neighbors=-1)
