"""Unit tests for point-to-point messaging and communicators."""

import pytest

from repro.mpi.comm import Communicator
from repro.mpi.p2p import ANY_SOURCE, ANY_TAG, Message, MessageQueue
from repro.sim.engine import SimulationEngine
from repro.sim.events import Delay


class TestMessageMatching:
    def test_message_matches_wildcards(self):
        message = Message(source=2, dest=0, tag=7, nbytes=8)
        assert message.matches(ANY_SOURCE, ANY_TAG)
        assert message.matches(2, 7)
        assert not message.matches(1, 7)
        assert not message.matches(2, 8)

    def test_unexpected_message_then_receive(self):
        engine = SimulationEngine()
        queue = MessageQueue(engine, rank=0)
        queue.deliver(Message(source=1, dest=0, tag=3, nbytes=8))
        assert queue.pending_unexpected == 1
        event = queue.post_receive(source=1, tag=3)
        assert event.triggered
        assert queue.pending_unexpected == 0

    def test_posted_receive_then_delivery(self):
        engine = SimulationEngine()
        queue = MessageQueue(engine, rank=0)
        event = queue.post_receive(source=ANY_SOURCE, tag=ANY_TAG)
        assert not event.triggered
        queue.deliver(Message(source=5, dest=0, tag=1, nbytes=16))
        assert event.triggered
        assert event.value.source == 5

    def test_non_matching_receive_stays_posted(self):
        engine = SimulationEngine()
        queue = MessageQueue(engine, rank=0)
        event = queue.post_receive(source=3, tag=9)
        queue.deliver(Message(source=1, dest=0, tag=9, nbytes=4))
        assert not event.triggered
        assert queue.pending_unexpected == 1
        assert queue.pending_receives == 1


class TestCommunicator:
    def test_send_recv_round_trip(self):
        engine = SimulationEngine()
        comm = Communicator(engine, 2)
        received = {}

        def sender():
            yield Delay(1.0e-3)
            yield from comm.rank(0).send(1, nbytes=4096, tag=5, payload="hello")

        def receiver():
            message = yield from comm.rank(1).recv(source=0, tag=5)
            received["message"] = message
            received["time"] = engine.now

        procs = [engine.spawn(receiver()), engine.spawn(sender())]
        engine.run_until_complete(procs)
        assert received["message"].payload == "hello"
        # arrival strictly after the send was posted (latency + serialisation)
        assert received["time"] > 1.0e-3

    def test_isend_schedules_future_delivery(self):
        engine = SimulationEngine()
        comm = Communicator(engine, 2)
        message = comm.rank(0).isend(1, nbytes=1 << 20)
        assert message.arrival_time > 0.0
        engine.run()
        assert comm.rank(1).queue.delivered == 1

    def test_barrier_releases_all_ranks_together(self):
        engine = SimulationEngine()
        comm = Communicator(engine, 4)
        release_times = {}

        def body(rank, delay):
            yield Delay(delay)
            yield from comm.rank(rank).barrier()
            release_times[rank] = engine.now

        procs = [
            engine.spawn(body(r, 0.5e-3 * (r + 1))) for r in range(4)
        ]
        engine.run_until_complete(procs)
        assert len(set(round(t, 12) for t in release_times.values())) == 1
        assert min(release_times.values()) >= 2.0e-3  # last arrival

    def test_hops_depend_on_placement(self):
        from repro.cluster.topology import Cluster

        cluster = Cluster(2, sockets_per_node=2, cores_per_socket=24)
        placements = cluster.place_processes(2, 48)
        engine = SimulationEngine()
        comm = Communicator(engine, 2, cluster=cluster, placements=placements)
        assert comm.hops_between(0, 0) == 0
        assert comm.hops_between(0, 1) == 2

    def test_invalid_rank_lookup(self):
        comm = Communicator(SimulationEngine(), 2)
        with pytest.raises(IndexError):
            comm.rank(2)
