"""Unit tests for the early-bird feasibility model."""

import numpy as np
import pytest

from repro.core.earlybird import EarlyBirdModel
from repro.mpi.network import NetworkModel

#: Zero-latency, zero-overhead network at 1 GB/s for easy hand calculations.
FLAT = NetworkModel(
    latency_s=0.0,
    per_hop_latency_s=0.0,
    o_send_s=0.0,
    o_recv_s=0.0,
    bandwidth_bytes_per_s=1.0e9,
    eager_threshold_bytes=1 << 40,
)


class TestPartitioning:
    def test_partition_sizes_cover_buffer(self):
        model = EarlyBirdModel(FLAT, buffer_bytes=1000, hops=0)
        sizes = model.partition_sizes(48)
        assert sizes.sum() == 1000
        assert sizes.max() - sizes.min() <= 1

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            EarlyBirdModel(buffer_bytes=0)
        model = EarlyBirdModel(FLAT)
        with pytest.raises(ValueError):
            model.partition_sizes(0)
        with pytest.raises(ValueError):
            model.evaluate([])
        with pytest.raises(ValueError):
            model.evaluate([-1.0])


class TestSingleLaggardScenario:
    """The scenario of the original partitioned-communication analysis: all
    threads but one arrive together, one arrives late."""

    def _outcome(self, laggard_delay_s=5.0e-3):
        arrivals = np.full(8, 10.0e-3)
        arrivals[-1] += laggard_delay_s
        model = EarlyBirdModel(FLAT, buffer_bytes=8_000_000, hops=0)  # 8 ms wire time
        return model.evaluate(arrivals)

    def test_bulk_waits_for_laggard(self):
        outcome = self._outcome()
        assert outcome.bulk_completion_s == pytest.approx(15e-3 + 8e-3)

    def test_earlybird_hides_early_partitions_behind_laggard(self):
        outcome = self._outcome()
        # The 7 early partitions start draining at 10 ms and keep the NIC busy
        # until 17 ms; the laggard's partition (ready at 15 ms) queues behind
        # them and completes at 18 ms — 5 ms earlier than the bulk send, which
        # cannot even start before 15 ms.
        assert outcome.earlybird_completion_s == pytest.approx(18e-3, rel=1e-6)
        assert outcome.improvement_s == pytest.approx(5e-3, rel=1e-6)
        assert outcome.speedup > 1.25

    def test_overlap_windows_match_reclaimable_time(self):
        outcome = self._outcome()
        assert outcome.potential_overlap_s == pytest.approx(7 * 5e-3)

    def test_overlap_efficiency_in_unit_interval(self):
        outcome = self._outcome()
        assert 0.0 < outcome.overlap_efficiency <= 1.0

    def test_simultaneous_arrivals_give_no_benefit(self):
        model = EarlyBirdModel(FLAT, buffer_bytes=1_000_000, hops=0)
        outcome = model.evaluate(np.full(8, 10.0e-3))
        assert outcome.improvement_s <= 1e-9
        assert outcome.speedup == pytest.approx(1.0, rel=1e-6)

    def test_larger_spread_increases_improvement(self):
        model = EarlyBirdModel(FLAT, buffer_bytes=8_000_000, hops=0)
        tight = model.evaluate(np.linspace(10.0e-3, 10.5e-3, 8))
        wide = model.evaluate(np.linspace(2.0e-3, 10.5e-3, 8))
        assert wide.improvement_s > tight.improvement_s


class TestGroupEvaluation:
    def test_evaluate_groups_shapes_and_consistency(self):
        rng = np.random.default_rng(0)
        groups = rng.uniform(20e-3, 30e-3, size=(10, 16))
        model = EarlyBirdModel(FLAT, buffer_bytes=1_000_000, hops=0)
        results = model.evaluate_groups(groups)
        assert results["improvement_s"].shape == (10,)
        single = model.evaluate(groups[3])
        assert results["improvement_s"][3] == pytest.approx(single.improvement_s)
        assert np.all(results["speedup"] >= 1.0 - 1e-9)

    def test_as_dict_round_trip(self):
        model = EarlyBirdModel(FLAT, buffer_bytes=1_000_000, hops=0)
        outcome = model.evaluate(np.linspace(1e-3, 2e-3, 4))
        payload = outcome.as_dict()
        assert payload["buffer_bytes"] == 1_000_000
        assert payload["bulk_completion_ms"] >= payload["earlybird_completion_ms"]
