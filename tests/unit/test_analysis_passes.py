"""Unit tests for the analysis-pass registry, shard aggregation and passes."""

import numpy as np
import pytest

from repro.analysis import (
    AnalysisContext,
    AnalysisPass,
    available_analyses,
    get_analysis,
    register_analysis,
    resolve_analyses,
    run_analyses,
    unregister_analysis,
)
from repro.analysis.passes import (
    HistogramPass,
    LaggardsPass,
    NormalityPass,
    PercentilesPass,
    ReclaimablePass,
)
from repro.core.aggregation import AggregationLevel, aggregate, aggregate_shard
from repro.core.analyzer import ThreadTimingAnalyzer
from repro.core.laggard import IterationClass
from repro.core.timing import TimingDataset, TimingShard

BUILTIN = ("earlybird", "histogram", "laggards", "normality", "percentiles", "reclaimable")


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(42)
    times = np.abs(rng.normal(25e-3, 0.1e-3, size=(2, 2, 10, 32)))
    times[:, :, ::2, 0] += 4e-3
    return TimingDataset.from_compute_times(times, {"application": "lagdemo"})


@pytest.fixture(scope="module")
def shards(dataset):
    """Per-(trial, process) shards of the dataset."""
    return [
        TimingShard.from_dataset(
            dataset.select(trial=int(t), process=int(p)), trial=int(t), process=int(p)
        )
        for t in dataset.trials
        for p in dataset.processes
    ]


@pytest.fixture(scope="module")
def context(dataset):
    return AnalysisContext.from_dataset(dataset, exact=True)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN) <= set(available_analyses())

    def test_get_analysis_instantiates(self):
        assert get_analysis("percentiles").name == "percentiles"
        with pytest.raises(ValueError):
            get_analysis("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):

            @register_analysis("percentiles")
            class Clash(PercentilesPass):
                pass

    def test_custom_pass_round_trip(self, shards, context):
        @register_analysis("sample-count")
        class SampleCountPass(AnalysisPass):
            title = "total sample count"

            def prepare(self, context):
                return 0

            def accumulate(self, state, shard, context):
                return state + shard.n_samples

            def merge(self, a, b):
                return a + b

            def finalize(self, state, context):
                return state

        try:
            results = run_analyses(shards, ["sample-count"], context)
            assert results["sample-count"] == sum(s.n_samples for s in shards)
        finally:
            unregister_analysis("sample-count")
        assert "sample-count" not in available_analyses()

    def test_resolve_analyses_forms(self):
        passes = resolve_analyses("all")
        assert {p.name for p in passes} == set(available_analyses())
        only = resolve_analyses([PercentilesPass(), "laggards"])
        assert [p.name for p in only] == ["percentiles", "laggards"]
        with pytest.raises(ValueError):
            resolve_analyses(["laggards", "laggards"])


class TestAggregateShard:
    @pytest.mark.parametrize("level", list(AggregationLevel))
    def test_whole_dataset_shard_matches_aggregate(self, dataset, level):
        shard = TimingShard.from_dataset(dataset, trial=0, process=None)
        expected = aggregate(dataset, level)
        actual = aggregate_shard(shard, level)
        assert actual.keys == expected.keys
        np.testing.assert_array_equal(actual.values, expected.values)

    def test_row_order_does_not_matter(self, dataset):
        rng = np.random.default_rng(0)
        perm = rng.permutation(len(dataset))
        shuffled = TimingShard(
            trial=0,
            process=None,
            columns={name: dataset.column(name)[perm] for name in dataset.columns},
        )
        expected = aggregate(dataset, AggregationLevel.PROCESS_ITERATION)
        actual = aggregate_shard(shuffled, AggregationLevel.PROCESS_ITERATION)
        assert actual.keys == expected.keys
        np.testing.assert_array_equal(actual.values, expected.values)

    def test_group_lookup_is_indexed(self, dataset):
        grouped = aggregate(dataset, AggregationLevel.PROCESS_ITERATION)
        assert grouped._index is None
        row = grouped.group((1, 1, 3))
        assert grouped._index is not None
        np.testing.assert_array_equal(
            row, dataset.select(trial=1, process=1, iteration=3).compute_times_s
        )
        with pytest.raises(KeyError):
            grouped.group((9, 9, 9))


class TestPassesAgainstLegacy:
    """Every pass folded over real shards equals the in-memory analyzer."""

    def test_percentiles(self, dataset, shards, context):
        series = run_analyses(shards, ["percentiles"], context)["percentiles"]
        legacy = ThreadTimingAnalyzer(dataset).percentile_series()
        np.testing.assert_array_equal(series.values, legacy.values)
        assert series.percentiles == legacy.percentiles

    def test_histogram(self, dataset, shards, context):
        hist = run_analyses(shards, [HistogramPass(50e-6)], context)["histogram"]
        legacy = ThreadTimingAnalyzer(dataset).application_histogram(50e-6)
        np.testing.assert_array_equal(hist.counts, legacy.counts)
        np.testing.assert_array_equal(hist.edges, legacy.edges)

    def test_laggards(self, dataset, shards, context):
        result = run_analyses(shards, ["laggards"], context)["laggards"]
        legacy = ThreadTimingAnalyzer(dataset).laggards()
        assert result.laggard_fraction == legacy.laggard_fraction
        assert result.analysis.keys == legacy.keys
        np.testing.assert_array_equal(result.analysis.gap_s, legacy.gap_s)
        assert result.analysis.classes == legacy.classes

    def test_reclaimable(self, dataset, shards, context):
        summary = run_analyses(shards, ["reclaimable"], context)["reclaimable"]
        assert summary == ThreadTimingAnalyzer(dataset).reclaimable()

    def test_normality(self, dataset, shards, context):
        result = run_analyses(shards, ["normality"], context)["normality"]
        study = ThreadTimingAnalyzer(dataset).normality()
        assert result.application_rejected == study.application_rejects_normality()
        assert result.process_iteration_pass_rates == study.process_iteration_pass_rates()

    def test_earlybird(self, dataset, shards, context):
        result = run_analyses(shards, ["earlybird"], context)["earlybird"]
        legacy = ThreadTimingAnalyzer(dataset).earlybird()
        for key in ("mean_improvement_s", "mean_speedup", "mean_hidden_s"):
            assert result[key] == legacy[key]

    def test_full_report(self, dataset, shards, context):
        results = run_analyses(shards, "all", context)
        streaming = results.report().as_dict()
        legacy = ThreadTimingAnalyzer(dataset).report().as_dict()
        assert streaming == legacy


class TestShardOrderInvariance:
    def test_exact_products_survive_shuffling(self, shards, context):
        rng = np.random.default_rng(7)
        shuffled = list(shards)
        rng.shuffle(shuffled)
        a = run_analyses(shards, "all", context)
        b = run_analyses(shuffled, "all", context)
        assert a.report().as_dict() == b.report().as_dict()
        np.testing.assert_array_equal(
            a["percentiles"].values, b["percentiles"].values
        )
        np.testing.assert_array_equal(a["histogram"].counts, b["histogram"].counts)
        assert a["laggards"].analysis.keys == b["laggards"].analysis.keys

    def test_bounded_mode_fractions_stay_exact(self, dataset, shards):
        context = AnalysisContext.from_dataset(dataset, exact=False)
        results = run_analyses(shards, ["laggards", "reclaimable"], context)
        legacy = ThreadTimingAnalyzer(dataset)
        assert (
            results["laggards"].laggard_fraction
            == legacy.laggards().laggard_fraction
        )
        assert results["laggards"].analysis is None
        assert results["reclaimable"].mean_reclaimable_s == pytest.approx(
            legacy.reclaimable().mean_reclaimable_s, rel=1e-9
        )


class TestPassValidation:
    def test_empty_shard_stream_rejected(self, context):
        with pytest.raises(ValueError):
            run_analyses([], ["percentiles"], context)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            HistogramPass(0.0)
        with pytest.raises(ValueError):
            LaggardsPass(threshold_s=-1.0)

    def test_report_requires_core_passes(self, shards, context):
        results = run_analyses(shards, ["percentiles"], context)
        with pytest.raises(ValueError):
            results.report()


class TestSketchExemplars:
    """Bounded-mode exemplar selection from the candidate pools."""

    def test_candidate_pools_only_in_sketch_mode(self, dataset, shards, context):
        exact = run_analyses(shards, ["laggards"], context)["laggards"]
        assert exact.candidates is None

        sketch_context = AnalysisContext.from_dataset(dataset, exact=False)
        sketch = run_analyses(shards, ["laggards"], sketch_context)["laggards"]
        assert sketch.analysis is None
        assert set(sketch.candidates) == {cls.value for cls in IterationClass}

    def test_sketch_exemplar_is_a_real_member_of_its_class(
        self, dataset, shards, context
    ):
        """The approximate exemplar must carry an exact-classified key.

        Groups are classified whole (each (trial, process, iteration) group
        lives inside one shard), so every pooled candidate's class agrees
        with the exact analysis — only *which* member is picked is
        approximate.
        """
        analysis = run_analyses(shards, ["laggards"], context)["laggards"].analysis
        sketch_context = AnalysisContext.from_dataset(dataset, exact=False)
        sketch = run_analyses(shards, ["laggards"], sketch_context)["laggards"]
        for cls in IterationClass:
            exact_keys = {
                analysis.keys[i]
                for i, c in enumerate(analysis.classes)
                if c is cls
            }
            key = sketch.exemplar(cls)
            if exact_keys:
                assert key in exact_keys
            else:
                assert key is None

    def test_shard_order_does_not_change_pool_membership(self, dataset, shards):
        context = AnalysisContext.from_dataset(dataset, exact=False)
        forward = run_analyses(shards, ["laggards"], context)["laggards"]
        backward = run_analyses(list(reversed(shards)), ["laggards"], context)[
            "laggards"
        ]
        for cls in IterationClass:
            assert sorted(forward.candidates[cls.value].keys) == sorted(
                backward.candidates[cls.value].keys
            )

    def test_tiny_capacity_still_selects(self, dataset, shards):
        context = AnalysisContext.from_dataset(dataset, exact=False)
        pass_ = LaggardsPass(candidate_capacity=4)
        result = run_analyses(shards, [pass_], context)["laggards"]
        assert all(len(pool) <= 4 for pool in result.candidates.values())
        assert result.exemplar(IterationClass.LAGGARD) is not None
