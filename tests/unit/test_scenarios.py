"""Unit tests of the scenario subsystem: registries, presets, composition."""

import numpy as np
import pytest

from repro.cluster.config import MachineConfig
from repro.cluster.noise import NoiseSourceSpec, NoiseSpec, OSNoiseModel
from repro.cluster.topology import Core
from repro.experiments.config import CampaignConfig
from repro.scenarios import (
    Scenario,
    ScenarioMatrix,
    available_machines,
    available_noise_profiles,
    available_noise_sources,
    available_scenarios,
    get_machine,
    get_noise_source,
    get_scenario,
    make_noise_source,
    noise_profile,
    register_machine,
    register_noise_source,
    register_scenario,
    unregister_machine,
    unregister_noise_source,
    unregister_scenario,
)
from repro.scenarios.sources import NoiseSource, PeriodicDaemonSource, SilentSource

CORE = Core(0, 0, 0)


class TestNoiseSourceRegistry:
    def test_builtins_registered(self):
        assert {
            "periodic-daemon",
            "poisson-interrupts",
            "pareto-interrupts",
            "cron-burst",
            "network-storm",
            "silent",
        } <= set(available_noise_sources())

    def test_unknown_source_lists_registered(self):
        with pytest.raises(ValueError, match="registered sources"):
            get_noise_source("thermal-throttle")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_noise_source("silent")
            class Impostor(NoiseSource):
                def events_in(self, core_key, start_s, end_s, rng):
                    return []

                def batch_extra(self, work, rng):
                    return np.zeros_like(work)

    def test_register_replace_and_unregister(self):
        @register_noise_source("test-temp", replace=True)
        class TempSource(SilentSource):
            pass

        try:
            assert get_noise_source("test-temp") is TempSource
        finally:
            unregister_noise_source("test-temp")
        assert "test-temp" not in available_noise_sources()

    def test_non_source_rejected(self):
        with pytest.raises(TypeError):
            register_noise_source("bogus")(object)

    def test_spec_round_trip(self):
        source = make_noise_source("pareto-interrupts", rate_hz=0.4, alpha=2.0)
        spec = source.spec()
        clone = make_noise_source(spec.kind, **spec.as_dict())
        assert clone.params() == source.params()

    def test_noise_source_spec_normalises_params(self):
        spec = NoiseSourceSpec("periodic-daemon", {"period_s": 1.0, "duration_s": 2.0})
        assert spec.params == (("duration_s", 2.0), ("period_s", 1.0))
        assert spec.as_dict() == {"period_s": 1.0, "duration_s": 2.0}


class TestBuiltinSources:
    @pytest.mark.parametrize("kind", sorted(set(available_noise_sources())))
    def test_events_and_batch_are_physical(self, kind):
        source = make_noise_source(kind)
        rng = np.random.default_rng(5)
        events = source.events_in(CORE.global_id, 0.0, 5.0, rng)
        for event in events:
            assert event.duration >= 0.0
            assert np.isfinite(event.start) and np.isfinite(event.duration)
        work = np.linspace(0.0, 0.5, 32)
        extra = source.batch_extra(work, rng)
        assert extra.shape == work.shape
        assert np.all(extra >= 0.0) and np.all(np.isfinite(extra))

    def test_silent_source_contributes_nothing(self):
        source = make_noise_source("silent")
        rng = np.random.default_rng(0)
        assert source.events_in(CORE.global_id, 0.0, 100.0, rng) == []
        assert not source.batch_extra(np.ones(8), rng).any()

    def test_daemon_phase_is_stable_per_core(self):
        source = PeriodicDaemonSource(period_s=0.01, duration_s=1e-6)
        rng = np.random.default_rng(3)
        first = source.events_in(CORE.global_id, 0.0, 0.1, rng)
        again = source.events_in(CORE.global_id, 0.0, 0.1, rng)
        assert [e.start for e in first] == [e.start for e in again]

    def test_pareto_rejects_non_positive_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            make_noise_source("pareto-interrupts", alpha=0.0)

    def test_cron_burst_events_respect_the_window(self):
        source = make_noise_source(
            "cron-burst", period_s=0.05, burst_mean=20.0, duration_s=2e-3, max_s=10e-3
        )
        rng = np.random.default_rng(11)
        start, end = 0.2, 0.45
        events = source.events_in(CORE.global_id, start, end, rng)
        assert events, "expected bursts inside a multi-period window"
        assert all(start <= e.start < end for e in events)

    def test_network_storm_events_respect_the_window(self):
        source = make_noise_source(
            "network-storm", storm_rate_hz=200.0, packets_mean=30.0, span_s=5e-3
        )
        rng = np.random.default_rng(13)
        start, end = 0.1, 0.15
        events = source.events_in(CORE.global_id, start, end, rng)
        assert events, "expected storms in a dense window"
        assert all(start <= e.start < end for e in events)


class TestNoiseSpecComposition:
    def test_default_spec_builds_seed_pair(self):
        kinds = [s.kind for s in NoiseSpec().build_sources()]
        assert kinds == ["periodic-daemon", "poisson-interrupts"]

    def test_explicit_sources_replace_the_pair(self):
        spec = NoiseSpec(sources=(NoiseSourceSpec.of("silent"),))
        kinds = [s.kind for s in spec.build_sources()]
        assert kinds == ["silent"]

    def test_disabled_keeps_sources(self):
        spec = NoiseSpec(sources=(NoiseSourceSpec.of("silent"),)).disabled()
        assert not spec.enabled
        assert spec.sources == (NoiseSourceSpec.of("silent"),)

    def test_sources_must_be_specs(self):
        with pytest.raises(TypeError, match="NoiseSourceSpec"):
            NoiseSpec(sources=("silent",))

    def test_model_accepts_explicit_source_instances(self):
        model = OSNoiseModel(
            NoiseSpec(jitter_fraction=0.0), np.random.default_rng(0),
            sources=[SilentSource()],
        )
        assert model.delay_over(CORE, 0.0, 1.0) == 0.0
        assert not model.batch_delays(np.ones(4)).any()

    def test_composed_model_horizon_sums_sources(self):
        model = OSNoiseModel(NoiseSpec(), np.random.default_rng(0))
        assert model.horizon_s == pytest.approx(
            NoiseSpec().daemon_period_s + NoiseSpec().interrupt_max_s
        )

    def test_profiles_cover_catalog(self):
        assert {"default", "none", "heavy-tail", "bursty", "storm", "cloud"} <= set(
            available_noise_profiles()
        )
        assert noise_profile("none").enabled is False
        heavy = noise_profile("heavy-tail")
        assert any(s.kind == "pareto-interrupts" for s in heavy.sources)
        with pytest.raises(ValueError, match="registered profiles"):
            noise_profile("quiet-ish")


class TestMachineRegistry:
    def test_builtins_registered(self):
        assert {"manzano", "laptop", "fatnode", "cloudvm"} <= set(available_machines())

    def test_manzano_entry_matches_shim(self):
        from repro.cluster.config import manzano

        assert get_machine("manzano").name == manzano().name
        assert get_machine("manzano", n_nodes=4).n_nodes == 4

    def test_fatnode_is_128_cores(self):
        machine = get_machine("fatnode")
        assert machine.cores_per_node == 128
        assert machine.clock_spec.tsc_reliable

    def test_cloudvm_is_wide_clock_and_noisy(self):
        machine = get_machine("cloudvm")
        assert machine.clock_spec.max_offset_s > 1e6
        assert machine.clock_spec.drift_ppm > 2.0
        kinds = {s.kind for s in machine.noise_spec.sources}
        assert {"pareto-interrupts", "network-storm"} <= kinds

    def test_unknown_machine_lists_registered(self):
        with pytest.raises(ValueError, match="registered machines"):
            get_machine("summit")

    def test_duplicate_registration_rejected_and_unregister(self):
        def tiny() -> MachineConfig:
            return MachineConfig(name="tiny")

        register_machine("test-tiny")(tiny)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_machine("test-tiny")(lambda: MachineConfig())
            assert get_machine("test-tiny").name == "tiny"
        finally:
            unregister_machine("test-tiny")
        assert "test-tiny" not in available_machines()


class TestScenarioRegistry:
    def test_catalog_contains_flagship_scenarios(self):
        assert {
            "manzano-default",
            "manzano-quiet",
            "fatnode-default",
            "cloudvm-default",
        } <= set(available_scenarios())

    def test_unknown_scenario_lists_registered(self):
        with pytest.raises(ValueError, match="registered scenarios"):
            get_scenario("perlmutter-default")

    def test_duplicate_registration_rejected(self):
        clash = Scenario(name="manzano-default", machine="laptop")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(clash)

    def test_reregistering_equal_scenario_is_idempotent(self):
        existing = get_scenario("manzano-default")
        assert register_scenario(existing) is existing

    def test_register_and_unregister_custom(self):
        custom = Scenario(name="test-custom", machine="laptop", noise="none")
        register_scenario(custom)
        try:
            assert get_scenario("test-custom") == custom
        finally:
            unregister_scenario("test-custom")
        assert "test-custom" not in available_scenarios()


class TestScenarioConfig:
    def test_campaign_config_carries_scenario_recipe(self):
        config = get_scenario("manzano-dynamic").campaign_config("smoke")
        assert isinstance(config, CampaignConfig)
        assert config.scenario == "manzano-dynamic"
        assert config.schedule == "dynamic"
        assert config.machine.name == "manzano"
        assert config.application == "minife"

    def test_noise_override_applies_to_machine(self):
        config = get_scenario("manzano-quiet").campaign_config("smoke")
        assert config.machine.noise_spec.enabled is False

    def test_dimension_overrides(self):
        config = get_scenario("manzano-default").campaign_config(
            "smoke", trials=3, threads=8, seed=99, max_workers=2
        )
        assert (config.trials, config.threads, config.seed) == (3, 8, 99)
        assert config.max_workers == 2

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_scenario("manzano-default").campaign_config("galactic")

    def test_from_scenario_classmethod(self):
        config = CampaignConfig.from_scenario("laptop-bursty", "smoke")
        assert config.machine.name == "laptop"
        assert any(
            s.kind == "cron-burst" for s in config.machine.noise_spec.sources
        )

    def test_scenario_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            Scenario(name="  ")


class TestScenarioMatrix:
    def test_expansion_size_and_unique_names(self):
        matrix = ScenarioMatrix(
            machines=("manzano", "laptop"),
            applications=("minife", "minimd"),
            noises=(None, "heavy-tail"),
            schedules=(None, "dynamic,4"),
        )
        scenarios = matrix.expand()
        assert len(matrix) == len(scenarios) == 16
        names = [s.name for s in scenarios]
        assert len(set(names)) == 16
        assert "manzano-minife" in names
        assert "laptop-minimd-heavy-tail-dynamic-c4" in names

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ScenarioMatrix(machines=())

    def test_configs_expand_to_campaign_configs(self):
        matrix = ScenarioMatrix(noises=(None, "none"))
        configs = matrix.configs("smoke", max_workers=2)
        assert [c.machine.noise_spec.enabled for c in configs] == [True, False]
        assert all(c.max_workers == 2 for c in configs)


class TestCampaignConfigValidation:
    def test_max_workers_zero_rejected_at_construction(self):
        with pytest.raises(ValueError, match="max_workers must be >= 1"):
            CampaignConfig.smoke().parallel(0)

    def test_max_workers_negative_rejected(self):
        with pytest.raises(ValueError, match="serial execution"):
            CampaignConfig(max_workers=-4)

    def test_max_workers_non_integer_rejected(self):
        with pytest.raises(TypeError, match="integer"):
            CampaignConfig(max_workers=2.5)
        with pytest.raises(TypeError, match="integer"):
            CampaignConfig(max_workers=True)

    def test_bad_schedule_clause_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            CampaignConfig(schedule="fifo")

    def test_with_schedule_round_trip(self):
        config = CampaignConfig.smoke().with_schedule("guided")
        assert config.schedule == "guided"
        assert config.with_schedule(None).schedule is None


class TestSumPerWindow:
    """The vectorised window summation must stay bit-identical to the
    seed's per-window ``np.split``/``seg.sum()`` idiom — this is what keeps
    pre-batched-kernel recorded datasets reproducible from the same seed."""

    @staticmethod
    def _seed_idiom(durations, flat_counts, shape):
        boundaries = np.cumsum(flat_counts)[:-1]
        return np.array(
            [seg.sum() for seg in np.split(durations, boundaries)]
        ).reshape(shape)

    @pytest.mark.parametrize("lam", [0.02, 0.8, 6.0, 40.0])
    def test_bit_identical_to_seed_idiom(self, lam):
        from repro.scenarios.sources import _sum_per_window

        rng = np.random.default_rng(17)
        for _ in range(40):
            counts = rng.poisson(lam, size=int(rng.integers(1, 60)))
            durations = rng.exponential(1e-3, size=int(counts.sum()))
            expected = self._seed_idiom(durations, counts, counts.shape)
            actual = _sum_per_window(durations, counts, counts.shape)
            np.testing.assert_array_equal(actual, expected)

    def test_2d_window_shapes(self):
        from repro.scenarios.sources import _sum_per_window

        rng = np.random.default_rng(23)
        counts = rng.poisson(5.0, size=(7, 9))
        durations = rng.exponential(1e-3, size=int(counts.sum()))
        expected = self._seed_idiom(durations, counts.ravel(), counts.shape)
        np.testing.assert_array_equal(
            _sum_per_window(durations, counts.ravel(), counts.shape), expected
        )

    def test_all_empty_windows(self):
        from repro.scenarios.sources import _sum_per_window

        out = _sum_per_window(np.empty(0), np.zeros(5, dtype=np.int64), (5,))
        np.testing.assert_array_equal(out, np.zeros(5))
