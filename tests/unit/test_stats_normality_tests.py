"""Unit tests for the three normality tests, validated against SciPy."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats.anderson import CRITICAL_VALUES, anderson_darling
from repro.stats.dagostino import dagostino_k2, kurtosis_test, skewness_test
from repro.stats.shapiro import shapiro_weights, shapiro_wilk


@pytest.fixture(scope="module")
def normal_batch():
    return np.random.default_rng(7).normal(size=(150, 48))


@pytest.fixture(scope="module")
def exponential_batch():
    return np.random.default_rng(8).exponential(size=(150, 48))


class TestDAgostino:
    def test_matches_scipy_normaltest(self, normal_batch):
        result = dagostino_k2(normal_batch)
        expected = np.array([scipy_stats.normaltest(row) for row in normal_batch])
        np.testing.assert_allclose(result.statistic, expected[:, 0], rtol=1e-10)
        np.testing.assert_allclose(result.pvalue, expected[:, 1], rtol=1e-8, atol=1e-12)

    def test_component_tests_match_scipy(self, normal_batch):
        z_skew, p_skew = skewness_test(normal_batch)
        z_kurt, p_kurt = kurtosis_test(normal_batch)
        expected_skew = np.array([scipy_stats.skewtest(row) for row in normal_batch])
        expected_kurt = np.array([scipy_stats.kurtosistest(row) for row in normal_batch])
        np.testing.assert_allclose(z_skew, expected_skew[:, 0], rtol=1e-10)
        np.testing.assert_allclose(p_skew, expected_skew[:, 1], rtol=1e-8, atol=1e-12)
        np.testing.assert_allclose(z_kurt, expected_kurt[:, 0], rtol=1e-10)
        np.testing.assert_allclose(p_kurt, expected_kurt[:, 1], rtol=1e-8, atol=1e-12)

    def test_pass_rate_near_alpha_for_normal_data(self, normal_batch):
        assert dagostino_k2(normal_batch).passes(0.05).mean() > 0.85

    def test_rejects_exponential_data(self, exponential_batch):
        assert dagostino_k2(exponential_batch).passes(0.05).mean() < 0.05

    def test_single_group_1d_input(self):
        data = np.random.default_rng(0).normal(size=48)
        result = dagostino_k2(data)
        assert np.isscalar(result.statistic) or result.statistic.shape == ()

    def test_small_sample_rejected(self):
        with pytest.raises(ValueError):
            dagostino_k2(np.zeros((2, 5)))


class TestShapiroWilk:
    def test_matches_scipy(self, normal_batch):
        result = shapiro_wilk(normal_batch)
        expected = np.array([scipy_stats.shapiro(row) for row in normal_batch])
        np.testing.assert_allclose(result.statistic, expected[:, 0], atol=5e-8)
        np.testing.assert_allclose(result.pvalue, expected[:, 1], atol=5e-6)

    def test_weights_are_antisymmetric_and_normalised(self):
        weights = shapiro_weights(48)
        np.testing.assert_allclose(weights, -weights[::-1], atol=1e-12)
        assert np.sum(weights**2) == pytest.approx(1.0, abs=5e-3)

    def test_rejects_exponential_data(self, exponential_batch):
        assert shapiro_wilk(exponential_batch).passes(0.05).mean() < 0.05

    def test_constant_group_counts_as_rejection(self):
        groups = np.vstack([np.full(48, 5.0), np.random.default_rng(0).normal(size=48)])
        result = shapiro_wilk(groups)
        assert result.pvalue[0] == 0.0
        assert result.pvalue[1] > 0.0

    def test_small_sample_branch(self):
        data = np.random.default_rng(1).normal(size=(20, 8))
        result = shapiro_wilk(data)
        expected = np.array([scipy_stats.shapiro(row) for row in data])
        np.testing.assert_allclose(result.statistic, expected[:, 0], atol=1e-3)

    def test_invalid_sample_sizes(self):
        with pytest.raises(ValueError):
            shapiro_weights(2)
        with pytest.raises(ValueError):
            shapiro_weights(5001)


class TestAndersonDarling:
    def test_raw_statistic_matches_scipy(self, normal_batch):
        result = anderson_darling(normal_batch)
        expected = np.array(
            [scipy_stats.anderson(row).statistic for row in normal_batch]
        )
        np.testing.assert_allclose(result.raw_statistic, expected, rtol=1e-9)

    def test_corrected_statistic_relation(self, normal_batch):
        result = anderson_darling(normal_batch)
        n = normal_batch.shape[-1]
        factor = 1.0 + 0.75 / n + 2.25 / n**2
        np.testing.assert_allclose(
            result.statistic, result.raw_statistic * factor, rtol=1e-12
        )

    def test_critical_value_table_matches_scipy(self):
        assert CRITICAL_VALUES[5.0] == pytest.approx(0.787)
        assert list(CRITICAL_VALUES) == [15.0, 10.0, 5.0, 2.5, 1.0]

    def test_pass_rate_near_alpha_for_normal_data(self, normal_batch):
        assert anderson_darling(normal_batch).passes(0.05).mean() > 0.85

    def test_rejects_exponential_data(self, exponential_batch):
        assert anderson_darling(exponential_batch).passes(0.05).mean() < 0.05

    def test_extreme_statistic_has_zero_pvalue(self):
        # two populations 1000 sigma apart: hugely non-normal
        group = np.concatenate([np.zeros(24), np.full(24, 1000.0)])
        group += np.random.default_rng(0).normal(0, 1e-3, size=48)
        result = anderson_darling(group[np.newaxis, :])
        assert result.pvalue[0] < 1e-6
        assert not result.passes(0.05)[0]

    def test_pvalue_monotone_in_statistic(self):
        rng = np.random.default_rng(3)
        batch = np.vstack(
            [rng.normal(size=48), rng.exponential(size=48), rng.pareto(1.0, size=48)]
        )
        result = anderson_darling(batch)
        order = np.argsort(result.statistic)
        sorted_p = result.pvalue[order]
        assert np.all(np.diff(sorted_p) <= 1e-12)

    def test_small_sample_rejected(self):
        with pytest.raises(ValueError):
            anderson_darling(np.zeros((1, 5)))
