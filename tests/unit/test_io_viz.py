"""Unit tests for dataset persistence and the text/CSV figure exporters."""

import json

import numpy as np
import pytest

from repro.core.timing import TimingDataset
from repro.io import dataset_to_csv, load_dataset, save_dataset, validate_columns
from repro.io.dataset_io import try_load_dataset
from repro.stats.histogram import fixed_width_histogram
from repro.stats.percentiles import PercentileSeries
from repro.viz import (
    ascii_histogram,
    ascii_percentile_plot,
    ascii_table,
    export_histogram_csv,
    export_percentiles_csv,
    export_rows_csv,
)


@pytest.fixture()
def small_dataset():
    rng = np.random.default_rng(9)
    times = rng.uniform(1e-3, 2e-3, size=(1, 2, 3, 4))
    return TimingDataset.from_compute_times(
        times, {"application": "iodemo", "seed": 9, "machine": "manzano"}
    )


class TestDatasetIO:
    def test_round_trip_preserves_everything(self, small_dataset, tmp_path):
        path = save_dataset(small_dataset, tmp_path / "data")
        assert path.suffix == ".npz"
        loaded = load_dataset(path)
        assert loaded.metadata == small_dataset.metadata
        np.testing.assert_array_equal(
            loaded.compute_times_s, small_dataset.compute_times_s
        )
        np.testing.assert_array_equal(loaded.column("thread"), small_dataset.column("thread"))

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope.npz")

    def test_csv_export_has_header_and_rows(self, small_dataset, tmp_path):
        path = dataset_to_csv(small_dataset, tmp_path / "data.csv", unit="us")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "trial,process,iteration,thread,compute_time_us"
        assert len(lines) == 1 + len(small_dataset)

    def test_csv_invalid_unit_rejected(self, small_dataset, tmp_path):
        with pytest.raises(ValueError):
            dataset_to_csv(small_dataset, tmp_path / "x.csv", unit="h")

    def test_schema_validation(self):
        with pytest.raises(ValueError, match="missing"):
            validate_columns({"trial": np.zeros(2)})
        with pytest.raises(ValueError, match="unknown"):
            validate_columns(
                {
                    "trial": np.zeros(2),
                    "process": np.zeros(2),
                    "iteration": np.zeros(2),
                    "thread": np.zeros(2),
                    "compute_time_s": np.zeros(2),
                    "bogus": np.zeros(2),
                }
            )


class TestAsciiRendering:
    def test_histogram_rendering_contains_counts(self, rng):
        hist = fixed_width_histogram(rng.normal(26e-3, 0.5e-3, size=500), 0.2e-3)
        text = ascii_histogram(hist)
        assert "500 samples" in text
        assert "#" in text

    def test_histogram_merging_for_many_bins(self, rng):
        hist = fixed_width_histogram(rng.uniform(0.0, 1.0, size=2000), 1e-3)
        text = ascii_histogram(hist, max_rows=20)
        assert "bins/row" in text
        assert len(text.splitlines()) <= 22

    def test_percentile_plot_dimensions(self, rng):
        series = PercentileSeries.from_samples(rng.normal(25.0, 1.0, size=(50, 200)))
        text = ascii_percentile_plot(series, width=60, height=12)
        lines = text.splitlines()
        assert len(lines) == 13
        assert "p50" in lines[-1]

    def test_table_alignment_and_floats(self):
        rows = [
            {"application": "MiniFE", "value": 3.14159},
            {"application": "MiniMD", "value": 77.0, "extra": "x"},
        ]
        text = ascii_table(rows)
        assert "MiniFE" in text and "3.14" in text and "extra" in text

    def test_empty_table(self):
        assert ascii_table([]) == "(empty table)"

    def test_invalid_dimensions_rejected(self, rng):
        series = PercentileSeries.from_samples(rng.normal(size=(5, 50)))
        with pytest.raises(ValueError):
            ascii_percentile_plot(series, width=5)
        hist = fixed_width_histogram([1.0, 2.0], 0.5)
        with pytest.raises(ValueError):
            ascii_histogram(hist, width=2)


class TestCsvExport:
    def test_histogram_csv(self, rng, tmp_path):
        hist = fixed_width_histogram(rng.normal(size=100), 0.5)
        path = export_histogram_csv(hist, tmp_path / "h.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == hist.n_bins + 1
        assert lines[0].startswith("bin_start")

    def test_percentiles_csv(self, rng, tmp_path):
        series = PercentileSeries.from_samples(rng.normal(size=(8, 100)))
        path = export_percentiles_csv(series, tmp_path / "p.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 9
        assert lines[0].split(",")[0] == "iteration"

    def test_rows_csv_union_of_keys(self, tmp_path):
        rows = [{"a": 1, "b": 2}, {"a": 3, "c": 4}]
        path = export_rows_csv(rows, tmp_path / "rows.csv")
        header = path.read_text().splitlines()[0]
        assert header == "a,b,c"


class TestAtomicCacheWrites:
    """Crash-safe ``.npz`` writes and corruption-tolerant cache loads."""

    def test_save_leaves_no_tmp_sibling(self, small_dataset, tmp_path):
        target = save_dataset(small_dataset, tmp_path / "campaign_x.npz")
        assert target.exists()
        assert [p.name for p in tmp_path.iterdir()] == ["campaign_x.npz"]

    def test_try_load_missing_returns_none(self, tmp_path):
        assert try_load_dataset(tmp_path / "absent.npz") is None

    def test_truncated_archive_recovered_not_raised(self, small_dataset, tmp_path):
        """A pre-atomic-write crash artifact: half an archive at the path."""
        target = save_dataset(small_dataset, tmp_path / "campaign_x.npz")
        blob = target.read_bytes()
        target.write_bytes(blob[: len(blob) // 2])
        assert try_load_dataset(target) is None
        assert not target.exists()  # removed so it cannot poison later hits

    def test_garbage_bytes_recovered(self, tmp_path):
        target = tmp_path / "campaign_x.npz"
        target.write_bytes(b"this is not a zip archive")
        assert try_load_dataset(target) is None
        assert not target.exists()

    def test_format_version_mismatch_recovered(self, small_dataset, tmp_path):
        target = save_dataset(small_dataset, tmp_path / "campaign_x.npz")
        columns = {n: small_dataset.column(n) for n in small_dataset.columns}
        payload = dict(columns)
        payload["__metadata__"] = np.array(
            json.dumps({"format_version": 999, "metadata": {}})
        )
        with open(target, "wb") as handle:
            np.savez_compressed(handle, **payload)
        with pytest.raises(ValueError, match="format version"):
            load_dataset(target)
        assert try_load_dataset(target) is None
        assert not target.exists()

    def test_session_recomputes_over_corrupt_cache(self, tmp_path):
        """End to end: a poisoned cache entry heals on the next run."""
        from repro.experiments.config import CampaignConfig
        from repro.experiments.session import CampaignSession, campaign_cache_path

        config = CampaignConfig.smoke("minife")
        session = CampaignSession(config, cache_dir=tmp_path)
        digest_first = session.run().dataset.compute_times_s.tobytes()

        cache_path = campaign_cache_path(tmp_path, session.config_for())
        assert cache_path.exists()
        cache_path.write_bytes(b"corrupted beyond repair")

        fresh = CampaignSession(config, cache_dir=tmp_path)
        result = fresh.run()
        assert not result.from_cache  # the poisoned entry was discarded
        assert result.dataset.compute_times_s.tobytes() == digest_first
        reloaded = CampaignSession(config, cache_dir=tmp_path).run()
        assert reloaded.from_cache  # ... and rewritten healthy
