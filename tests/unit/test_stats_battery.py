"""Unit tests for the normality battery (Table 1 machinery)."""

import numpy as np
import pytest

from repro.stats.battery import TEST_NAMES, NormalityBattery


class TestNormalityBattery:
    def test_runs_all_three_tests_by_default(self, rng):
        report = NormalityBattery().run(rng.normal(size=(20, 48)))
        assert set(report.outcomes) == set(TEST_NAMES)
        assert report.n_groups == 20
        assert report.group_size == 48

    def test_pass_rates_high_for_normal_low_for_skewed(self, rng):
        battery = NormalityBattery()
        normal = battery.run(rng.normal(size=(200, 48)))
        skewed = battery.run(rng.exponential(size=(200, 48)))
        for name in TEST_NAMES:
            assert normal.pass_rate(name) > 0.85
            assert skewed.pass_rate(name) < 0.05
        assert skewed.rejected_all() or max(skewed.pass_rates().values()) < 0.05

    def test_single_group_input(self, rng):
        report = NormalityBattery().run(rng.normal(size=48))
        assert report.n_groups == 1

    def test_table_row_is_percentage(self, rng):
        report = NormalityBattery().run(rng.normal(size=(50, 48)))
        row = report.table_row("MiniX")
        assert row["application"] == "MiniX"
        assert all(0.0 <= row[label] <= 100.0 for label in row if label != "application")

    def test_unanimous_pass_is_intersection(self, rng):
        report = NormalityBattery().run(rng.normal(size=(100, 48)))
        unanimous = report.unanimous_pass()
        for name in TEST_NAMES:
            assert np.all(unanimous <= report.outcomes[name].passed)

    def test_subset_of_tests(self, rng):
        battery = NormalityBattery(tests=["dagostino"])
        report = battery.run(rng.normal(size=(10, 48)))
        assert set(report.outcomes) == {"dagostino"}

    def test_summary_mentions_every_test(self, rng):
        text = NormalityBattery().run(rng.normal(size=(10, 48))).summary()
        assert "D'Agostino" in text and "Shapiro-Wilk" in text and "Anderson-Darling" in text

    def test_invalid_parameters_rejected(self, rng):
        with pytest.raises(ValueError):
            NormalityBattery(alpha=0.0)
        with pytest.raises(ValueError):
            NormalityBattery(tests=["nope"])
        with pytest.raises(ValueError):
            NormalityBattery().run(rng.normal(size=(5, 4)))
        with pytest.raises(ValueError):
            NormalityBattery().run(rng.normal(size=(2, 3, 4)))
