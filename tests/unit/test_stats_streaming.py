"""Unit tests for the mergeable streaming accumulators and sketches."""

import numpy as np
import pytest

from repro.stats.histogram import fixed_width_histogram
from repro.stats.moments import kurtosis, skewness
from repro.stats.sketch import BoundedTopK, P2Quantile, PercentileSketch
from repro.stats.streaming import StreamingHistogram, StreamingMoments


@pytest.fixture(scope="module")
def samples():
    rng = np.random.default_rng(11)
    return rng.gamma(2.0, 1.0e-3, size=5000)


class TestStreamingMoments:
    def test_matches_pooled_numpy_moments(self, samples):
        acc = StreamingMoments()
        for chunk in np.array_split(samples, 9):
            acc.update(chunk)
        assert acc.count == len(samples)
        assert acc.mean == pytest.approx(samples.mean(), rel=1e-12)
        assert acc.variance() == pytest.approx(samples.var(), rel=1e-10)
        assert acc.skewness == pytest.approx(float(skewness(samples)), rel=1e-8)
        assert acc.kurtosis == pytest.approx(float(kurtosis(samples)), rel=1e-8)
        assert acc.minimum == samples.min()
        assert acc.maximum == samples.max()

    def test_merge_equals_update(self, samples):
        parts = np.array_split(samples, 4)
        merged = StreamingMoments.from_samples(parts[0])
        for part in parts[1:]:
            merged = merged.merge(StreamingMoments.from_samples(part))
        direct = StreamingMoments.from_samples(samples)
        assert merged.n == direct.n
        assert merged.mean == pytest.approx(direct.mean, rel=1e-12)
        assert merged.variance() == pytest.approx(direct.variance(), rel=1e-10)
        assert merged.skewness == pytest.approx(direct.skewness, rel=1e-8)

    def test_merge_order_invariance(self, samples):
        parts = [StreamingMoments.from_samples(c) for c in np.array_split(samples, 5)]
        forward = parts[0]
        for p in parts[1:]:
            forward = forward.merge(p)
        backward = parts[-1]
        for p in reversed(parts[:-1]):
            backward = backward.merge(p)
        assert forward.mean == pytest.approx(backward.mean, rel=1e-12)
        assert forward.variance() == pytest.approx(backward.variance(), rel=1e-10)

    def test_empty_and_degenerate(self):
        acc = StreamingMoments()
        assert acc.count == 0 and acc.variance() == 0.0
        acc.update([])
        assert acc.count == 0
        acc.update([3.0, 3.0, 3.0])
        assert acc.mean == 3.0
        assert acc.skewness == 0.0 and acc.kurtosis == 0.0


class TestStreamingHistogram:
    def test_chunked_equals_single_call(self, samples):
        acc = StreamingHistogram(5e-5)
        for chunk in np.array_split(samples, 11):
            acc.update(chunk)
        reference = fixed_width_histogram(samples, 5e-5)
        merged = acc.finalize()
        np.testing.assert_array_equal(merged.counts, reference.counts)
        np.testing.assert_array_equal(merged.edges, reference.edges)

    def test_merge_is_order_invariant_and_exact(self, samples):
        chunks = np.array_split(samples, 6)
        accs = [StreamingHistogram(5e-5).update(c) for c in chunks]
        forward = accs[0]
        for a in accs[1:]:
            forward = forward.merge(a)
        backward = accs[-1]
        for a in reversed(accs[:-1]):
            backward = backward.merge(a)
        np.testing.assert_array_equal(
            forward.finalize().counts, backward.finalize().counts
        )
        np.testing.assert_array_equal(
            forward.finalize().edges, backward.finalize().edges
        )

    def test_empty_finalize_rejected(self):
        with pytest.raises(ValueError):
            StreamingHistogram(1e-3).finalize()

    def test_mismatched_widths_rejected(self):
        a = StreamingHistogram(1e-3).update([1.0])
        b = StreamingHistogram(2e-3).update([1.0])
        with pytest.raises(ValueError):
            a.merge(b)


class TestFixedWidthHistogramMerge:
    def test_shard_histograms_merge_exactly(self, samples):
        parts = np.array_split(samples, 3)
        merged = fixed_width_histogram(parts[0], 5e-5)
        for part in parts[1:]:
            merged = merged.merge(fixed_width_histogram(part, 5e-5))
        reference = fixed_width_histogram(samples, 5e-5)
        assert merged.total == reference.total
        # the merged grid may extend past the reference by trailing slack
        # bins; occupied bins must coincide exactly
        start = int(round((reference.edges[0] - merged.edges[0]) / 5e-5))
        np.testing.assert_array_equal(
            merged.counts[start : start + reference.n_bins], reference.counts
        )

    def test_incompatible_widths_rejected(self):
        a = fixed_width_histogram([1.0, 2.0], 0.5)
        b = fixed_width_histogram([1.0, 2.0], 0.25)
        with pytest.raises(ValueError):
            a.merge(b)


class TestP2Quantile:
    def test_tracks_median_of_large_stream(self):
        rng = np.random.default_rng(3)
        data = rng.normal(10.0, 2.0, size=20000)
        sketch = P2Quantile(0.5)
        sketch.update_batch(data)
        assert sketch.value == pytest.approx(float(np.median(data)), rel=5e-3)

    def test_small_streams_are_exact(self):
        sketch = P2Quantile(0.5)
        sketch.update_batch([5.0, 1.0, 3.0])
        assert sketch.value == 3.0

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(1.5)


class TestPercentileSketch:
    def test_exact_mode_is_bit_identical(self, samples):
        sketch = PercentileSketch(exact=True)
        for chunk in np.array_split(samples, 7):
            sketch.update(chunk)
        levels = [5.0, 25.0, 50.0, 75.0, 95.0]
        np.testing.assert_array_equal(
            sketch.quantile(levels), np.percentile(samples, levels)
        )

    def test_compressed_mode_is_bounded_and_close(self, samples):
        sketch = PercentileSketch(256)
        for chunk in np.array_split(samples, 7):
            sketch.update(chunk)
        assert len(sketch.support) <= 256
        levels = [5.0, 50.0, 95.0]
        estimate = sketch.quantile(levels)
        truth = np.percentile(samples, levels)
        np.testing.assert_allclose(estimate, truth, rtol=0.05)
        # extremes stay exact through compression
        assert sketch.minimum == samples.min()
        assert sketch.maximum == samples.max()

    def test_merge_matches_pooled_update(self, samples):
        parts = np.array_split(samples, 2)
        a = PercentileSketch(512).update(parts[0])
        b = PercentileSketch(512).update(parts[1])
        merged = a.merge(b)
        assert merged.n == len(samples)
        np.testing.assert_allclose(
            merged.quantile(50.0), np.percentile(samples, 50.0), rtol=0.05
        )

    def test_mode_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PercentileSketch(exact=True).merge(PercentileSketch(64))


class TestBoundedTopK:
    def test_exact_while_under_capacity(self):
        pool = BoundedTopK(capacity=16)
        values = [3.0, 1.0, 2.0, 5.0, 4.0]
        pool.update(values, [f"k{v:.0f}" for v in values])
        assert len(pool) == 5 and pool.n == 5
        np.testing.assert_array_equal(pool.values, [1.0, 2.0, 3.0, 4.0, 5.0])
        assert pool.keys == ["k1", "k2", "k3", "k4", "k5"]
        assert pool.nearest(3.4) == "k3"

    def test_compression_pins_extremes_and_bounds_error(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=5000)
        pool = BoundedTopK(capacity=64)
        for chunk in np.array_split(values, 13):
            pool.update(chunk, [None] * chunk.size)
        assert len(pool) == 64 and pool.n == 5000
        assert pool.values[0] == values.min()
        assert pool.values[-1] == values.max()
        # quantile-spaced retention: the pooled median is within one
        # spacing (~ n/capacity ranks) of the true median
        assert float(pool.quantile(50.0)) == pytest.approx(
            float(np.median(values)), abs=np.ptp(values) / 32
        )

    def test_merge_unions_candidates(self):
        left = BoundedTopK(capacity=8).update([1.0, 2.0], ["a", "b"])
        right = BoundedTopK(capacity=32).update([0.5, 3.0], ["c", "d"])
        merged = left.merge(right)
        assert merged.capacity == 8
        assert merged.n == 4
        np.testing.assert_array_equal(merged.values, [0.5, 1.0, 2.0, 3.0])
        assert merged.keys == ["c", "a", "b", "d"]
        # inputs untouched
        assert len(left) == 2 and len(right) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedTopK(capacity=3)
        with pytest.raises(ValueError):
            BoundedTopK().update([1.0, 2.0], ["only-one"])
        with pytest.raises(ValueError):
            BoundedTopK().quantile(50.0)
        assert BoundedTopK().nearest(0.0) is None
        assert BoundedTopK().update([], []).n == 0
