"""Unit tests for the network / NIC model and datatypes."""

import numpy as np
import pytest

from repro.mpi.datatypes import BYTE, DOUBLE, BufferSpec, Datatype
from repro.mpi.network import NetworkModel, NICModel, omni_path


class TestDatatypes:
    def test_extent(self):
        assert DOUBLE.extent(10) == 80
        assert BYTE.extent(3) == 3

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Datatype("bad", 0)
        with pytest.raises(ValueError):
            DOUBLE.extent(-1)

    def test_buffer_partition_contiguous_and_complete(self):
        array = np.arange(10, dtype=np.float64)
        spec = BufferSpec(10, DOUBLE, array)
        pieces = spec.partition(3)
        assert [p.count for p in pieces] == [4, 3, 3]
        np.testing.assert_array_equal(
            np.concatenate([p.array for p in pieces]), array
        )
        assert sum(p.nbytes for p in pieces) == spec.nbytes

    def test_buffer_mismatched_array_rejected(self):
        with pytest.raises(ValueError):
            BufferSpec(5, DOUBLE, np.zeros(4))


class TestNetworkModel:
    def test_message_time_monotone_in_size(self):
        net = omni_path()
        small = net.message_time(1024)
        large = net.message_time(1024 * 1024)
        assert large > small

    def test_message_time_increases_with_hops(self):
        net = omni_path()
        assert net.message_time(4096, hops=4) > net.message_time(4096, hops=1)

    def test_rendezvous_threshold(self):
        net = NetworkModel(eager_threshold_bytes=1000, rendezvous_overhead_s=1e-5)
        assert net.protocol_overhead(1000) == 0.0
        assert net.protocol_overhead(1001) == pytest.approx(1e-5)

    def test_serialization_matches_bandwidth(self):
        net = NetworkModel(bandwidth_bytes_per_s=1e9)
        assert net.serialization_time(1_000_000) == pytest.approx(1e-3)

    def test_effective_bandwidth_below_link_rate(self):
        net = omni_path()
        assert net.effective_bandwidth(1 << 20) < net.bandwidth_bytes_per_s

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_s=0.0)
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1.0)


class TestNICModel:
    def test_fifo_serialisation_of_simultaneous_submissions(self):
        net = NetworkModel(
            latency_s=0.0, per_hop_latency_s=0.0, o_send_s=0.0, o_recv_s=0.0,
            bandwidth_bytes_per_s=1e6, eager_threshold_bytes=1 << 30,
        )
        nic = NICModel(net, hops=0)
        first = nic.submit(1000, at_time=0.0)   # 1 ms on the wire
        second = nic.submit(1000, at_time=0.0)  # must queue behind the first
        assert first.injection_done == pytest.approx(1e-3)
        assert second.start_time == pytest.approx(1e-3)
        assert second.injection_done == pytest.approx(2e-3)

    def test_idle_gap_is_not_billed(self):
        net = NetworkModel(latency_s=0.0, o_send_s=0.0, o_recv_s=0.0,
                           bandwidth_bytes_per_s=1e6, eager_threshold_bytes=1 << 30)
        nic = NICModel(net)
        nic.submit(1000, at_time=0.0)
        late = nic.submit(1000, at_time=10.0)  # long after the NIC went idle
        assert late.start_time == pytest.approx(10.0)

    def test_submit_many_orders_by_request_time(self):
        nic = NICModel(omni_path())
        records = nic.submit_many([100, 100, 100], [3e-3, 1e-3, 2e-3])
        # result order matches input order, but service order follows times
        assert records[1].start_time < records[2].start_time < records[0].start_time

    def test_reset_clears_queue(self):
        nic = NICModel(omni_path())
        nic.submit(1 << 20, at_time=0.0)
        assert nic.busy_until > 0.0
        nic.reset()
        assert nic.busy_until == 0.0
        assert nic.log == []
