"""Unit tests for the spillable, memory-mapped campaign shard store."""

import json

import numpy as np
import pytest

from repro.core.timing import TimingDataset, TimingShard
from repro.experiments.config import CampaignConfig
from repro.experiments.session import CampaignSession, campaign_store_path
from repro.io.shard_store import (
    DEFAULT_SPILL_THRESHOLD_BYTES,
    MANIFEST_NAME,
    STORE_FORMAT_VERSION,
    ShardStore,
    publish_store,
)
from repro.service.jobs import dataset_digest

# The same smoke-campaign digests the scenario matrix pins
# (tests/integration/test_scenario_pipeline.py): a campaign that goes
# through the store must merge back to these bits exactly.
SEED_DIGESTS = {
    "minife": "bb2fcafc7160d7099ca5ef6dac0ecd53bff0aad663032aed63a90c0242740980",
    "minimd": "aad69e389dcdd05bee4e48e4e001a4e94e9a7b98124d3c24f49a2ce701cd1568",
    "miniqmc": "42d6abd256f408648188889ba1df2732b40a30ef1dbdbc4cb929170999478881",
}


@pytest.fixture(scope="module")
def shards():
    rng = np.random.default_rng(99)
    times = np.abs(rng.normal(20e-3, 1e-3, size=(2, 3, 4, 8)))
    dataset = TimingDataset.from_compute_times(times, {"application": "toy"})
    return [
        TimingShard.from_dataset(
            dataset.select(trial=int(t), process=int(p)), trial=int(t), process=int(p)
        )
        for t in dataset.trials
        for p in dataset.processes
    ]


class TestFormat:
    def test_round_trip_is_bit_identical(self, tmp_path, shards):
        store = ShardStore.create(tmp_path / "c.store", spill_threshold_bytes=1)
        store.extend(shards)
        store.finalize({"application": "toy"})

        reloaded = ShardStore.open(tmp_path / "c.store")
        assert reloaded.complete
        assert reloaded.metadata == {"application": "toy"}
        assert reloaded.n_shards == len(shards)
        for original, stored in zip(shards, reloaded.iter_shards()):
            assert (stored.trial, stored.process) == (
                original.trial,
                original.process,
            )
            for name, values in original.columns.items():
                recovered = stored.columns[name]
                assert np.asarray(recovered).dtype == np.asarray(values).dtype
                np.testing.assert_array_equal(recovered, values)

    def test_spill_threshold_controls_grouping(self, tmp_path, shards):
        eager = ShardStore.create(tmp_path / "eager.store", spill_threshold_bytes=1)
        eager.extend(shards)
        eager.flush()
        assert eager.n_groups == len(shards)

        lazy = ShardStore.create(
            tmp_path / "lazy.store",
            spill_threshold_bytes=DEFAULT_SPILL_THRESHOLD_BYTES,
        )
        lazy.extend(shards)
        assert lazy.n_groups == 0  # still buffered
        assert lazy.n_shards == len(shards)  # but visible to introspection
        lazy.flush()
        assert lazy.n_groups == 1

    def test_reads_are_memory_mapped_views(self, tmp_path, shards):
        store = ShardStore.create(tmp_path / "c.store")
        store.extend(shards)
        store.flush()
        shard = next(ShardStore.open(tmp_path / "c.store").iter_shards())
        for values in shard.columns.values():
            assert isinstance(values, np.memmap)

    def test_dataset_merges_with_store_metadata(self, tmp_path, shards):
        store = ShardStore.create(tmp_path / "c.store", spill_threshold_bytes=1)
        store.extend(shards)
        store.finalize({"application": "toy"})
        merged = store.dataset()
        direct = TimingDataset.merge(shards, metadata={"application": "toy"})
        assert dataset_digest(merged) == dataset_digest(direct)
        assert merged.metadata["application"] == "toy"

    def test_writable_lifecycle_errors(self, tmp_path, shards):
        path = tmp_path / "c.store"
        store = ShardStore.create(path)
        store.append(shards[0])
        store.finalize()
        with pytest.raises(ValueError, match="finalized"):
            store.append(shards[1])
        with pytest.raises(FileExistsError):
            ShardStore.create(path)
        with pytest.raises(FileNotFoundError):
            ShardStore.open(tmp_path / "missing.store")
        with pytest.raises(ValueError, match="read-only"):
            ShardStore.open(path).append(shards[0])
        with pytest.raises(ValueError, match="mode"):
            ShardStore(path, mode="x")

    def test_unsupported_format_version_rejected(self, tmp_path, shards):
        path = tmp_path / "c.store"
        store = ShardStore.create(path)
        store.append(shards[0])
        store.finalize()
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == STORE_FORMAT_VERSION
        manifest["format_version"] = STORE_FORMAT_VERSION + 1
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format version"):
            ShardStore.open(path)

    def test_mismatched_column_sets_rejected(self, tmp_path, shards):
        store = ShardStore.create(tmp_path / "c.store")
        store.append(shards[0])
        widened = dict(shards[1].columns)
        widened["start_ns"] = np.zeros(shards[1].n_samples, dtype=np.int64)
        store.append(
            TimingShard(
                trial=shards[1].trial,
                process=shards[1].process,
                columns=widened,
            )
        )
        with pytest.raises(ValueError, match="same column set"):
            store.flush()


class TestConcurrentAppend:
    def test_reader_snapshots_published_groups(self, tmp_path, shards):
        path = tmp_path / "c.store"
        writer = ShardStore(path, mode="a", spill_threshold_bytes=1)
        writer.append(shards[0])  # threshold 1: every append publishes

        reader = ShardStore.open(path)
        assert len(list(reader.iter_shards())) == 1

        writer.append(shards[1])
        writer.append(shards[2])
        # the same reader sees the new groups on its *next* iteration
        assert len(list(reader.iter_shards())) == 3

    def test_in_flight_iteration_is_unaffected_by_appends(self, tmp_path, shards):
        path = tmp_path / "c.store"
        writer = ShardStore(path, mode="a", spill_threshold_bytes=1)
        for shard in shards[:2]:
            writer.append(shard)

        reader = ShardStore.open(path)
        iterator = reader.iter_shards()
        first = next(iterator)
        np.testing.assert_array_equal(
            first.columns["compute_time_s"], shards[0].columns["compute_time_s"]
        )
        writer.append(shards[2])  # published mid-iteration
        # the running iterator still covers exactly its snapshot
        assert len(list(iterator)) == 1

    def test_writer_buffer_visible_through_its_own_iteration(
        self, tmp_path, shards
    ):
        writer = ShardStore(tmp_path / "c.store", mode="a")
        writer.extend(shards)
        # iter_shards on a writable store flushes first: nothing is lost
        assert len(list(writer.iter_shards())) == len(shards)
        assert writer.n_groups == 1


class TestPublish:
    def test_staged_store_published_atomically(self, tmp_path, shards):
        staged = tmp_path / "final.store.tmp-123"
        final = tmp_path / "final.store"
        store = ShardStore.create(staged, spill_threshold_bytes=1)
        store.extend(shards)
        store.finalize()
        assert publish_store(staged, final) == final
        assert not staged.exists()
        assert ShardStore.open(final).complete

    def test_losing_the_publish_race_discards_staged(self, tmp_path, shards):
        final = tmp_path / "final.store"
        winner = ShardStore.create(final, spill_threshold_bytes=1)
        winner.append(shards[0])
        winner.finalize()

        staged = tmp_path / "final.store.tmp-456"
        loser = ShardStore.create(staged, spill_threshold_bytes=1)
        loser.append(shards[0])
        loser.finalize()
        publish_store(staged, final)
        assert not staged.exists()
        assert ShardStore.open(final).n_shards == 1


class TestCampaignRoundTrip:
    @pytest.mark.parametrize("application", sorted(SEED_DIGESTS))
    def test_stored_campaign_matches_pinned_digest(self, tmp_path, application):
        """A campaign spilled through the store merges back bit-identically."""
        config = CampaignConfig.smoke(application)
        session = CampaignSession(config, cache_dir=tmp_path / "cache")
        result = session.run(
            application, store=True, spill_threshold_bytes=1, use_cache=False
        )
        assert result.store is not None
        assert result.store.n_groups > 1  # actually spilled in groups
        assert dataset_digest(result.dataset) == SEED_DIGESTS[application]

    def test_completed_store_is_reused_from_cache(self, tmp_path):
        config = CampaignConfig.smoke("minife")
        session = CampaignSession(config, cache_dir=tmp_path / "cache")
        first = session.run("minife", store=True)
        assert not first.from_cache
        second = session.run("minife", store=True)
        assert second.from_cache
        assert second.store.path == campaign_store_path(
            tmp_path / "cache", session.config_for("minife")
        )
        assert dataset_digest(second.dataset) == SEED_DIGESTS["minife"]
