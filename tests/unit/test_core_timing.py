"""Unit tests for TimingRecord / TimingDataset."""

import numpy as np
import pytest

from repro.core.timing import TimingDataset, TimingRecord


def _dense_dataset(trials=2, processes=2, iterations=3, threads=4, seed=0):
    rng = np.random.default_rng(seed)
    times = rng.uniform(1e-3, 2e-3, size=(trials, processes, iterations, threads))
    return TimingDataset.from_compute_times(times, {"application": "demo"}), times


class TestTimingRecord:
    def test_compute_time_derivation(self):
        record = TimingRecord(0, 0, 0, 0, start_ns=1_000_000, end_ns=3_500_000)
        assert record.compute_time_s == pytest.approx(2.5e-3)
        assert record.compute_time_ms == pytest.approx(2.5)

    def test_backwards_clock_rejected(self):
        with pytest.raises(ValueError):
            TimingRecord(0, 0, 0, 0, start_ns=10, end_ns=5)


class TestTimingDatasetConstruction:
    def test_from_records_round_trip(self):
        records = [
            TimingRecord(t, p, i, th, 0, int(1e6 * (th + 1)))
            for t in range(2)
            for p in range(2)
            for i in range(2)
            for th in range(3)
        ]
        ds = TimingDataset.from_records(records, {"application": "demo"})
        assert len(ds) == 24
        assert ds.n_threads == 3
        assert ds.is_dense()
        round_tripped = list(ds.iter_records())
        assert round_tripped[0].compute_time_s == records[0].compute_time_s

    def test_from_compute_times_shape_checks(self):
        with pytest.raises(ValueError):
            TimingDataset.from_compute_times(np.zeros((2, 2, 2)))

    def test_missing_columns_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            TimingDataset({"trial": np.zeros(3)})

    def test_negative_compute_times_rejected(self):
        ds, times = _dense_dataset()
        bad = {
            "trial": ds.column("trial"),
            "process": ds.column("process"),
            "iteration": ds.column("iteration"),
            "thread": ds.column("thread"),
            "compute_time_s": ds.compute_times_s - 1.0,
        }
        with pytest.raises(ValueError):
            TimingDataset(bad)

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            TimingDataset.from_records([])


class TestTimingDatasetAccessors:
    def test_dimension_properties(self):
        ds, _ = _dense_dataset(trials=3, processes=2, iterations=4, threads=5)
        assert ds.n_trials == 3
        assert ds.n_processes == 2
        assert ds.n_iterations == 4
        assert ds.n_threads == 5
        assert ds.n_samples == 3 * 2 * 4 * 5

    def test_to_dense_inverts_from_compute_times(self):
        ds, times = _dense_dataset()
        np.testing.assert_allclose(ds.to_dense(), times)

    def test_select_filters_rows(self):
        ds, times = _dense_dataset()
        subset = ds.select(trial=1, process=0)
        assert subset.n_trials == 1
        assert subset.n_processes == 1
        np.testing.assert_allclose(
            np.sort(subset.compute_times_s), np.sort(times[1, 0].ravel())
        )

    def test_select_no_match_raises(self):
        ds, _ = _dense_dataset()
        with pytest.raises(KeyError):
            ds.select(trial=99)

    def test_select_iterations_slice(self):
        ds, _ = _dense_dataset(iterations=6)
        subset = ds.select_iterations(slice(0, 2))
        assert subset.n_iterations == 2
        assert subset.is_dense()

    def test_concat_preserves_length_and_metadata(self):
        a, _ = _dense_dataset(seed=1)
        b, _ = _dense_dataset(seed=2)
        combined = a.concat(b)
        assert len(combined) == len(a) + len(b)
        assert combined.application == "demo"

    def test_with_metadata_does_not_mutate_original(self):
        ds, _ = _dense_dataset()
        updated = ds.with_metadata(application="other")
        assert updated.application == "other"
        assert ds.application == "demo"

    def test_summary_fields(self):
        ds, _ = _dense_dataset()
        summary = ds.summary()
        assert summary["samples"] == len(ds)
        assert summary["min_ms"] <= summary["median_ms"] <= summary["max_ms"]

    def test_non_dense_to_dense_rejected(self):
        ds, _ = _dense_dataset()
        subset_cols = {name: ds.column(name)[:-1] for name in ds.columns}
        sparse = TimingDataset(subset_cols, ds.metadata)
        assert not sparse.is_dense()
        with pytest.raises(ValueError):
            sparse.to_dense()
