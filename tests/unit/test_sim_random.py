"""Unit tests for the reproducible random-stream factory."""

import numpy as np
import pytest

from repro.sim.random import RandomStreams


class TestRandomStreams:
    def test_same_key_returns_same_generator_object(self):
        streams = RandomStreams(1)
        assert streams.get("a", 1) is streams.get("a", 1)

    def test_different_keys_produce_different_draws(self):
        streams = RandomStreams(1)
        a = streams.get("a").uniform(size=8)
        b = streams.get("b").uniform(size=8)
        assert not np.allclose(a, b)

    def test_same_seed_reproduces_draws(self):
        first = RandomStreams(99).get("app", "work", 0, 1).uniform(size=16)
        second = RandomStreams(99).get("app", "work", 0, 1).uniform(size=16)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("x").uniform(size=8)
        b = RandomStreams(2).get("x").uniform(size=8)
        assert not np.allclose(a, b)

    def test_fresh_replays_the_stream(self):
        streams = RandomStreams(5)
        first = streams.get("k").uniform(size=4)
        replay = streams.fresh("k").uniform(size=4)
        np.testing.assert_array_equal(first, replay)

    def test_spawn_creates_independent_namespace(self):
        parent = RandomStreams(7)
        child = parent.spawn("sub")
        assert child.seed != parent.seed
        a = parent.get("x").uniform(size=4)
        b = child.get("x").uniform(size=4)
        assert not np.allclose(a, b)

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("seed")  # type: ignore[arg-type]

    def test_keys_lists_created_streams(self):
        streams = RandomStreams(3)
        streams.get("one")
        streams.get("two", 2)
        assert set(streams.keys()) == {("one",), ("two", 2)}


class TestNamedDerivation:
    def test_derive_is_reproducible_across_instances(self):
        first = RandomStreams(11).derive("shard", 0).get("work").uniform(size=8)
        second = RandomStreams(11).derive("shard", 0).get("work").uniform(size=8)
        np.testing.assert_array_equal(first, second)

    def test_derive_does_not_perturb_parent_streams(self):
        expected = RandomStreams(11).get("work").uniform(size=8)
        streams = RandomStreams(11)
        streams.derive("shard", 0).get("work")  # derivation must be side-effect free
        np.testing.assert_array_equal(streams.get("work").uniform(size=8), expected)

    def test_derived_names_are_independent(self):
        streams = RandomStreams(11)
        a = streams.derive("shard", 0).get("work").uniform(size=8)
        b = streams.derive("shard", 1).get("work").uniform(size=8)
        c = streams.get("work").uniform(size=8)
        assert not np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_nested_derivation_extends_the_path(self):
        streams = RandomStreams(11)
        child = streams.derive("outer")
        grandchild = child.derive("inner")
        assert streams.path == ()
        assert len(child.path) == 1
        assert len(grandchild.path) == 2
        assert grandchild.path[:1] == child.path
        a = child.get("x").uniform(size=8)
        b = grandchild.get("x").uniform(size=8)
        assert not np.allclose(a, b)

    def test_derive_requires_a_name(self):
        with pytest.raises(ValueError):
            RandomStreams(11).derive()

    def test_derive_preserves_seed(self):
        assert RandomStreams(42).derive("sub").seed == 42
