"""Unit tests for the end-to-end application projection."""

import numpy as np
import pytest

from repro.core.endtoend import EndToEndModel, EndToEndProjection
from repro.core.strategies import BulkStrategy, FineGrainedStrategy
from repro.core.timing import TimingDataset
from repro.mpi.network import NetworkModel

FLAT = NetworkModel(
    latency_s=0.0,
    per_hop_latency_s=0.0,
    o_send_s=0.0,
    o_recv_s=0.0,
    bandwidth_bytes_per_s=1.0e9,
    eager_threshold_bytes=1 << 40,
)


def _laggard_dataset(laggard_every=2):
    """8 threads at 20 ms; every other iteration one thread at 28 ms."""
    times = np.full((1, 1, 10, 8), 20.0e-3)
    times[0, 0, ::laggard_every, 0] = 28.0e-3
    return TimingDataset.from_compute_times(times, {"application": "endtoend-demo"})


class TestEndToEndModel:
    def test_bulk_baseline_matches_hand_calculation(self):
        # buffer of 8 MB over a 1 GB/s link = 8 ms fully exposed after compute
        model = EndToEndModel(FLAT, buffer_bytes=8_000_000, hops=0)
        projection = model.project_dataset(_laggard_dataset())
        bulk = projection.projections["bulk"]
        # half the iterations end at 20 ms, half at 28 ms; + 8 ms of comm
        assert bulk.mean_iteration_s == pytest.approx(24e-3 + 8e-3, rel=1e-6)

    def test_fine_grained_hides_communication_behind_laggards(self):
        model = EndToEndModel(FLAT, buffer_bytes=8_000_000, hops=0)
        projection = model.project_dataset(_laggard_dataset())
        speedups = projection.speedup_over_bulk()
        assert speedups["fine_grained"] > 1.05
        assert projection.best().strategy != "bulk"
        reductions = projection.communication_reduction()
        assert reductions["fine_grained"] > 0.3
        assert reductions["bulk"] == 0.0

    def test_uniform_arrivals_leave_little_to_gain(self):
        times = np.full((1, 1, 6, 8), 20.0e-3)
        ds = TimingDataset.from_compute_times(times, {"application": "flat"})
        model = EndToEndModel(FLAT, buffer_bytes=1_000_000, hops=0)
        speedups = model.project_dataset(ds).speedup_over_bulk()
        assert speedups["fine_grained"] == pytest.approx(1.0, abs=0.01)

    def test_post_region_compute_added_to_every_strategy(self):
        base = EndToEndModel(FLAT, buffer_bytes=1_000_000, hops=0)
        padded = EndToEndModel(
            FLAT, buffer_bytes=1_000_000, hops=0, post_region_compute_s=5e-3
        )
        ds = _laggard_dataset()
        delta = (
            padded.project_dataset(ds).projections["bulk"].mean_iteration_s
            - base.project_dataset(ds).projections["bulk"].mean_iteration_s
        )
        assert delta == pytest.approx(5e-3, rel=1e-9)

    def test_bulk_is_always_included(self):
        model = EndToEndModel(FLAT, strategies=[FineGrainedStrategy()])
        assert any(s.name == "bulk" for s in model.strategies)

    def test_table_rows_include_speedup_column(self):
        model = EndToEndModel(FLAT, buffer_bytes=1_000_000, hops=0)
        rows = model.project_dataset(_laggard_dataset()).table_rows()
        assert all("projected_speedup_vs_bulk" in row for row in rows)
        assert {row["strategy"] for row in rows} >= {"bulk", "fine_grained"}

    def test_project_multiple_applications(self, all_datasets):
        model = EndToEndModel(buffer_bytes=4 << 20)
        projections = model.project_applications(all_datasets, max_iterations=20)
        assert set(projections) == set(all_datasets)
        for name, projection in projections.items():
            assert isinstance(projection, EndToEndProjection)
            assert projection.n_iterations_evaluated > 0
            assert projection.speedup_over_bulk()["fine_grained"] >= 1.0 - 1e-9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EndToEndModel(buffer_bytes=0)
        with pytest.raises(ValueError):
            EndToEndModel(post_region_compute_s=-1.0)

    def test_missing_bulk_in_speedup_raises(self):
        projection = EndToEndProjection(
            application="x", buffer_bytes=1, n_iterations_evaluated=0
        )
        with pytest.raises(KeyError):
            projection.speedup_over_bulk()
