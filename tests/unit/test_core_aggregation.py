"""Unit tests for the three aggregation levels."""

import numpy as np
import pytest

from repro.core.aggregation import AggregationLevel, aggregate, per_iteration_samples
from repro.core.timing import TimingDataset


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(5)
    times = rng.uniform(1e-3, 2e-3, size=(2, 3, 4, 6))  # trials, procs, iters, threads
    return TimingDataset.from_compute_times(times, {"application": "demo"})


class TestAggregationLevels:
    def test_application_level_single_group(self, dataset):
        grouped = aggregate(dataset, AggregationLevel.APPLICATION)
        assert grouped.n_groups == 1
        assert grouped.group_size == len(dataset)
        assert grouped.keys == [()]

    def test_application_iteration_level_grouping(self, dataset):
        grouped = aggregate(dataset, AggregationLevel.APPLICATION_ITERATION)
        assert grouped.n_groups == 4
        assert grouped.group_size == 2 * 3 * 6
        # every group's samples are exactly the dataset rows of that iteration
        for key in grouped.keys:
            expected = np.sort(dataset.select(iteration=key[0]).compute_times_s)
            np.testing.assert_allclose(np.sort(grouped.group(key)), expected)

    def test_process_iteration_level_grouping(self, dataset):
        grouped = aggregate(dataset, AggregationLevel.PROCESS_ITERATION)
        assert grouped.n_groups == 2 * 3 * 4
        assert grouped.group_size == 6
        key = (1, 2, 3)
        expected = np.sort(
            dataset.select(trial=1, process=2, iteration=3).compute_times_s
        )
        np.testing.assert_allclose(np.sort(grouped.group(key)), expected)

    def test_level_parsing_from_string(self, dataset):
        grouped = aggregate(dataset, "process_iteration")
        assert grouped.level is AggregationLevel.PROCESS_ITERATION
        with pytest.raises(ValueError):
            AggregationLevel.from_name("bogus")

    def test_values_ms_scaling(self, dataset):
        grouped = aggregate(dataset, AggregationLevel.APPLICATION)
        np.testing.assert_allclose(grouped.values_ms(), grouped.values * 1e3)

    def test_unknown_group_key_raises(self, dataset):
        grouped = aggregate(dataset, AggregationLevel.PROCESS_ITERATION)
        with pytest.raises(KeyError):
            grouped.group((99, 99, 99))

    def test_iteration_of_row(self, dataset):
        grouped = aggregate(dataset, AggregationLevel.PROCESS_ITERATION)
        assert grouped.iteration_of(0) == grouped.keys[0][-1]

    def test_per_iteration_samples_matrix(self, dataset):
        matrix = per_iteration_samples(dataset)
        assert matrix.shape == (4, 2 * 3 * 6)

    def test_sparse_dataset_rejected(self, dataset):
        columns = {name: dataset.column(name)[:-1] for name in dataset.columns}
        sparse = TimingDataset(columns, dataset.metadata)
        with pytest.raises(ValueError):
            aggregate(sparse, AggregationLevel.APPLICATION)

    def test_group_count_times_size_equals_samples(self, dataset):
        for level in AggregationLevel:
            grouped = aggregate(dataset, level)
            assert grouped.n_groups * grouped.group_size == len(dataset)
