"""Unit tests for the cluster topology model."""

import pytest

from repro.cluster.topology import Cluster, Core


class TestCore:
    def test_global_id_and_cycle_time(self):
        core = Core(node_id=1, socket_id=0, core_id=5, frequency_ghz=2.0)
        assert core.global_id == (1, 0, 5)
        assert core.seconds_per_cycle == pytest.approx(0.5e-9)


class TestCluster:
    def test_manzano_like_layout(self):
        cluster = Cluster(2, sockets_per_node=2, cores_per_socket=24)
        assert cluster.n_nodes == 2
        assert cluster.cores_per_node == 48
        assert cluster.total_cores == 96

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            Cluster(0)
        with pytest.raises(ValueError):
            Cluster(1, sockets_per_node=0)

    def test_cores_ordered_socket_major(self):
        cluster = Cluster(1, sockets_per_node=2, cores_per_socket=3)
        sockets = [core.socket_id for core in cluster.cores_of(0)]
        assert sockets == [0, 0, 0, 1, 1, 1]

    def test_hops_zero_within_node(self):
        cluster = Cluster(4)
        assert cluster.hops_between(2, 2) == 0

    def test_hops_between_nodes_via_switch(self):
        cluster = Cluster(4)
        # node -> leaf switch -> node = 2 hops with a single switch level
        assert cluster.hops_between(0, 3) == 2

    def test_hops_across_switches(self):
        cluster = Cluster(64, nodes_per_switch=32)
        same_switch = cluster.hops_between(0, 1)
        cross_switch = cluster.hops_between(0, 63)
        assert cross_switch > same_switch

    def test_place_processes_packs_nodes(self):
        cluster = Cluster(2, sockets_per_node=2, cores_per_socket=24)
        placements = cluster.place_processes(2, 48)
        assert len(placements) == 2
        assert placements[0][0].node_id == 0
        assert placements[1][0].node_id == 1
        assert all(len(cores) == 48 for cores in placements)

    def test_place_processes_multiple_per_node(self):
        cluster = Cluster(1, sockets_per_node=2, cores_per_socket=24)
        placements = cluster.place_processes(4, 12)
        assert [cores[0].core_id for cores in placements[:2]] == [0, 12]
        assert {cores[0].node_id for cores in placements} == {0}

    def test_place_processes_overflow_rejected(self):
        cluster = Cluster(1, sockets_per_node=1, cores_per_socket=8)
        with pytest.raises(ValueError, match="cannot place"):
            cluster.place_processes(2, 8)

    def test_iter_cores_covers_everything(self):
        cluster = Cluster(2, sockets_per_node=1, cores_per_socket=4)
        assert len(list(cluster.iter_cores())) == cluster.total_cores
