"""Unit tests for the top-level package API (lazy exports, metadata)."""

import importlib

import pytest

import repro


class TestTopLevelApi:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_lazy_exports_resolve(self):
        assert repro.TimingDataset is importlib.import_module(
            "repro.core.timing"
        ).TimingDataset
        assert repro.ThreadTimingAnalyzer is importlib.import_module(
            "repro.core.analyzer"
        ).ThreadTimingAnalyzer
        assert callable(repro.quick_campaign)
        assert callable(repro.run_campaign)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist  # noqa: B018

    def test_dir_lists_lazy_exports(self):
        listing = dir(repro)
        for name in repro.__all__:
            assert name in listing

    @pytest.mark.parametrize(
        "module",
        [
            "repro.sim",
            "repro.cluster",
            "repro.openmp",
            "repro.mpi",
            "repro.stats",
            "repro.core",
            "repro.apps",
            "repro.workloads",
            "repro.experiments",
            "repro.io",
            "repro.viz",
        ],
    )
    def test_documented_subpackages_import_and_have_docstrings(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__ and len(imported.__doc__.strip()) > 40

    def test_readme_quickstart_snippet_runs(self):
        """The README's code block must stay executable."""
        from repro import CampaignConfig, CampaignSession
        from repro.core import compare_strategies

        session = CampaignSession(CampaignConfig.smoke())
        report = session.run("minife").analyze().report()
        assert "minife" in report.summary()
        analyzer = session.analyze("minife")
        arrivals = analyzer.grouped("process_iteration").values[0]
        comparison = compare_strategies(arrivals, buffer_bytes=8 << 20)
        assert comparison.speedup_over_bulk()["bulk"] == pytest.approx(1.0)

    def test_new_campaign_api_lazy_exports(self):
        assert repro.CampaignSession is importlib.import_module(
            "repro.experiments.session"
        ).CampaignSession
        assert repro.register_backend is importlib.import_module(
            "repro.experiments.backends"
        ).register_backend
        assert repro.TimingShard is importlib.import_module(
            "repro.core.timing"
        ).TimingShard
