"""Unit tests for the region instrumenters."""

import numpy as np
import pytest

from repro.cluster.clock import ClockDomain, ClockSpec
from repro.cluster.noise import NoiseSpec, OSNoiseModel
from repro.cluster.topology import Cluster
from repro.core.instrument import PythonThreadRegion, RegionInstrumenter
from repro.openmp.runtime import OpenMPRuntime
from repro.openmp.team import ThreadTeam


class TestRegionInstrumenter:
    def test_record_thread_and_dataset(self):
        instr = RegionInstrumenter(region="matvec", application="minife")
        instr.record_thread(
            trial=0, process=1, iteration=2, thread=3, start_ns=100, end_ns=2_000_100
        )
        ds = instr.dataset()
        assert len(ds) == 1
        assert ds.metadata["region"] == "matvec"
        assert ds.compute_times_s[0] == pytest.approx(2.0e-3)

    def test_backwards_timestamps_rejected(self):
        instr = RegionInstrumenter()
        with pytest.raises(ValueError):
            instr.record_thread(
                trial=0, process=0, iteration=0, thread=0, start_ns=10, end_ns=5
            )

    def test_record_compute_times_assigns_thread_ids(self):
        instr = RegionInstrumenter(application="x")
        instr.record_compute_times(
            trial=0, process=0, iteration=0, compute_times_s=[1e-3, 2e-3, 3e-3]
        )
        ds = instr.dataset()
        assert ds.n_threads == 3
        np.testing.assert_allclose(
            np.sort(ds.compute_times_s), [1e-3, 2e-3, 3e-3]
        )

    def test_record_execution_from_simulated_runtime(self):
        cluster = Cluster(1, sockets_per_node=1, cores_per_socket=4)
        team = ThreadTeam(
            cluster.cores_of(0),
            ClockDomain(ClockSpec(), np.random.default_rng(0)),
            OSNoiseModel(NoiseSpec().disabled(), np.random.default_rng(1)),
        )
        runtime = OpenMPRuntime(team)
        execution = runtime.run_region(np.full(4, 1e-3), iteration=7)
        instr = RegionInstrumenter(application="demo")
        instr.record_execution(trial=2, process=3, execution=execution)
        ds = instr.dataset()
        assert ds.n_threads == 4
        assert list(ds.iterations) == [7]
        assert list(ds.trials) == [2]

    def test_empty_instrumenter_cannot_build_dataset(self):
        with pytest.raises(ValueError):
            RegionInstrumenter().dataset()

    def test_reset_clears_records(self):
        instr = RegionInstrumenter()
        instr.record_compute_times(
            trial=0, process=0, iteration=0, compute_times_s=[1e-3]
        )
        instr.reset()
        assert instr.n_records == 0


class TestPythonThreadRegion:
    def test_real_thread_measurement_produces_dataset(self):
        def spin(_item):
            total = 0
            for i in range(200):
                total += i * i
            return total

        region = PythonThreadRegion(n_threads=3, work_fn=spin, n_items=30)
        ds = region.run(n_iterations=4, application="pool-demo")
        assert ds.n_threads == 3
        assert ds.n_iterations == 4
        assert np.all(ds.compute_times_s >= 0.0)
        assert ds.metadata["backend"] == "python-threads"

    def test_block_assignment_covers_all_items(self):
        region = PythonThreadRegion(n_threads=4, work_fn=lambda i: None, n_items=10)
        blocks = region._assignment()
        covered = [item for block in blocks for item in block]
        assert sorted(covered) == list(range(10))
        assert [len(b) for b in blocks] == [3, 3, 2, 2]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PythonThreadRegion(0, lambda i: None, 1)
        with pytest.raises(ValueError):
            PythonThreadRegion(1, lambda i: None, -1)
        with pytest.raises(ValueError):
            PythonThreadRegion(1, lambda i: None, 1).run(0)
