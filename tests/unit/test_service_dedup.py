"""Unit tests for request coalescing: duplicate submissions run once.

``RequestCoalescer`` is exercised directly, then through the full
``CampaignService`` with a backend that counts its shard executions — two
identical concurrent submissions must reach the backend exactly once.
"""

import asyncio

import numpy as np
import pytest

from repro.core.timing import TimingShard
from repro.experiments.backends import (
    CampaignBackend,
    ShardSpec,
    register_backend,
    unregister_backend,
)
from repro.experiments.config import CampaignConfig
from repro.experiments.session import config_cache_key
from repro.service import CampaignService, Job, RequestCoalescer

BACKEND_NAME = "unit-test-dedup-counting"


class CountingBackend(CampaignBackend):
    """Constant-time backend counting shard executions in-process.

    The class-level counter is only valid for serial/thread execution
    (process pools would count in the children), so the service tests
    below run with ``executor_mode="thread"``.
    """

    computed = 0

    def shard_specs(self, config):
        return [
            ShardSpec(trial=t, process=p)
            for t in range(config.trials)
            for p in range(config.processes)
        ]

    def run_shard(self, config, spec, streams):
        type(self).computed += 1
        n = config.iterations * config.threads
        iteration, thread = np.divmod(np.arange(n), config.threads)
        columns = {
            "trial": np.full(n, spec.trial),
            "process": np.full(n, spec.process),
            "iteration": iteration,
            "thread": thread,
            "compute_time_s": np.full(n, 1.0e-3),
        }
        return TimingShard(trial=spec.trial, process=spec.process, columns=columns)


@pytest.fixture()
def counting_backend():
    CountingBackend.computed = 0
    register_backend(BACKEND_NAME)(CountingBackend)
    try:
        yield CountingBackend
    finally:
        unregister_backend(BACKEND_NAME)


def _config() -> CampaignConfig:
    config = CampaignConfig.smoke(application="minife")
    config = config.scaled(trials=1, processes=3)
    config.backend = BACKEND_NAME
    return config


class TestRequestCoalescer:
    def test_lookup_register_release_cycle(self):
        async def scenario():
            coalescer = RequestCoalescer()
            config = _config()
            key = config_cache_key(config)
            assert coalescer.lookup(key) is None
            job = Job("job-1", config)
            coalescer.register(job)
            assert coalescer.lookup(key) is job
            assert coalescer.lookup(key) is job
            stats = coalescer.stats()
            assert stats["coalesce_misses"] == 1
            assert stats["coalesce_hits"] == 2
            assert stats["inflight"] == 1
            # settling the job releases the key: the next lookup misses
            job._finish(None, "", from_cache=False)
            assert coalescer.lookup(key) is None
            assert coalescer.stats()["inflight"] == 0

        asyncio.run(scenario())

    def test_distinct_keys_do_not_collide(self):
        async def scenario():
            coalescer = RequestCoalescer()
            minife = Job("job-1", _config())
            miniqmc_config = _config()
            miniqmc_config.application = "miniqmc"
            miniqmc = Job("job-2", miniqmc_config)
            coalescer.register(minife)
            coalescer.register(miniqmc)
            assert coalescer.lookup(minife.cache_key) is minife
            assert coalescer.lookup(miniqmc.cache_key) is miniqmc
            assert minife.cache_key != miniqmc.cache_key

        asyncio.run(scenario())


class TestServiceCoalescing:
    def test_duplicate_submissions_execute_backend_once(self, counting_backend):
        async def scenario():
            async with CampaignService(workers=2, executor_mode="thread") as service:
                first = await service.submit(_config())
                second = await service.submit(_config())
                assert not first.coalesced
                assert second.coalesced
                assert second.job is first.job
                result_a = await first.result()
                result_b = await second.result()
                assert result_a is result_b
                stats = service.stats()
                assert stats["coalesce_hits"] == 1
                assert stats["coalesce_misses"] == 1
                assert stats["submitted"] == 2

        asyncio.run(scenario())
        # 1 trial x 3 processes = 3 shards, computed exactly once
        assert counting_backend.computed == 3

    def test_coalesce_false_forces_a_second_execution(self, counting_backend):
        async def scenario():
            async with CampaignService(workers=2, executor_mode="thread") as service:
                first = await service.submit(_config())
                second = await service.submit(_config(), coalesce=False)
                assert second.job is not first.job
                await first.result()
                await second.result()
                assert first.digest == second.digest

        asyncio.run(scenario())
        assert counting_backend.computed == 6
