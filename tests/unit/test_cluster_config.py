"""Unit tests for machine configuration presets."""

import numpy as np
import pytest

from repro.cluster.config import MachineConfig, laptop, manzano


class TestPresets:
    def test_manzano_matches_paper_platform(self):
        config = manzano()
        assert config.sockets_per_node == 2
        assert config.cores_per_socket == 24
        assert config.cores_per_node == 48
        assert config.frequency_ghz == pytest.approx(2.9)
        assert config.clock_spec.tsc_reliable is False

    def test_laptop_is_smaller(self):
        assert laptop().cores_per_node < manzano().cores_per_node


class TestBuilders:
    def test_build_cluster_uses_layout(self):
        cluster = manzano(n_nodes=3).build_cluster()
        assert cluster.n_nodes == 3
        assert cluster.cores_per_node == 48

    def test_build_noise_and_clock_models(self):
        config = manzano()
        noise = config.build_noise_model(np.random.default_rng(0))
        clocks = config.build_clock_domain(np.random.default_rng(0))
        assert noise.spec.enabled
        assert not clocks.cross_core_comparable()

    def test_without_noise_is_a_disabled_copy(self):
        config = manzano()
        quiet = config.without_noise()
        assert not quiet.noise_spec.enabled
        assert config.noise_spec.enabled  # original untouched

    def test_invalid_node_count_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(n_nodes=0)
