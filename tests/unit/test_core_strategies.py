"""Unit tests for the early-bird delivery strategies."""

import numpy as np
import pytest

from repro.core.strategies import (
    BinnedStrategy,
    BulkStrategy,
    FineGrainedStrategy,
    TimeoutStrategy,
    compare_strategies,
)
from repro.mpi.network import NetworkModel, omni_path

FLAT = NetworkModel(
    latency_s=0.0,
    per_hop_latency_s=0.0,
    o_send_s=0.0,
    o_recv_s=0.0,
    bandwidth_bytes_per_s=1.0e9,
    eager_threshold_bytes=1 << 40,
)

LAGGARD_ARRIVALS = np.concatenate([np.full(15, 10.0e-3), [18.0e-3]])
BUFFER = 16_000_000  # 16 MB -> 16 ms of wire time on FLAT


class TestFlushPlans:
    def test_bulk_is_one_message_at_last_arrival(self):
        plan = BulkStrategy().flush_plan(LAGGARD_ARRIVALS, np.full(16, BUFFER // 16))
        assert len(plan) == 1
        assert plan[0][0] == pytest.approx(18.0e-3)
        assert plan[0][1] == BUFFER

    def test_fine_grained_is_one_message_per_thread(self):
        plan = FineGrainedStrategy().flush_plan(
            LAGGARD_ARRIVALS, np.full(16, BUFFER // 16)
        )
        assert len(plan) == 16

    def test_binned_groups_partitions(self):
        plan = BinnedStrategy(4).flush_plan(LAGGARD_ARRIVALS, np.full(16, 100))
        assert len(plan) == 4
        assert all(nbytes == 400 for _, nbytes in plan)

    def test_binned_flushes_partial_final_bin(self):
        arrivals = np.linspace(1e-3, 2e-3, 10)
        plan = BinnedStrategy(4).flush_plan(arrivals, np.full(10, 100))
        assert [nbytes for _, nbytes in plan] == [400, 400, 200]

    def test_timeout_flushes_periodically(self):
        arrivals = np.linspace(0.0, 10.0e-3, 11)
        plan = TimeoutStrategy(2.0e-3).flush_plan(arrivals, np.full(11, 100))
        total = sum(nbytes for _, nbytes in plan)
        assert total == 1100
        flush_times = [t for t, _ in plan]
        assert flush_times == sorted(flush_times)
        assert len(plan) >= 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BinnedStrategy(0)
        with pytest.raises(ValueError):
            TimeoutStrategy(0.0)


class TestEvaluation:
    def test_all_strategies_deliver_all_bytes(self):
        comparison = compare_strategies(
            LAGGARD_ARRIVALS, buffer_bytes=BUFFER, network=FLAT, hops=0
        )
        for outcome in comparison.outcomes.values():
            assert outcome.bytes_sent == BUFFER

    def test_fine_grained_beats_bulk_with_a_laggard(self):
        comparison = compare_strategies(
            LAGGARD_ARRIVALS, buffer_bytes=BUFFER, network=FLAT, hops=0
        )
        speedups = comparison.speedup_over_bulk()
        assert speedups["fine_grained"] > 1.2
        assert comparison.best().strategy != "bulk"

    def test_bulk_wins_when_arrivals_are_simultaneous_on_real_network(self):
        arrivals = np.full(48, 25.0e-3)
        comparison = compare_strategies(
            arrivals, buffer_bytes=4 << 20, network=omni_path()
        )
        # per-message overheads make many small messages slightly worse
        assert comparison.outcomes["bulk"].completion_s <= (
            comparison.outcomes["fine_grained"].completion_s + 1e-9
        )

    def test_exposed_communication_shrinks_with_fine_grained(self):
        comparison = compare_strategies(
            LAGGARD_ARRIVALS, buffer_bytes=BUFFER, network=FLAT, hops=0
        )
        assert (
            comparison.outcomes["fine_grained"].exposed_after_compute_s
            < comparison.outcomes["bulk"].exposed_after_compute_s
        )

    def test_speedup_requires_bulk_baseline(self):
        comparison = compare_strategies(
            LAGGARD_ARRIVALS,
            buffer_bytes=BUFFER,
            network=FLAT,
            hops=0,
            strategies=[FineGrainedStrategy()],
        )
        with pytest.raises(KeyError):
            comparison.speedup_over_bulk()

    def test_strategy_validation(self):
        with pytest.raises(ValueError):
            BulkStrategy().evaluate([], buffer_bytes=100)
        with pytest.raises(ValueError):
            BulkStrategy().evaluate([1.0], buffer_bytes=0)
