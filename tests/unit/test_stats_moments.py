"""Unit tests for vectorised sample moments."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.stats.moments import (
    central_moment,
    coefficient_of_variation,
    kurtosis,
    skewness,
    standardize,
)


class TestMoments:
    def test_skewness_matches_scipy_biased(self, rng):
        data = rng.exponential(size=(50, 30))
        np.testing.assert_allclose(
            skewness(data), scipy_stats.skew(data, axis=-1, bias=True), rtol=1e-12
        )

    def test_kurtosis_matches_scipy_pearson(self, rng):
        data = rng.normal(size=(50, 30))
        np.testing.assert_allclose(
            kurtosis(data),
            scipy_stats.kurtosis(data, axis=-1, fisher=False, bias=True),
            rtol=1e-12,
        )

    def test_fisher_kurtosis_of_normal_near_zero(self, rng):
        data = rng.normal(size=200_000)
        assert abs(kurtosis(data, fisher=True)) < 0.05

    def test_constant_data_has_zero_skew_and_kurtosis(self):
        data = np.full((3, 10), 7.0)
        np.testing.assert_array_equal(skewness(data), 0.0)
        np.testing.assert_array_equal(kurtosis(data), 0.0)

    def test_central_moment_second_is_biased_variance(self, rng):
        data = rng.normal(size=(4, 100))
        np.testing.assert_allclose(
            central_moment(data, 2), data.var(axis=-1), rtol=1e-12
        )

    def test_standardize_zero_mean_unit_std(self, rng):
        data = rng.normal(5.0, 3.0, size=(6, 200))
        z = standardize(data)
        np.testing.assert_allclose(z.mean(axis=-1), 0.0, atol=1e-12)
        np.testing.assert_allclose(z.std(axis=-1, ddof=1), 1.0, rtol=1e-12)

    def test_standardize_constant_rows_are_zero(self):
        z = standardize(np.full((2, 5), 3.0))
        np.testing.assert_array_equal(z, 0.0)

    def test_coefficient_of_variation(self):
        data = np.array([[10.0, 10.0, 10.0], [1.0, 2.0, 3.0]])
        cv = coefficient_of_variation(data)
        assert cv[0] == 0.0
        assert cv[1] == pytest.approx(1.0 / 2.0, rel=1e-12)

    def test_empty_last_axis_rejected(self):
        with pytest.raises(ValueError):
            skewness(np.empty((3, 0)))
