"""Unit tests for the OpenMP runtime (team + region execution)."""

import numpy as np
import pytest

from repro.cluster.clock import ClockDomain, ClockSpec
from repro.cluster.noise import NoiseSpec, OSNoiseModel
from repro.cluster.topology import Cluster
from repro.openmp.runtime import OpenMPRuntime
from repro.openmp.schedule import DynamicSchedule, StaticSchedule
from repro.openmp.team import ThreadTeam


def _team(n_threads=4, noise_enabled=False, seed=0):
    cluster = Cluster(1, sockets_per_node=2, cores_per_socket=max(n_threads // 2, 1))
    cores = cluster.cores_of(0)[:n_threads]
    clock_domain = ClockDomain(
        ClockSpec(read_jitter_ns=0.0, drift_ppm=0.0), np.random.default_rng(seed)
    )
    spec = NoiseSpec() if noise_enabled else NoiseSpec().disabled()
    noise = OSNoiseModel(spec, np.random.default_rng(seed + 1))
    return ThreadTeam(cores, clock_domain, noise, rng=np.random.default_rng(seed + 2))


class TestThreadTeam:
    def test_one_thread_per_core(self):
        team = _team(4)
        assert team.n_threads == 4
        assert [t.thread_id for t in team.threads] == [0, 1, 2, 3]

    def test_spans_sockets_when_team_is_large(self):
        team = _team(4)
        assert team.spans_sockets()

    def test_empty_team_rejected(self):
        cluster = Cluster(1)
        clock_domain = ClockDomain(ClockSpec())
        noise = OSNoiseModel(NoiseSpec())
        with pytest.raises(ValueError):
            ThreadTeam([], clock_domain, noise)


class TestFastPath:
    def test_compute_time_equals_busy_time_without_noise(self):
        team = _team(4)
        runtime = OpenMPRuntime(team)
        costs = np.full(8, 1.0e-3)  # 8 items of 1 ms, 2 per thread
        execution = runtime.run_region(costs, schedule=StaticSchedule())
        # clock readings are whole nanoseconds, so allow ns-level rounding
        np.testing.assert_allclose(execution.compute_times_s(), 2.0e-3, atol=5e-9)
        assert execution.n_threads == 4

    def test_derived_compute_time_matches_wall_time(self):
        team = _team(4)
        runtime = OpenMPRuntime(team)
        execution = runtime.run_region(np.full(4, 2.0e-3))
        np.testing.assert_allclose(
            execution.compute_times_s(), execution.wall_times_s(), rtol=1e-6
        )

    def test_history_and_time_advance_across_regions(self):
        team = _team(2)
        runtime = OpenMPRuntime(team)
        runtime.run_region(np.full(2, 1.0e-3), iteration=0)
        runtime.run_region(np.full(2, 1.0e-3), iteration=1)
        assert len(runtime.history) == 2
        assert runtime.history[1].region_start > runtime.history[0].region_end - 1e-12
        timings = runtime.timings()
        assert [t.iteration for t in timings] == [0, 1]

    def test_reclaimable_time_of_imbalanced_region(self):
        team = _team(2)
        runtime = OpenMPRuntime(team)
        costs = np.array([1.0e-3, 3.0e-3])  # one item each, imbalanced
        execution = runtime.run_region(costs, schedule=StaticSchedule(chunk=1))
        assert execution.reclaimable_time_s() == pytest.approx(2.0e-3, rel=1e-4)


class TestDetailedPath:
    def test_detailed_matches_fast_path_without_noise(self):
        costs = np.linspace(0.5e-3, 1.5e-3, 12)
        fast = OpenMPRuntime(_team(4, seed=3)).run_region(
            costs, schedule=StaticSchedule(), detailed=False
        )
        detailed = OpenMPRuntime(_team(4, seed=3)).run_region(
            costs, schedule=StaticSchedule(), detailed=True
        )
        np.testing.assert_allclose(
            fast.compute_times_s(), detailed.compute_times_s(), rtol=1e-9
        )

    def test_detailed_dynamic_schedule_executes_all_items(self):
        team = _team(3)
        runtime = OpenMPRuntime(team)
        costs = np.random.default_rng(0).uniform(0.1e-3, 0.4e-3, size=17)
        execution = runtime.run_region(
            costs, schedule=DynamicSchedule(chunk=2), detailed=True
        )
        executed = np.concatenate([t.items for t in execution.threads])
        assert sorted(executed.tolist()) == list(range(17))
        total_work = sum(t.work_s for t in execution.threads)
        assert total_work == pytest.approx(costs.sum(), rel=1e-9)

    def test_noise_accounting_balances_wall_time(self):
        team = _team(4, noise_enabled=True, seed=9)
        runtime = OpenMPRuntime(team)
        execution = runtime.run_region(np.full(4, 5.0e-3), detailed=True)
        for thread in execution.threads:
            # wall time = pure work + (jitter + preemption) accounting
            assert thread.wall_s == pytest.approx(thread.work_s + thread.noise_s, rel=1e-9)
        # with noise enabled the threads no longer finish in lockstep
        assert execution.arrival_spread_s() > 0.0
