"""Unit tests for the synthetic arrival models and synthetic application."""

import numpy as np
import pytest

from repro.apps import get_application
from repro.workloads import (
    BimodalArrival,
    LaggardArrival,
    NormalArrival,
    SkewedArrival,
    SyntheticApp,
    SyntheticConfig,
    TwoPhaseArrival,
    UniformArrival,
)


class TestArrivalModels:
    def test_normal_arrival_statistics(self, rng):
        model = NormalArrival(mean_s=25e-3, sd_s=1e-3)
        samples = model.sample_many(200, 48, rng)
        assert samples.shape == (200, 48)
        assert samples.mean() == pytest.approx(25e-3, rel=0.01)
        assert samples.std() == pytest.approx(1e-3, rel=0.1)
        assert np.all(samples >= 0.0)

    def test_uniform_arrival_bounds(self, rng):
        samples = UniformArrival(10e-3, 20e-3).sample(1000, rng)
        assert samples.min() >= 10e-3
        assert samples.max() <= 20e-3

    def test_laggard_arrival_has_expected_stragglers(self, rng):
        model = LaggardArrival(laggard_delay_s=5e-3, n_laggards=2)
        sample = model.sample(48, rng)
        late = np.sum(sample > model.mean_s + 2.5e-3)
        assert late == 2

    def test_bimodal_populations(self, rng):
        model = BimodalArrival(early_mean_s=20e-3, late_mean_s=30e-3, early_fraction=0.25)
        sample = model.sample(48, rng)
        assert np.sum(sample < 25e-3) == 12

    def test_skewed_arrival_right_tail(self, rng):
        samples = SkewedArrival(median_s=25e-3, sigma=0.2).sample_many(100, 48, rng)
        from scipy import stats as ss

        assert ss.skew(samples.ravel()) > 0.3

    def test_two_phase_switches_model(self, rng):
        model = TwoPhaseArrival(warmup_iterations=5)
        warm = model.sample_iteration(2, 1000, rng)
        steady = model.sample_iteration(50, 1000, rng)
        assert warm.std() > steady.std() * 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            NormalArrival().sample(0, rng)
        with pytest.raises(ValueError):
            LaggardArrival(n_laggards=100).sample(48, rng)
        with pytest.raises(ValueError):
            UniformArrival(2.0, 1.0).sample(10, rng)


class TestSyntheticApp:
    def test_item_costs_follow_configured_model(self, rng):
        app = SyntheticApp(SyntheticConfig(model=NormalArrival(10e-3, 0.1e-3), n_threads=16))
        costs = app.item_costs(0, 0, rng)
        assert costs.shape == (16,)
        assert costs.mean() == pytest.approx(10e-3, rel=0.05)

    def test_two_phase_model_uses_iteration_index(self, rng):
        app = SyntheticApp(
            SyntheticConfig(model=TwoPhaseArrival(warmup_iterations=10), n_threads=64)
        )
        warm = app.item_costs(0, 1, rng)
        steady = app.item_costs(0, 50, rng)
        assert warm.std() > steady.std()

    def test_reference_kernel_reports_model_statistics(self, rng):
        app = SyntheticApp()
        result = app.run_reference_kernel(rng)
        assert result["min_s"] <= result["mean_s"] <= result["max_s"]

    def test_label_propagates_to_name(self):
        app = SyntheticApp(SyntheticConfig(label="what-if"))
        assert app.name == "what-if"


class TestRegistry:
    def test_get_application_by_name(self):
        for name in ("minife", "minimd", "miniqmc"):
            assert get_application(name).name == name

    def test_unknown_application_rejected(self):
        with pytest.raises(ValueError):
            get_application("hpl")
