"""Unit tests for percentile series and fixed-width histograms."""

import numpy as np
import pytest

from repro.stats.histogram import FixedWidthHistogram, fixed_width_histogram, histogram_overlap
from repro.stats.percentiles import DEFAULT_PERCENTILES, PercentileSeries, iqr, percentile_table


class TestPercentiles:
    def test_iqr_of_uniform_grid(self):
        data = np.arange(101.0)
        assert iqr(data) == pytest.approx(50.0)

    def test_percentile_table_shape(self, rng):
        data = rng.normal(size=(30, 100))
        table = percentile_table(data)
        assert table.shape == (len(DEFAULT_PERCENTILES), 30)

    def test_series_from_samples_median_and_iqr(self, rng):
        samples = rng.normal(50.0, 5.0, size=(20, 4000))
        series = PercentileSeries.from_samples(samples)
        assert series.median.shape == (20,)
        np.testing.assert_allclose(series.median, 50.0, atol=0.5)
        np.testing.assert_allclose(series.iqr, 5.0 * 1.349, rtol=0.1)

    def test_series_accessors(self, rng):
        series = PercentileSeries.from_samples(rng.normal(size=(10, 500)))
        assert series.series(25.0).shape == (10,)
        with pytest.raises(KeyError):
            series.series(33.0)
        summary = series.iqr_summary(slice(0, 5))
        assert summary["max"] >= summary["mean"]

    def test_skew_direction_detects_early_arrivals(self, rng):
        # left-skewed: a few very small values, bulk near 25 ms
        bulk = rng.normal(25.0, 0.1, size=(10, 1000))
        bulk[:, :100] = 22.0
        assert PercentileSeries.from_samples(bulk).skew_direction() == "early"

    def test_skew_direction_symmetric(self, rng):
        series = PercentileSeries.from_samples(rng.normal(25.0, 1.0, size=(10, 5000)))
        assert series.skew_direction() == "symmetric"

    def test_to_dict_round_trip_lengths(self, rng):
        series = PercentileSeries.from_samples(rng.normal(size=(7, 100)))
        payload = series.to_dict()
        assert len(payload["iteration"]) == 7
        assert len(payload["p50"]) == 7

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PercentileSeries(
                iterations=np.arange(3),
                percentiles=(50.0,),
                values=np.zeros((2, 3)),
            )


class TestFixedWidthHistogram:
    def test_bin_width_is_exact(self, rng):
        samples = rng.normal(26.3e-3, 0.5e-3, size=10_000)
        hist = fixed_width_histogram(samples, 10.0e-6)
        widths = np.diff(hist.edges)
        np.testing.assert_allclose(widths, 10.0e-6, rtol=1e-9)
        assert hist.total == 10_000

    def test_counts_match_numpy_histogram(self, rng):
        samples = rng.uniform(0.0, 1.0, size=5000)
        hist = fixed_width_histogram(samples, 0.05)
        assert hist.counts.sum() == 5000
        assert hist.edges[0] <= samples.min()
        assert hist.edges[-1] >= samples.max()

    def test_mode_center_near_distribution_peak(self, rng):
        samples = rng.normal(26.3e-3, 0.2e-3, size=50_000)
        hist = fixed_width_histogram(samples, 10.0e-6)
        assert hist.mode_center == pytest.approx(26.3e-3, abs=0.1e-3)

    def test_density_integrates_to_one(self, rng):
        hist = fixed_width_histogram(rng.normal(size=1000), 0.1)
        assert np.sum(hist.density() * hist.bin_width) == pytest.approx(1.0)

    def test_spread_covers_occupied_range(self):
        hist = fixed_width_histogram([0.0, 1.0], 0.25)
        assert hist.spread() >= 1.0

    def test_guard_against_unit_mistakes(self, rng):
        with pytest.raises(ValueError, match="bins"):
            fixed_width_histogram(rng.uniform(0, 1000.0, size=10), 1e-6, max_bins=1000)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fixed_width_histogram([], 0.1)
        with pytest.raises(ValueError):
            fixed_width_histogram([1.0], 0.0)
        with pytest.raises(ValueError):
            fixed_width_histogram([1.0], 0.1, origin=2.0)

    def test_overlap_of_identical_histograms_is_one(self, rng):
        samples = rng.normal(size=2000)
        a = fixed_width_histogram(samples, 0.1)
        b = fixed_width_histogram(samples, 0.1)
        assert histogram_overlap(a, b) == pytest.approx(1.0)

    def test_overlap_of_disjoint_histograms_is_zero(self):
        a = fixed_width_histogram([0.0, 0.1, 0.2], 0.1)
        b = fixed_width_histogram([10.0, 10.1], 0.1)
        assert histogram_overlap(a, b) == pytest.approx(0.0, abs=1e-12)

    def test_overlap_requires_same_bin_width(self):
        a = fixed_width_histogram([0.0, 1.0], 0.1)
        b = fixed_width_histogram([0.0, 1.0], 0.2)
        with pytest.raises(ValueError):
            histogram_overlap(a, b)
