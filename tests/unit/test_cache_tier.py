"""Unit tests for the size-bounded LRU cache tier and its CLI."""

import os
import time

import pytest

from repro.io.cache_tier import (
    CACHE_MAX_BYTES_ENV,
    CacheTier,
    format_stats,
    main as cache_main,
)

KB = 1024


def _entry(root, name, nbytes, age_s=0.0):
    """Create a cache entry of ``nbytes`` whose mtime is ``age_s`` ago."""
    path = root / name
    if name.endswith(".store"):
        path.mkdir()
        (path / "manifest.json").write_bytes(b"{}")
        (path / "group-00000.bin").write_bytes(b"\0" * (nbytes - 2))
    else:
        path.write_bytes(b"\0" * nbytes)
    stamp = time.time() - age_s
    os.utime(path, (stamp, stamp))
    return path


class TestInventory:
    def test_entries_sorted_least_recently_used_first(self, tmp_path):
        tier = CacheTier(tmp_path)
        _entry(tmp_path, "campaign_b.npz", KB, age_s=10)
        _entry(tmp_path, "campaign_a.npz", KB, age_s=30)
        _entry(tmp_path, "analysis_c.pkl", KB, age_s=20)
        assert [e.path.name for e in tier.entries()] == [
            "campaign_a.npz",
            "analysis_c.pkl",
            "campaign_b.npz",
        ]

    def test_kind_classification_and_store_dir_sizing(self, tmp_path):
        tier = CacheTier(tmp_path)
        _entry(tmp_path, "campaign_x.npz", KB)
        _entry(tmp_path, "analysis_x.pkl", 2 * KB)
        _entry(tmp_path, "shards_x.store", 4 * KB)
        _entry(tmp_path, "notes.txt", 16)
        stats = tier.stats()
        assert stats["entries"] == 4
        assert stats["by_kind"]["campaign"] == {"entries": 1, "bytes": KB}
        assert stats["by_kind"]["analysis"] == {"entries": 1, "bytes": 2 * KB}
        # a .store directory is one unit, sized as its file tree
        assert stats["by_kind"]["store"] == {"entries": 1, "bytes": 4 * KB}
        assert stats["by_kind"]["other"]["entries"] == 1
        assert stats["total_bytes"] == tier.total_bytes
        assert "cache tier" in format_stats(stats)

    def test_lock_and_inflight_tmp_files_are_not_entries(self, tmp_path):
        tier = CacheTier(tmp_path)
        _entry(tmp_path, "campaign_x.npz", KB)
        (tmp_path / ".tier.lock").write_text("1")
        (tmp_path / "campaign_y.npz.tmp-42").write_bytes(b"\0" * KB)
        assert [e.path.name for e in tier.entries()] == ["campaign_x.npz"]


class TestEviction:
    def test_prunes_lru_first_until_under_budget(self, tmp_path):
        tier = CacheTier(tmp_path, max_bytes=2 * KB + 512)
        _entry(tmp_path, "campaign_old.npz", KB, age_s=30)
        _entry(tmp_path, "campaign_mid.npz", KB, age_s=20)
        _entry(tmp_path, "campaign_new.npz", KB, age_s=10)
        evicted = tier.prune()
        assert [p.name for p in evicted] == ["campaign_old.npz"]
        assert tier.total_bytes == 2 * KB

    def test_store_directories_are_evicted_whole(self, tmp_path):
        tier = CacheTier(tmp_path, max_bytes=KB)
        store = _entry(tmp_path, "shards_big.store", 4 * KB, age_s=20)
        keep = _entry(tmp_path, "campaign_new.npz", KB, age_s=5)
        assert tier.prune() == [store]
        assert not store.exists()
        assert keep.exists()

    def test_touch_rescues_an_entry_from_eviction(self, tmp_path):
        tier = CacheTier(tmp_path, max_bytes=KB)
        oldest = _entry(tmp_path, "campaign_a.npz", KB, age_s=30)
        newer = _entry(tmp_path, "campaign_b.npz", KB, age_s=10)
        tier.touch(oldest)  # cache hit: now most recently used
        assert tier.prune() == [newer]
        assert oldest.exists()

    def test_admit_never_evicts_the_admitted_entry(self, tmp_path):
        tier = CacheTier(tmp_path, max_bytes=KB)
        huge = _entry(tmp_path, "shards_huge.store", 8 * KB)
        assert tier.admit(huge) == []
        assert huge.exists()  # over budget, but not a self-eviction
        # the next admission displaces it
        fresh = _entry(tmp_path, "campaign_fresh.npz", KB)
        assert tier.admit(fresh) == [huge]
        assert fresh.exists() and not huge.exists()

    def test_no_budget_means_no_eviction(self, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_MAX_BYTES_ENV, raising=False)
        tier = CacheTier(tmp_path)
        entry = _entry(tmp_path, "campaign_x.npz", 8 * KB)
        assert tier.admit(entry) == []
        assert tier.prune() == []
        assert entry.exists()

    def test_env_var_supplies_the_default_budget(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, str(KB))
        tier = CacheTier(tmp_path)
        assert tier.max_bytes == KB
        _entry(tmp_path, "campaign_a.npz", KB, age_s=20)
        _entry(tmp_path, "campaign_b.npz", KB, age_s=10)
        assert [p.name for p in tier.prune()] == ["campaign_a.npz"]


class TestCrashTolerance:
    def test_stale_tmp_debris_is_swept_fresh_kept(self, tmp_path):
        tier = CacheTier(tmp_path, max_bytes=64 * KB, stale_after_s=5.0)
        stale = _entry(tmp_path, "campaign_x.npz.tmp-1", KB, age_s=60)
        fresh = _entry(tmp_path, "campaign_y.npz.tmp-2", KB, age_s=0)
        tier.prune()
        assert not stale.exists()
        assert fresh.exists()

    def test_stale_lock_is_taken_over(self, tmp_path):
        tier = CacheTier(tmp_path, max_bytes=KB, stale_after_s=0.01)
        lock = tmp_path / ".tier.lock"
        lock.write_text("dead-writer")
        time.sleep(0.05)
        _entry(tmp_path, "campaign_a.npz", KB, age_s=20)
        _entry(tmp_path, "campaign_b.npz", KB, age_s=10)
        # the abandoned lock does not wedge eviction
        assert [p.name for p in tier.prune()] == ["campaign_a.npz"]
        assert not lock.exists()

    def test_contended_lock_skips_pruning(self, tmp_path):
        tier = CacheTier(tmp_path, max_bytes=KB)
        (tmp_path / ".tier.lock").write_text("other-pruner")
        entry = _entry(tmp_path, "campaign_a.npz", 4 * KB, age_s=20)
        with tier._lock(timeout_s=0.1) as held:
            assert not held
        assert entry.exists()


class TestCLI:
    def test_stats_and_prune(self, tmp_path, capsys):
        _entry(tmp_path, "campaign_a.npz", KB, age_s=20)
        _entry(tmp_path, "shards_b.store", 4 * KB, age_s=10)
        assert cache_main(["--cache-dir", str(tmp_path), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out and "store" in out

        assert (
            cache_main(
                ["--cache-dir", str(tmp_path), "--prune", "--max-mb", "0.004"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "evicted campaign_a.npz" in out
        assert not (tmp_path / "campaign_a.npz").exists()
        assert (tmp_path / "shards_b.store").exists()

    def test_prune_without_budget_warns(self, tmp_path, capsys):
        _entry(tmp_path, "campaign_a.npz", KB)
        assert cache_main(["--cache-dir", str(tmp_path), "--prune"]) == 0
        assert "no budget" in capsys.readouterr().out
