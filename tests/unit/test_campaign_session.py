"""Unit tests for the CampaignSession facade, result caching and shims."""

import numpy as np
import pytest

from repro.core.analyzer import ThreadTimingAnalyzer
from repro.core.timing import TimingDataset, TimingShard
from repro.experiments.campaign import quick_campaign, run_all_campaigns, run_campaign
from repro.experiments.config import CampaignConfig
from repro.experiments.session import CampaignResult, CampaignSession, config_cache_key
from repro.io.dataset_io import load_shards, save_shards


def _assert_columns_equal(a: TimingDataset, b: TimingDataset) -> None:
    assert set(a.columns) == set(b.columns)
    for name in a.columns:
        np.testing.assert_array_equal(a.column(name), b.column(name))


class TestSessionFacade:
    def test_fluent_run_analyze_report_chain(self, smoke_config):
        report = CampaignSession(smoke_config).run("minife").analyze().report()
        assert 0.0 <= report.laggard_fraction <= 1.0

    def test_run_returns_result_with_lazy_merged_dataset(self, smoke_config):
        result = CampaignSession(smoke_config).run()
        assert isinstance(result, CampaignResult)
        assert result.application == "minife"
        assert not result.from_cache
        dataset = result.dataset
        assert isinstance(dataset, TimingDataset)
        assert dataset.n_samples == smoke_config.samples_per_application
        assert result.dataset is dataset  # merged exactly once
        assert result.analyze() is result.analyze()
        assert isinstance(result.analyze(), ThreadTimingAnalyzer)

    def test_result_iterates_over_shards(self, smoke_config):
        result = CampaignSession(smoke_config).run()
        shards = list(result)
        assert len(shards) == smoke_config.trials * smoke_config.processes
        assert all(isinstance(shard, TimingShard) for shard in shards)
        assert [shard.sort_key for shard in shards] == sorted(
            shard.sort_key for shard in shards
        )

    def test_run_retargets_application(self, smoke_config):
        session = CampaignSession(smoke_config)
        result = session.run("minimd")
        assert result.application == "minimd"
        assert result.dataset.metadata["application"] == "minimd"
        assert "minimd" in session
        assert session["minimd"] is result

    def test_run_all_covers_every_application(self, smoke_config):
        results = CampaignSession(smoke_config).run_all()
        assert set(results) == {"minife", "minimd", "miniqmc"}
        for name, result in results.items():
            assert result.dataset.metadata["application"] == name

    def test_stream_yields_shards_that_merge_to_run_dataset(self, smoke_config):
        session = CampaignSession(smoke_config)
        shards = list(session.stream())
        assert len(shards) == smoke_config.trials * smoke_config.processes
        backend = session.backend_for()
        merged = TimingDataset.merge(shards, metadata=backend.metadata(smoke_config))
        _assert_columns_equal(merged, session.run().dataset)

    def test_dataset_and_analyze_run_on_demand(self, smoke_config):
        session = CampaignSession(smoke_config)
        assert session.dataset().n_samples == smoke_config.samples_per_application
        assert isinstance(session.analyze(), ThreadTimingAnalyzer)


class TestChunkedBackend:
    def test_chunked_merge_equals_vectorized_dense_output(self, smoke_config):
        vectorized = CampaignSession(smoke_config).run().dataset
        chunked = CampaignSession(smoke_config.with_backend("chunked")).run().dataset
        _assert_columns_equal(vectorized, chunked)
        np.testing.assert_array_equal(vectorized.to_dense(), chunked.to_dense())

    def test_chunked_stream_is_lazy(self, smoke_config):
        stream = CampaignSession(smoke_config.with_backend("chunked")).stream()
        first = next(stream)
        assert (first.trial, first.process) == (0, 0)
        assert first.n_samples == smoke_config.iterations * smoke_config.threads


class TestResultCaching:
    def test_cache_round_trip(self, smoke_config, tmp_path):
        first = CampaignSession(smoke_config, cache_dir=tmp_path).run()
        assert not first.from_cache
        cached_files = list(tmp_path.glob("campaign_minife_*.npz"))
        assert len(cached_files) == 1
        second = CampaignSession(smoke_config, cache_dir=tmp_path).run()
        assert second.from_cache
        _assert_columns_equal(first.dataset, second.dataset)
        assert second.dataset.metadata["application"] == "minife"

    def test_use_cache_false_recomputes(self, smoke_config, tmp_path):
        CampaignSession(smoke_config, cache_dir=tmp_path).run()
        again = CampaignSession(smoke_config, cache_dir=tmp_path).run(use_cache=False)
        assert not again.from_cache

    def test_cached_result_reconstructs_shards(self, smoke_config, tmp_path):
        CampaignSession(smoke_config, cache_dir=tmp_path).run()
        cached = CampaignSession(smoke_config, cache_dir=tmp_path).run()
        shards = list(cached)
        assert len(shards) == smoke_config.trials
        merged = TimingDataset.merge(shards)
        np.testing.assert_array_equal(
            merged.compute_times_s, cached.dataset.compute_times_s
        )

    def test_cache_key_stability_and_sensitivity(self, smoke_config):
        assert config_cache_key(smoke_config) == config_cache_key(
            CampaignConfig.smoke()
        )
        assert config_cache_key(smoke_config) != config_cache_key(
            CampaignConfig.smoke(seed=8)
        )
        assert config_cache_key(smoke_config) != config_cache_key(
            smoke_config.for_application("minimd")
        )
        # execution knobs that cannot change the samples share the cache entry
        assert config_cache_key(smoke_config) == config_cache_key(
            smoke_config.parallel(4)
        )


class TestAnalysisProductCaching:
    def test_repeat_analyze_hits_the_product_cache(self, smoke_config, tmp_path):
        session = CampaignSession(smoke_config, cache_dir=tmp_path)
        first = session.analyze(analyses=["percentiles", "laggards"])
        assert session.analysis_cache_hits == 0
        assert session.analysis_cache_misses == 2
        assert len(list(tmp_path.glob("analysis_minife_*.pkl"))) == 2
        second = session.analyze(analyses=["percentiles", "laggards"])
        assert session.analysis_cache_hits == 2
        assert session.analysis_cache_misses == 2
        np.testing.assert_array_equal(
            first["percentiles"].mean_median(),
            second["percentiles"].mean_median(),
        )

    def test_cache_survives_sessions_without_recomputing(self, smoke_config, tmp_path):
        warm = CampaignSession(smoke_config, cache_dir=tmp_path)
        reference = warm.analyze(analyses=["percentiles"])
        fresh = CampaignSession(smoke_config, cache_dir=tmp_path)
        hit = fresh.analyze(analyses=["percentiles"])
        assert fresh.analysis_cache_hits == 1
        assert fresh.analysis_cache_misses == 0
        assert hit.application == "minife"
        np.testing.assert_array_equal(
            reference["percentiles"].mean_median(),
            hit["percentiles"].mean_median(),
        )

    def test_partial_hits_recompute_only_missing_passes(self, smoke_config, tmp_path):
        CampaignSession(smoke_config, cache_dir=tmp_path).analyze(
            analyses=["percentiles"]
        )
        session = CampaignSession(smoke_config, cache_dir=tmp_path)
        results = session.analyze(analyses=["percentiles", "laggards"])
        assert session.analysis_cache_hits == 1
        assert session.analysis_cache_misses == 1
        assert sorted(results) == ["laggards", "percentiles"]

    def test_exact_flag_and_config_key_the_cache(self, smoke_config, tmp_path):
        session = CampaignSession(smoke_config, cache_dir=tmp_path)
        session.analyze(analyses=["percentiles"])
        session.analyze(analyses=["percentiles"], exact=False)
        assert session.analysis_cache_misses == 2
        other = CampaignSession(
            CampaignConfig.smoke(seed=8), cache_dir=tmp_path
        )
        other.analyze(analyses=["percentiles"])
        assert other.analysis_cache_hits == 0
        assert other.analysis_cache_misses == 1

    def test_no_cache_dir_disables_counters(self, smoke_config):
        session = CampaignSession(smoke_config)
        session.analyze(analyses=["percentiles"])
        assert session.analysis_cache_hits == 0
        assert session.analysis_cache_misses == 0

    def test_default_repr_parameters_key_stably(self, smoke_config, tmp_path):
        # EarlybirdPass holds an EarlyBirdModel with no __repr__; the key
        # must not embed its memory address (which changes every process)
        from repro.analysis import get_analysis

        session = CampaignSession(smoke_config, cache_dir=tmp_path)
        paths = {
            session._analysis_cache_path(smoke_config, get_analysis("earlybird"), True)
            for _ in range(3)
        }
        assert len(paths) == 1
        key = session._describe_param(get_analysis("earlybird").model)
        assert "0x" not in key and "EarlyBirdModel" in key

    def test_earlybird_products_hit_the_cache_across_sessions(
        self, smoke_config, tmp_path
    ):
        CampaignSession(smoke_config, cache_dir=tmp_path).analyze(
            analyses=["earlybird"]
        )
        fresh = CampaignSession(smoke_config, cache_dir=tmp_path)
        fresh.analyze(analyses=["earlybird"])
        assert fresh.analysis_cache_hits == 1
        assert fresh.analysis_cache_misses == 0

    def test_large_array_parameters_key_distinct_entries(self, smoke_config, tmp_path):
        # repr() elides big arrays to '...'; the key must hash full contents
        from repro.analysis import get_analysis

        session = CampaignSession(smoke_config, cache_dir=tmp_path)
        a, b = get_analysis("percentiles"), get_analysis("percentiles")
        a.big, b.big = np.arange(10_000), np.arange(10_000) * 2
        path_a = session._analysis_cache_path(smoke_config, a, True)
        path_b = session._analysis_cache_path(smoke_config, b, True)
        assert path_a != path_b
        b.big = np.arange(10_000)
        assert session._analysis_cache_path(smoke_config, b, True) == path_a

    def test_container_parameters_describe_their_contents(self, smoke_config, tmp_path):
        # repr() of a list/dict elides nested big arrays and embeds object
        # addresses; containers must be described element-wise instead
        session = CampaignSession(smoke_config, cache_dir=tmp_path)
        a = session._describe_param([np.arange(5000)])
        b = session._describe_param([np.arange(5000) * 2])
        assert a != b and "..." not in a
        assert "ndarray" in session._describe_param({"edges": np.arange(5000)})

        class Opaque:
            __slots__ = ()

        assert session._describe_param({"model": Opaque()}) is None
        assert session._describe_param((1, "x", 2.5)) == "tuple[1;'x';2.5]"

    def test_slotted_parameters_are_described_stably(self, smoke_config, tmp_path):
        from repro.analysis import get_analysis

        class SlottedParam:
            __slots__ = ("threshold",)

            def __init__(self, threshold):
                self.threshold = threshold

        session = CampaignSession(smoke_config, cache_dir=tmp_path)
        p = get_analysis("percentiles")
        p.knob = SlottedParam(0.5)
        described = session._describe_param(p.knob)
        assert "0x" not in described and "threshold=0.5" in described
        assert session._analysis_cache_path(
            smoke_config, p, True
        ) == session._analysis_cache_path(smoke_config, p, True)

    def test_indescribable_parameters_disable_caching_with_a_warning(
        self, smoke_config, tmp_path
    ):
        from repro.analysis import get_analysis

        class Opaque:  # default repr, no __dict__, no slots payload
            __slots__ = ()

        session = CampaignSession(smoke_config, cache_dir=tmp_path)
        p = get_analysis("percentiles")
        p.knob = Opaque()
        with pytest.warns(RuntimeWarning, match="no stable description"):
            assert session._analysis_cache_path(smoke_config, p, True) is None


class TestShardIO:
    def test_shard_round_trip(self, smoke_config, tmp_path):
        shards = list(CampaignSession(smoke_config).stream())
        path = save_shards(shards, tmp_path / "shards")
        assert path.suffix == ".npz"
        restored = load_shards(path)
        assert len(restored) == len(shards)
        for original, loaded in zip(shards, restored):
            assert (original.trial, original.process) == (loaded.trial, loaded.process)
            for name in original.columns:
                np.testing.assert_array_equal(
                    np.asarray(original.columns[name]), loaded.columns[name]
                )
        merged = TimingDataset.merge(restored)
        assert merged.n_samples == smoke_config.samples_per_application

    def test_save_zero_shards_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_shards([], tmp_path / "empty")

    def test_load_rejects_plain_dataset_archive(self, smoke_config, tmp_path):
        from repro.io.dataset_io import save_dataset

        dataset = CampaignSession(smoke_config).run().dataset
        path = save_dataset(dataset, tmp_path / "dense")
        with pytest.raises(ValueError, match="shard"):
            load_shards(path)


class TestDeprecationShims:
    def test_run_campaign_warns_and_matches_session(self, smoke_config):
        with pytest.warns(DeprecationWarning, match="run_campaign"):
            old = run_campaign(smoke_config)
        new = CampaignSession(smoke_config).run().dataset
        _assert_columns_equal(old, new)
        assert old.metadata == new.metadata

    def test_quick_campaign_warns_and_matches_session(self):
        with pytest.warns(DeprecationWarning, match="quick_campaign"):
            old = quick_campaign(
                "minife", trials=1, processes=1, iterations=5, threads=8, seed=3
            )
        config = CampaignConfig(
            application="minife", trials=1, processes=1, iterations=5, threads=8, seed=3
        )
        _assert_columns_equal(old, CampaignSession(config).run().dataset)

    def test_run_all_campaigns_warns_and_matches_session(self, smoke_config):
        with pytest.warns(DeprecationWarning, match="run_all_campaigns"):
            old = run_all_campaigns(smoke_config, applications=["minife"])
        assert set(old) == {"minife"}
        _assert_columns_equal(
            old["minife"], CampaignSession(smoke_config).run("minife").dataset
        )
