"""Unit tests for laggard detection and reclaimable-time metrics."""

import numpy as np
import pytest

from repro.core.laggard import (
    IterationClass,
    analyze_laggards,
    classify_iterations,
)
from repro.core.reclaimable import (
    idle_ratio,
    per_iteration_reclaimable,
    reclaimable_time,
    summarize_reclaimable,
)
from repro.core.timing import TimingDataset


def _dataset_with_known_laggards():
    """1 trial, 1 process, 4 iterations, 8 threads with controlled patterns."""
    base = np.full((1, 1, 4, 8), 25.0e-3)
    base[0, 0, 1, 7] += 5.0e-3   # iteration 1: one clear laggard (+5 ms)
    base[0, 0, 2, :] += np.linspace(0.0, 8.0e-3, 8)  # iteration 2: wide spread
    base[0, 0, 3, 0] -= 2.0e-3   # iteration 3: an early thread, no laggard
    return TimingDataset.from_compute_times(base, {"application": "synthetic"})


class TestLaggardAnalysis:
    def test_laggard_detection_threshold(self):
        analysis = analyze_laggards(_dataset_with_known_laggards())
        flagged = {key[-1] for key, has in zip(analysis.keys, analysis.has_laggard) if has}
        assert 1 in flagged          # the +5 ms thread
        assert 0 not in flagged      # perfectly balanced iteration
        assert 3 not in flagged      # early arrival is not a laggard

    def test_classification(self):
        classes = classify_iterations(_dataset_with_known_laggards())
        class_of = {}
        for cls, keys in classes.items():
            for key in keys:
                class_of[key[-1]] = cls
        assert class_of[0] is IterationClass.NO_LAGGARD
        assert class_of[1] is IterationClass.LAGGARD
        assert class_of[2] is IterationClass.WIDE
        assert class_of[3] is IterationClass.NO_LAGGARD

    def test_fractions_and_counts_consistent(self):
        analysis = analyze_laggards(_dataset_with_known_laggards())
        counts = analysis.class_counts()
        assert sum(counts.values()) == analysis.n_groups
        assert analysis.laggard_fraction == pytest.approx(
            np.mean(analysis.has_laggard)
        )

    def test_exemplar_returns_group_of_requested_class(self):
        analysis = analyze_laggards(_dataset_with_known_laggards())
        key = analysis.exemplar(IterationClass.LAGGARD)
        assert key is not None and key[-1] == 1
        assert analysis.exemplar(IterationClass.WIDE)[-1] == 2

    def test_exemplar_missing_class_returns_none(self):
        times = np.full((1, 1, 2, 4), 10.0e-3)
        ds = TimingDataset.from_compute_times(times, {"application": "flat"})
        assert analyze_laggards(ds).exemplar(IterationClass.LAGGARD) is None

    def test_summary_units(self):
        summary = analyze_laggards(_dataset_with_known_laggards()).summary()
        payload = summary.as_dict()
        assert payload["threshold_ms"] == pytest.approx(1.0)
        assert payload["mean_median_ms"] == pytest.approx(25.0, rel=0.05)

    def test_custom_threshold_changes_sensitivity(self):
        ds = _dataset_with_known_laggards()
        strict = analyze_laggards(ds, threshold_s=10.0e-3)
        assert strict.laggard_fraction == 0.0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            analyze_laggards(_dataset_with_known_laggards(), threshold_s=0.0)


class TestReclaimable:
    def test_reclaimable_time_formula(self):
        arrivals = np.array([[1.0, 2.0, 4.0]])
        assert reclaimable_time(arrivals)[0] == pytest.approx((4 - 1) + (4 - 2))

    def test_idle_ratio_formula(self):
        arrivals = np.array([[1.0, 2.0, 4.0]])
        expected = 5.0 / (3 * 4.0)
        assert idle_ratio(arrivals)[0] == pytest.approx(expected)

    def test_identical_arrivals_have_zero_idle(self):
        arrivals = np.full((5, 8), 3.0)
        np.testing.assert_array_equal(reclaimable_time(arrivals), 0.0)
        np.testing.assert_array_equal(idle_ratio(arrivals), 0.0)

    def test_single_laggard_dominates_reclaimable_time(self):
        tight = np.full(48, 25.0e-3)
        with_laggard = tight.copy()
        with_laggard[-1] += 5.0e-3
        assert reclaimable_time(with_laggard)[0] == pytest.approx(47 * 5.0e-3)

    def test_idle_ratio_bounded(self, rng):
        arrivals = rng.uniform(1.0, 2.0, size=(100, 48))
        ratios = idle_ratio(arrivals)
        assert np.all(ratios >= 0.0) and np.all(ratios < 1.0)

    def test_summary_over_dataset(self):
        summary = summarize_reclaimable(_dataset_with_known_laggards())
        assert summary.n_groups == 4
        assert summary.n_threads == 8
        assert summary.max_reclaimable_s >= summary.mean_reclaimable_s
        assert summary.mean_per_thread_idle_s == pytest.approx(
            summary.mean_reclaimable_s / 8
        )

    def test_per_iteration_trajectories(self):
        reclaim, ratio = per_iteration_reclaimable(_dataset_with_known_laggards())
        assert reclaim.shape == (4,)
        assert reclaim[1] > reclaim[0]
        assert ratio[2] > ratio[0]
