"""Unit tests for the simulation event primitives."""

import pytest

from repro.sim.events import Delay, SimEvent, Signal, WaitEvent


class TestSimEvent:
    def test_starts_untriggered(self):
        event = SimEvent("e")
        assert not event.triggered
        assert event.value is None
        assert event.trigger_time is None

    def test_trigger_stores_value_and_time(self):
        event = SimEvent("e")
        event.trigger(42, time=1.5)
        assert event.triggered
        assert event.value == 42
        assert event.trigger_time == 1.5

    def test_double_trigger_rejected(self):
        event = SimEvent("e")
        event.trigger()
        with pytest.raises(RuntimeError):
            event.trigger()

    def test_waiters_called_once_with_value(self):
        event = SimEvent("e")
        seen = []
        event.add_waiter(seen.append)
        event.add_waiter(seen.append)
        event.trigger("payload")
        assert seen == ["payload", "payload"]

    def test_add_waiter_after_trigger_rejected(self):
        event = SimEvent("e")
        event.trigger()
        with pytest.raises(RuntimeError):
            event.add_waiter(lambda value: None)


class TestCommands:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-0.1)

    def test_zero_delay_allowed(self):
        assert Delay(0.0).duration == 0.0

    def test_wait_event_wraps_event(self):
        event = SimEvent("e")
        assert WaitEvent(event).event is event

    def test_signal_defaults_to_none_value(self):
        event = SimEvent("e")
        assert Signal(event).value is None
