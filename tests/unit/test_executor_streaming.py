"""Regression tests for the executor's incremental shard contract.

``ShardExecutor.iter_shards`` documents that each shard is yielded as soon
as it is available — before later shards have run — and that ``on_shard``
observes shards live.  The campaign service's shard streaming (and any
progress UI) depends on this: if the executor ever buffered the whole
campaign before yielding, streams would only "arrive" after the campaign
finished.
"""

import numpy as np
import pytest

from repro.core.timing import TimingShard
from repro.experiments.backends import (
    CampaignBackend,
    ShardSpec,
    register_backend,
    unregister_backend,
)
from repro.experiments.config import CampaignConfig
from repro.experiments.executor import ShardExecutor

BACKEND_NAME = "unit-test-counting"


class CountingBackend(CampaignBackend):
    """Constant-time backend that counts how many shards have been computed.

    The class-level counter is only meaningful for serial / thread-mode
    execution (process pools would count in the children) — which is exactly
    what these tests use.
    """

    computed = 0

    def shard_specs(self, config):
        return [
            ShardSpec(trial=t, process=p)
            for t in range(config.trials)
            for p in range(config.processes)
        ]

    def run_shard(self, config, spec, streams):
        type(self).computed += 1
        n = config.iterations * config.threads
        iteration, thread = np.divmod(np.arange(n), config.threads)
        columns = {
            "trial": np.full(n, spec.trial),
            "process": np.full(n, spec.process),
            "iteration": iteration,
            "thread": thread,
            "compute_time_s": np.full(n, 1.0e-3),
        }
        return TimingShard(trial=spec.trial, process=spec.process, columns=columns)


@pytest.fixture()
def counting_backend():
    CountingBackend.computed = 0
    register_backend(BACKEND_NAME)(CountingBackend)
    try:
        yield CountingBackend
    finally:
        unregister_backend(BACKEND_NAME)


@pytest.fixture()
def config(counting_backend):
    config = CampaignConfig.smoke(application="minife")
    config = config.scaled(trials=2, processes=3)
    config.backend = BACKEND_NAME
    return config


class TestIncrementalContract:
    def test_serial_shards_arrive_before_campaign_finishes(self, config):
        """Consuming one shard must not force the remaining five to run."""
        executor = ShardExecutor(max_workers=1)
        backend = CountingBackend()
        iterator = executor.iter_shards(backend, config)
        first = next(iterator)
        assert first.trial == 0 and first.process == 0
        assert CountingBackend.computed == 1  # five shards still pending
        second = next(iterator)
        assert (second.trial, second.process) == (0, 1)
        assert CountingBackend.computed == 2
        rest = list(iterator)
        assert len(rest) == 4
        assert CountingBackend.computed == 6

    def test_pooled_shards_arrive_within_inflight_window(self, config):
        """Thread-pool mode may run ahead, but only by the bounded window."""
        config.max_workers = 2
        executor = ShardExecutor(mode="thread")
        backend = CountingBackend()
        iterator = executor.iter_shards(backend, config)
        next(iterator)
        # with 2 workers the in-flight window is 2 * workers = 4 shards;
        # the first yield must happen long before all 6 have run
        assert CountingBackend.computed <= 5
        assert len(list(iterator)) == 5

    def test_on_shard_observes_shards_live(self, config):
        """``run(on_shard=...)`` fires per shard, before the campaign ends."""
        executor = ShardExecutor(max_workers=1)
        backend = CountingBackend()
        observed = []

        def on_shard(shard):
            # at observation time, shards after this one have not run yet
            observed.append((shard.trial, shard.process, CountingBackend.computed))

        shards = executor.run(backend, config, on_shard=on_shard)
        assert len(shards) == 6
        assert [(t, p) for t, p, _ in observed] == [
            (t, p) for t in range(2) for p in range(3)
        ]
        assert [count for _, _, count in observed] == [1, 2, 3, 4, 5, 6]

    def test_on_shard_order_matches_yield_order(self, config):
        executor = ShardExecutor(max_workers=1)
        backend = CountingBackend()
        seen = []
        yielded = list(
            executor.iter_shards(
                backend, config, on_shard=lambda s: seen.append(s)
            )
        )
        assert [id(s) for s in seen] == [id(s) for s in yielded]

    def test_run_merged_forwards_on_shard(self, config):
        executor = ShardExecutor(max_workers=1)
        backend = CountingBackend()
        calls = []
        dataset = executor.run_merged(
            backend, config, on_shard=lambda s: calls.append(s.n_samples)
        )
        assert len(calls) == 6
        assert sum(calls) == dataset.n_samples
