"""Unit tests for the service scheduler: priority, admission, cancellation.

The scheduler is pure asyncio, so every test builds a tiny event loop with
``asyncio.run``; jobs are settled by stub handlers rather than real
campaign executions (the end-to-end path is covered in
``tests/integration/test_service_api.py``).
"""

import asyncio

import numpy as np
import pytest

from repro.core.timing import TimingShard
from repro.experiments.config import CampaignConfig
from repro.service import (
    Job,
    JobCancelledError,
    JobHandle,
    JobQueue,
    JobScheduler,
    JobState,
    RejectedError,
)


def _config() -> CampaignConfig:
    return CampaignConfig.smoke(application="minife")


def _job(job_id: str, priority: int = 0) -> Job:
    return Job(job_id, _config(), priority=priority)


def _shard(trial: int = 0, process: int = 0, n: int = 4) -> TimingShard:
    columns = {
        "trial": np.full(n, trial),
        "process": np.full(n, process),
        "iteration": np.zeros(n, dtype=np.int64),
        "thread": np.arange(n),
        "compute_time_s": np.full(n, 1.0e-3),
    }
    return TimingShard(trial=trial, process=process, columns=columns)


class TestJobQueue:
    def test_rejects_max_depth_below_one(self):
        with pytest.raises(ValueError):
            JobQueue(max_depth=0)

    def test_priority_order_with_fifo_ties(self):
        async def scenario():
            queue = JobQueue(max_depth=8)
            queue.put(_job("low", priority=0))
            queue.put(_job("high-first", priority=5))
            queue.put(_job("high-second", priority=5))
            queue.put(_job("mid", priority=3))
            return [await queue.get() for _ in range(4)]

        order = [job.id for job in asyncio.run(scenario())]
        assert order == ["high-first", "high-second", "mid", "low"]

    def test_admission_control_rejects_at_bound(self):
        async def scenario():
            queue = JobQueue(max_depth=2)
            queue.put(_job("a"))
            queue.put(_job("b"))
            assert queue.depth == len(queue) == 2
            with pytest.raises(RejectedError) as excinfo:
                queue.put(_job("c"))
            assert excinfo.value.depth == 2
            assert excinfo.value.max_depth == 2
            assert "queue is full" in str(excinfo.value)
            # draining one slot re-opens admission
            await queue.get()
            queue.put(_job("c"))
            assert queue.depth == 2

        asyncio.run(scenario())


class TestJobScheduler:
    def test_priority_controls_execution_order(self):
        async def scenario():
            executed = []

            async def handler(job):
                job._mark_running()
                executed.append(job.id)
                job._finish(None, "", from_cache=False)

            scheduler = JobScheduler(handler, workers=1, max_queue=8)
            jobs = [
                _job("background", priority=0),
                _job("urgent", priority=10),
                _job("normal", priority=1),
            ]
            # submit before starting so the priority queue orders all three
            for job in jobs:
                scheduler.submit(job)
            await scheduler.start()
            for job in jobs:
                await job.wait()
            await scheduler.stop()
            return executed

        assert asyncio.run(scenario()) == ["urgent", "normal", "background"]

    def test_submit_raises_when_queue_full(self):
        async def scenario():
            async def handler(job):  # pragma: no cover - never runs
                job._finish(None, "", from_cache=False)

            scheduler = JobScheduler(handler, workers=1, max_queue=1)
            scheduler.submit(_job("first"))
            with pytest.raises(RejectedError):
                scheduler.submit(_job("second"))

        asyncio.run(scenario())

    def test_cancel_queued_job_is_immediate_and_skipped(self):
        async def scenario():
            executed = []

            async def handler(job):
                executed.append(job.id)
                job._finish(None, "", from_cache=False)

            scheduler = JobScheduler(handler, workers=1, max_queue=8)
            doomed = _job("doomed")
            survivor = _job("survivor")
            scheduler.submit(doomed)
            scheduler.submit(survivor)
            assert doomed.cancel() is True
            assert doomed.state is JobState.CANCELLED
            await scheduler.start()
            await survivor.wait()
            await scheduler.stop()
            assert executed == ["survivor"]
            # cancelling a finished job is a no-op
            assert doomed.cancel() is False

        asyncio.run(scenario())

    def test_cancel_running_job_stops_at_shard_boundary(self):
        async def scenario():
            first_shard = asyncio.Event()
            resume = asyncio.Event()

            async def handler(job):
                job._mark_running()
                job._deliver(_shard(trial=0))
                first_shard.set()
                await resume.wait()
                # the cooperative contract: poll the flag between shards
                if job.cancel_requested.is_set():
                    job._mark_cancelled()
                    return
                job._deliver(_shard(trial=1))
                job._finish(None, "", from_cache=False)

            scheduler = JobScheduler(handler, workers=1, max_queue=8)
            job = _job("long-running")
            scheduler.submit(job)
            await scheduler.start()
            await first_shard.wait()
            assert job.state is JobState.STREAMING
            assert job.cancel() is True  # running: flag only, not terminal yet
            assert job.state is JobState.STREAMING
            resume.set()
            await job.wait()
            await scheduler.stop()
            assert job.state is JobState.CANCELLED
            assert job.progress.shards_done == 1
            with pytest.raises(JobCancelledError):
                job.result_or_raise()

        asyncio.run(scenario())

    def test_handler_crash_fails_job_but_worker_survives(self):
        async def scenario():
            async def handler(job):
                if job.id == "bad":
                    raise RuntimeError("boom")
                job._finish(None, "", from_cache=False)

            scheduler = JobScheduler(handler, workers=1, max_queue=8)
            bad, good = _job("bad"), _job("good")
            scheduler.submit(bad)
            scheduler.submit(good)
            await scheduler.start()
            await bad.wait()
            await good.wait()
            await scheduler.stop()
            assert bad.state is JobState.FAILED
            assert isinstance(bad.error, RuntimeError)
            assert good.state is JobState.DONE

        asyncio.run(scenario())

    def test_stream_replays_buffer_for_late_subscribers(self):
        async def scenario():
            async def handler(job):
                job._mark_running()
                for trial in range(3):
                    job._deliver(_shard(trial=trial))
                job._finish(None, "", from_cache=False)

            scheduler = JobScheduler(handler, workers=1, max_queue=8)
            job = _job("replayed")
            scheduler.submit(job)
            await scheduler.start()
            await job.wait()
            await scheduler.stop()
            # subscribing after completion still yields the full sequence
            handle = JobHandle(job)
            trials = [shard.trial async for shard in handle.stream()]
            assert trials == [0, 1, 2]

        asyncio.run(scenario())
