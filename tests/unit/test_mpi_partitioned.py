"""Unit tests for partitioned communication (closed-form and event-driven)."""

import numpy as np
import pytest

from repro.mpi.network import NetworkModel, omni_path
from repro.mpi.partitioned import (
    PartitionedRecvRequest,
    PartitionedSendRequest,
    partitioned_completion_times,
)
from repro.sim.engine import SimulationEngine
from repro.sim.events import Delay, WaitEvent

#: Simple network: no latency/overheads, 1 MB/s -> 1 byte = 1 µs.
FLAT = NetworkModel(
    latency_s=0.0,
    per_hop_latency_s=0.0,
    o_send_s=0.0,
    o_recv_s=0.0,
    bandwidth_bytes_per_s=1e6,
    eager_threshold_bytes=1 << 30,
)


class TestClosedForm:
    def test_simultaneous_partitions_serialise_like_one_message(self):
        transfer = partitioned_completion_times(
            [0.0, 0.0, 0.0, 0.0], 1000, FLAT, hops=0, per_partition_overhead_s=0.0
        )
        assert transfer.completion_time == pytest.approx(4e-3)
        assert transfer.total_bytes == 4000

    def test_spread_ready_times_overlap_compute_and_injection(self):
        # partitions become ready 2 ms apart but each takes only 1 ms to
        # inject: the NIC is never the bottleneck, completion tracks the last
        # ready time plus one injection
        transfer = partitioned_completion_times(
            [0.0, 2e-3, 4e-3, 6e-3], 1000, FLAT, hops=0, per_partition_overhead_s=0.0
        )
        assert transfer.completion_time == pytest.approx(7e-3)
        assert transfer.first_delivery_time == pytest.approx(1e-3)

    def test_per_partition_sizes_respected(self):
        transfer = partitioned_completion_times(
            [0.0, 0.0], [1000, 3000], FLAT, hops=0, per_partition_overhead_s=0.0
        )
        assert transfer.completion_time == pytest.approx(4e-3)
        sizes = [p.nbytes for p in transfer.partitions]
        assert sizes == [1000, 3000]

    def test_ready_time_ordering_preserved_in_records(self):
        ready = [5e-3, 1e-3, 3e-3]
        transfer = partitioned_completion_times(ready, 10, omni_path())
        np.testing.assert_allclose(transfer.ready_times(), ready)

    def test_validation(self):
        with pytest.raises(ValueError):
            partitioned_completion_times([], 10, FLAT)
        with pytest.raises(ValueError):
            partitioned_completion_times([0.0], [1, 2], FLAT)
        with pytest.raises(ValueError):
            partitioned_completion_times([-1.0], 10, FLAT)


class TestEventDriven:
    def _pair(self, engine, n_partitions=4, partition_bytes=1000):
        recv = PartitionedRecvRequest(engine, n_partitions)
        send = PartitionedSendRequest(
            engine, FLAT, n_partitions, partition_bytes, hops=0, receiver=recv
        )
        return send, recv

    def test_pready_flow_delivers_all_partitions(self):
        engine = SimulationEngine()
        send, recv = self._pair(engine)
        send.start()

        def thread(partition, ready_time):
            yield Delay(ready_time)
            send.pready(partition)

        procs = [engine.spawn(thread(i, i * 1e-3)) for i in range(4)]
        engine.run_until_complete(procs)
        engine.run()
        assert recv.all_arrived.triggered
        assert all(recv.parrived(i) for i in range(4))
        assert send.completion_time() == pytest.approx(recv.all_arrived.trigger_time)

    def test_event_driven_matches_closed_form(self):
        ready = [0.0, 0.5e-3, 2.5e-3, 3.0e-3]
        engine = SimulationEngine()
        send, recv = self._pair(engine)
        send.start()

        def thread(partition, ready_time):
            yield Delay(ready_time)
            send.pready(partition)

        engine.run_until_complete(
            [engine.spawn(thread(i, t)) for i, t in enumerate(ready)]
        )
        engine.run()
        closed = partitioned_completion_times(
            ready, 1000, FLAT, hops=0, per_partition_overhead_s=0.0
        )
        assert send.completion_time() == pytest.approx(closed.completion_time)

    def test_receiver_can_wait_on_single_partition(self):
        engine = SimulationEngine()
        send, recv = self._pair(engine, n_partitions=2)
        send.start()
        seen = {}

        def producer():
            yield Delay(1e-3)
            send.pready(1)
            yield Delay(1e-3)
            send.pready(0)

        def consumer():
            arrival = yield WaitEvent(recv.arrival_event(1))
            seen["partition1"] = arrival

        engine.run_until_complete(
            [engine.spawn(producer()), engine.spawn(consumer())]
        )
        assert seen["partition1"] == pytest.approx(2e-3)

    def test_double_pready_rejected(self):
        engine = SimulationEngine()
        send, _ = self._pair(engine)
        send.start()
        send.pready(0)
        with pytest.raises(RuntimeError):
            send.pready(0)

    def test_pready_before_start_rejected(self):
        engine = SimulationEngine()
        send, _ = self._pair(engine)
        with pytest.raises(RuntimeError):
            send.pready(0)
