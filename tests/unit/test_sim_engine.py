"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationEngine, run_simple
from repro.sim.events import Delay, Signal, WaitEvent


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert SimulationEngine().now == 0.0

    def test_callbacks_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(2.0, lambda: order.append("late"))
        engine.schedule(1.0, lambda: order.append("early"))
        engine.run()
        assert order == ["early", "late"]
        assert engine.now == 2.0

    def test_ties_run_in_scheduling_order(self):
        engine = SimulationEngine()
        order = []
        for i in range(5):
            engine.schedule(1.0, lambda i=i: order.append(i))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)

    def test_cancelled_entries_do_not_run(self):
        engine = SimulationEngine()
        hits = []
        entry = engine.schedule(1.0, lambda: hits.append("cancelled"))
        engine.schedule(2.0, lambda: hits.append("kept"))
        entry.cancelled = True
        engine.run()
        assert hits == ["kept"]

    def test_run_until_stops_early(self):
        engine = SimulationEngine()
        hits = []
        engine.schedule(1.0, lambda: hits.append(1))
        engine.schedule(5.0, lambda: hits.append(5))
        engine.run(until=2.0)
        assert hits == [1]
        assert engine.now == 2.0

    def test_schedule_at_absolute_time(self):
        engine = SimulationEngine()
        times = []
        engine.schedule_at(3.0, lambda: times.append(engine.now))
        engine.run()
        assert times == [3.0]

    def test_max_events_guard(self):
        engine = SimulationEngine()

        def reschedule():
            engine.schedule(0.0, reschedule)

        engine.schedule(0.0, reschedule)
        with pytest.raises(RuntimeError, match="max_events"):
            engine.run(max_events=100)


class TestProcesses:
    def test_process_delays_advance_time(self):
        def body():
            yield Delay(1.5)
            yield Delay(0.5)
            return "done"

        engine = SimulationEngine()
        proc = engine.spawn(body())
        engine.run()
        assert proc.finished
        assert proc.result == "done"
        assert proc.finish_time == pytest.approx(2.0)

    def test_wait_and_signal_between_processes(self):
        engine = SimulationEngine()
        done = engine.event("done")
        log = []

        def producer():
            yield Delay(1.0)
            yield Signal(done, "data")
            log.append(("produced", engine.now))

        def consumer():
            value = yield WaitEvent(done)
            log.append(("consumed", value, engine.now))

        procs = [engine.spawn(consumer()), engine.spawn(producer())]
        engine.run_until_complete(procs)
        assert ("consumed", "data", 1.0) in log

    def test_wait_on_already_triggered_event_resumes_immediately(self):
        engine = SimulationEngine()
        done = engine.event("done")
        done.trigger("x", time=0.0)

        def body():
            value = yield WaitEvent(done)
            return value

        proc = engine.spawn(body())
        engine.run()
        assert proc.result == "x"
        assert proc.finish_time == 0.0

    def test_deadlock_detection(self):
        engine = SimulationEngine()
        never = engine.event("never")

        def body():
            yield WaitEvent(never)

        proc = engine.spawn(body())
        with pytest.raises(RuntimeError, match="blocked"):
            engine.run_until_complete([proc])

    def test_unsupported_yield_type_raises(self):
        engine = SimulationEngine()

        def body():
            yield 123

        engine.spawn(body())
        with pytest.raises(TypeError):
            engine.run()

    def test_run_simple_returns_final_time(self):
        def body(duration):
            yield Delay(duration)

        assert run_simple([body(1.0), body(3.0), body(2.0)]) == pytest.approx(3.0)

    def test_trace_records_resumptions(self):
        engine = SimulationEngine(trace=True)

        def body():
            yield Delay(1.0)

        engine.spawn(body(), name="traced")
        engine.run()
        assert any("traced" in record for record in [r[2] for r in engine.trace])
