"""Unit tests for the MiniFE substrate (mesh, CSR, mat-vec, CG, proxy app)."""

import numpy as np
import pytest

from repro.apps.minife import (
    BrickMesh,
    MiniFEApp,
    MiniFEConfig,
    build_stencil_csr,
    conjugate_gradient,
    csr_matvec,
    rowblock_partition,
    threaded_matvec,
)
from repro.apps.minife.app import TARGET_MEDIAN_ARRIVAL_S


class TestBrickMesh:
    def test_row_nonzeros_by_position(self):
        mesh = BrickMesh(5, 5, 5)
        corner = mesh.row_nonzeros(mesh.node_index(0, 0, 0))
        edge = mesh.row_nonzeros(mesh.node_index(1, 0, 0))
        face = mesh.row_nonzeros(mesh.node_index(1, 1, 0))
        interior = mesh.row_nonzeros(mesh.node_index(2, 2, 2))
        assert (corner, edge, face, interior) == (8, 12, 18, 27)

    def test_total_nonzeros_formula(self):
        mesh = BrickMesh(6, 7, 8)
        assert mesh.total_nonzeros == (3 * 6 - 2) * (3 * 7 - 2) * (3 * 8 - 2)

    def test_cumulative_nonzeros_matches_row_sum(self):
        mesh = BrickMesh(4, 3, 5)
        explicit = np.cumsum([mesh.row_nonzeros(r) for r in range(mesh.n_rows)])
        for k in (0, 1, 7, 12, 25, mesh.n_rows):
            expected = 0 if k == 0 else explicit[k - 1]
            assert mesh.cumulative_nonzeros(k) == pytest.approx(expected)

    def test_rowblock_nonzeros_sum_to_total(self):
        mesh = BrickMesh(10, 10, 10)
        blocks = mesh.rowblock_nonzeros(7)
        assert blocks.sum() == pytest.approx(mesh.total_nonzeros)

    def test_boundary_blocks_carry_less_work(self):
        """The mechanism behind MiniFE's early threads (§4.2.1)."""
        mesh = BrickMesh(40, 40, 40)
        blocks = mesh.rowblock_nonzeros(8)
        interior = blocks[1:-1]
        assert blocks[0] < interior.min()
        assert blocks[-1] < interior.min()

    def test_pencil_nonzeros_consistent_with_total(self):
        mesh = BrickMesh(7, 6, 5)
        assert mesh.pencil_nonzeros().sum() == pytest.approx(mesh.total_nonzeros)

    def test_node_index_round_trip(self):
        mesh = BrickMesh(4, 5, 6)
        for idx in (0, 13, 57, mesh.n_rows - 1):
            assert mesh.node_index(*mesh.node_coords(idx)) == idx

    def test_out_of_range_rejected(self):
        mesh = BrickMesh(2, 2, 2)
        with pytest.raises(IndexError):
            mesh.node_index(2, 0, 0)
        with pytest.raises(ValueError):
            mesh.cumulative_nonzeros(1000)


class TestStencilKernel:
    def test_csr_structure_matches_mesh_counts(self):
        mesh = BrickMesh(5, 4, 3)
        matrix = build_stencil_csr(5, 4, 3)
        assert matrix.n_rows == mesh.n_rows
        assert matrix.nnz == mesh.total_nonzeros
        np.testing.assert_array_equal(
            matrix.row_nnz(), [mesh.row_nonzeros(r) for r in range(mesh.n_rows)]
        )

    def test_matrix_is_symmetric(self):
        dense = build_stencil_csr(4, 4, 4).to_dense()
        np.testing.assert_allclose(dense, dense.T)

    def test_matvec_matches_dense_product(self, rng):
        matrix = build_stencil_csr(4, 5, 3)
        x = rng.standard_normal(matrix.n_rows)
        np.testing.assert_allclose(
            csr_matvec(matrix, x), matrix.to_dense() @ x, rtol=1e-12
        )

    def test_threaded_matvec_equals_serial(self, rng):
        matrix = build_stencil_csr(6, 6, 6)
        x = rng.standard_normal(matrix.n_rows)
        result = threaded_matvec(matrix, x, 7)
        np.testing.assert_allclose(result.y, csr_matvec(matrix, x), rtol=1e-12)
        assert result.total_nonzeros == matrix.nnz

    def test_rowblock_partition_covers_rows(self):
        blocks = rowblock_partition(100, 7)
        assert blocks[0][0] == 0 and blocks[-1][1] == 100
        covered = sum(end - start for start, end in blocks)
        assert covered == 100

    def test_cg_solves_stencil_system(self):
        matrix = build_stencil_csr(5, 5, 5)
        b = np.ones(matrix.n_rows)
        result = conjugate_gradient(matrix, b, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(csr_matvec(matrix, result.x), b, atol=1e-6)

    def test_cg_callback_invoked(self):
        matrix = build_stencil_csr(3, 3, 3)
        iterations = []
        conjugate_gradient(
            matrix,
            np.ones(matrix.n_rows),
            callback=lambda it, res, x: iterations.append(it),
        )
        assert iterations and iterations[0] == 1


class TestMiniFEApp:
    def test_calibration_hits_target_median(self):
        app = MiniFEApp()
        rng = np.random.default_rng(0)
        base = app.base_thread_times(0, 0, rng)
        assert np.median(base) == pytest.approx(TARGET_MEDIAN_ARRIVAL_S, rel=1e-6)
        assert len(base) == 48

    def test_boundary_threads_arrive_early(self):
        app = MiniFEApp()
        base = app.base_thread_times(0, 0, np.random.default_rng(0))
        interior_median = np.median(base)
        assert base[0] < interior_median - 1e-3
        assert base[-1] < interior_median - 1e-3

    def test_straggler_probability_controls_delays(self):
        config = MiniFEConfig(straggler_probability=1.0)
        app = MiniFEApp(config)
        delays = app.application_delays(0, 0, np.random.default_rng(1))
        assert np.count_nonzero(delays) == 1
        assert config.straggler_min_s <= delays.max() <= config.straggler_max_s
        quiet = MiniFEApp(MiniFEConfig(straggler_probability=0.0))
        assert np.all(quiet.application_delays(0, 0, np.random.default_rng(1)) == 0.0)

    def test_reference_kernel_verifies_matvec_and_cg(self):
        app = MiniFEApp(MiniFEConfig(kernel_nx=8, kernel_ny=8, kernel_nz=8))
        result = app.run_reference_kernel(np.random.default_rng(2))
        assert result["matvec_block_mismatch"] < 1e-10
        assert result["cg_converged"] == 1.0

    def test_describe_includes_calibration(self):
        info = MiniFEApp().describe()
        assert info["name"] == "minife"
        assert info["time_per_nonzero_ns"] > 0.0

    def test_explicit_cost_override(self):
        app = MiniFEApp(MiniFEConfig(time_per_nonzero_s=1e-9))
        assert app.time_per_nonzero_s == 1e-9

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MiniFEConfig(straggler_probability=2.0)
        with pytest.raises(ValueError):
            MiniFEConfig(straggler_min_s=2e-3, straggler_max_s=1e-3)


class TestBatchedWorkModel:
    def test_base_thread_times_batch_broadcasts_cached_row(self):
        app = MiniFEApp(MiniFEConfig(nx=24, ny=24, nz=24, n_threads=8, n_iterations=5))
        rng = np.random.default_rng(0)
        batch = app.base_thread_times_batch(0, 5, rng)
        assert batch.shape == (5, 8)
        row = app.base_thread_times(0, 0, np.random.default_rng(0))
        np.testing.assert_array_equal(batch, np.tile(row, (5, 1)))

    def test_application_delays_batch_straggler_statistics(self):
        app = MiniFEApp(
            MiniFEConfig(nx=24, ny=24, nz=24, n_threads=8, straggler_probability=0.5)
        )
        delays = app.application_delays_batch(0, 400, np.random.default_rng(1))
        assert delays.shape == (400, 8)
        struck = delays > 0
        # at most one victim per iteration, delay inside the configured range
        assert np.all(struck.sum(axis=1) <= 1)
        hit_rows = struck.any(axis=1)
        assert 0.35 < hit_rows.mean() < 0.65
        values = delays[struck]
        assert np.all(values >= app.config.straggler_min_s)
        assert np.all(values <= app.config.straggler_max_s)

    def test_thread_compute_times_batch_shape_and_positivity(self):
        app = MiniFEApp(MiniFEConfig(nx=24, ny=24, nz=24, n_threads=8, n_iterations=6))
        times = app.thread_compute_times_batch(process=0, rng=np.random.default_rng(2))
        assert times.shape == (6, 8)
        assert np.all(times > 0)
