"""Unit tests for the per-core monotonic clock model."""

import numpy as np
import pytest

from repro.cluster.clock import ClockDomain, ClockSpec, MonotonicClock
from repro.cluster.topology import Core


class TestMonotonicClock:
    def test_elapsed_time_cancels_offset(self):
        clock = MonotonicClock(offset_s=123456.0)
        start = clock.read_ns(10.0)
        end = clock.read_ns(10.5)
        assert (end - start) * 1e-9 == pytest.approx(0.5, abs=1e-9)

    def test_reads_never_go_backwards_despite_jitter(self):
        clock = MonotonicClock(read_jitter_ns=500.0, rng=np.random.default_rng(0))
        times = np.linspace(0.0, 1e-3, 500)
        readings = [clock.read_ns(t) for t in times]
        assert all(b >= a for a, b in zip(readings, readings[1:]))

    def test_drift_scales_elapsed_time(self):
        clock = MonotonicClock(drift=1e-3)  # 1000 ppm fast
        start = clock.read_ns(0.0)
        end = clock.read_ns(1.0)
        assert (end - start) * 1e-9 == pytest.approx(1.001, rel=1e-6)


class TestClockSpec:
    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            ClockSpec(max_offset_s=-1.0)


class TestClockDomain:
    def _cores(self, n):
        return [Core(0, 0, i) for i in range(n)]

    def test_unsynchronised_cores_have_different_offsets(self):
        domain = ClockDomain(ClockSpec(tsc_reliable=False), np.random.default_rng(1))
        clocks = [domain.clock_for(core) for core in self._cores(4)]
        offsets = {round(c.offset_s, 6) for c in clocks}
        assert len(offsets) == 4
        assert not domain.cross_core_comparable()

    def test_raw_timestamps_not_comparable_across_cores(self):
        """The §3.1 motivation: raw CLOCK_MONOTONIC values from different
        cores cannot be ordered, but derived elapsed times can be compared."""
        domain = ClockDomain(ClockSpec(tsc_reliable=False), np.random.default_rng(2))
        clock_a, clock_b = (domain.clock_for(core) for core in self._cores(2))
        # same physical instant, wildly different readings
        a = clock_a.read_ns(5.0)
        b = clock_b.read_ns(5.0)
        assert abs(a - b) > 1_000_000  # offsets are huge compared to 1 ms
        # elapsed times agree to within drift/jitter
        elapsed_a = clock_a.read_ns(5.010) - a
        elapsed_b = clock_b.read_ns(5.010) - b
        assert elapsed_a * 1e-9 == pytest.approx(0.010, rel=1e-3)
        assert elapsed_b * 1e-9 == pytest.approx(0.010, rel=1e-3)

    def test_tsc_reliable_shares_offset_and_zero_drift(self):
        domain = ClockDomain(ClockSpec(tsc_reliable=True), np.random.default_rng(3))
        clocks = [domain.clock_for(core) for core in self._cores(3)]
        assert len({c.offset_s for c in clocks}) == 1
        assert all(c.drift == 0.0 for c in clocks)
        assert domain.cross_core_comparable()

    def test_clock_is_cached_per_core(self):
        domain = ClockDomain(ClockSpec(), np.random.default_rng(4))
        core = Core(0, 0, 0)
        assert domain.clock_for(core) is domain.clock_for(core)
        assert len(domain) == 1
