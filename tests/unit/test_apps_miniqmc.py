"""Unit tests for the MiniQMC substrate (splines, walkers, movers, proxy app)."""

import numpy as np
import pytest

from repro.apps.miniqmc import (
    MiniQMCApp,
    MiniQMCConfig,
    SplineOrbitalModel,
    VMCMover,
    Walker,
    WalkerEnsemble,
    run_mover_sweep,
)
from repro.apps.miniqmc.app import TARGET_IQR_S, TARGET_MEDIAN_ARRIVAL_S
from repro.apps.miniqmc.spline import cubic_bspline_weights


class TestSplines:
    def test_bspline_weights_form_partition_of_unity(self):
        for t in (0.0, 0.25, 0.5, 0.99):
            assert cubic_bspline_weights(t).sum() == pytest.approx(1.0)

    def test_bspline_weights_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            cubic_bspline_weights(1.5)

    def test_constant_coefficient_field_reproduced_exactly(self):
        model = SplineOrbitalModel(grid=6, n_orbitals=3, rng=np.random.default_rng(0))
        model.coefficients[...] = 2.5
        values = model.evaluate(np.array([0.3, 0.7, 0.1]))
        np.testing.assert_allclose(values, 2.5, rtol=1e-12)

    def test_evaluation_is_periodic(self):
        model = SplineOrbitalModel(grid=8, n_orbitals=4, rng=np.random.default_rng(1))
        a = model.evaluate(np.array([0.1, 0.2, 0.3]))
        b = model.evaluate(np.array([1.1, -0.8, 0.3]))
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_flops_scale_with_orbitals(self):
        small = SplineOrbitalModel(grid=8, n_orbitals=4).flops_per_evaluation()
        large = SplineOrbitalModel(grid=8, n_orbitals=64).flops_per_evaluation()
        assert large > small


class TestWalkersAndMovers:
    def test_ensemble_creation(self):
        ensemble = WalkerEnsemble.create(5, 16, np.random.default_rng(0))
        assert ensemble.n_walkers == 5
        assert ensemble.total_electrons() == 80

    def test_walker_shape_validation(self):
        with pytest.raises(ValueError):
            Walker(electrons=np.zeros((3, 2)))

    def test_mover_sweep_counts_every_proposal(self):
        result = run_mover_sweep(n_electrons=6, n_sweeps=3, seed=1)
        assert result["proposed"] == 18
        assert 0.0 <= result["acceptance_ratio"] <= 1.0
        assert result["orbital_evaluations"] == 2 * result["proposed"]

    def test_accepted_moves_change_positions(self):
        rng = np.random.default_rng(2)
        orbitals = SplineOrbitalModel(grid=8, n_orbitals=8, rng=rng)
        walker = Walker(electrons=rng.uniform(size=(4, 3)))
        before = walker.electrons.copy()
        mover = VMCMover(orbitals=orbitals, rng=rng)
        stats = mover.sweep(walker, n_sweeps=2)
        if stats.accepted > 0:
            assert not np.allclose(before, walker.electrons)
        assert walker.age == 1

    def test_invalid_mover_parameters(self):
        orbitals = SplineOrbitalModel(grid=8, n_orbitals=2)
        with pytest.raises(ValueError):
            VMCMover(orbitals=orbitals, timestep=0.0)


class TestMiniQMCApp:
    def test_calibrated_mean_and_spread(self):
        app = MiniQMCApp()
        rng = np.random.default_rng(0)
        samples = np.concatenate(
            [app.item_costs(0, i, rng) for i in range(100)]
        )
        assert samples.mean() == pytest.approx(TARGET_MEDIAN_ARRIVAL_S, rel=0.02)
        iqr = np.percentile(samples, 75) - np.percentile(samples, 25)
        assert iqr == pytest.approx(TARGET_IQR_S, rel=0.1)

    def test_one_item_per_thread(self):
        app = MiniQMCApp()
        costs = app.item_costs(0, 0, np.random.default_rng(1))
        assert len(costs) == app.config.n_threads

    def test_begin_process_changes_population_statistics(self):
        app = MiniQMCApp(MiniQMCConfig(process_sd_spread=0.5, process_mean_spread=0.05))
        rng = np.random.default_rng(2)
        scales = []
        for process in range(6):
            app.begin_process(process, rng)
            scales.append((app._process_mean_scale, app._process_sd_scale))
        assert len({round(s[1], 6) for s in scales}) > 1
        assert all(0.5 <= mean <= 1.5 for mean, _ in scales)

    def test_reference_kernel_runs(self):
        result = MiniQMCApp().run_reference_kernel(np.random.default_rng(3))
        assert result["proposed"] > 0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MiniQMCConfig(n_electrons=0)
        with pytest.raises(ValueError):
            MiniQMCApp(MiniQMCConfig(process_sd_spread=1.5))


class TestBatchedWorkModel:
    def test_item_costs_batch_matches_single_draw_statistics(self):
        app = MiniQMCApp(MiniQMCConfig(n_threads=48, n_iterations=50))
        app.begin_process(0, np.random.default_rng(0))
        batch = app.item_costs_batch(0, 50, np.random.default_rng(1))
        assert batch.shape == (50, 48)
        # same truncation floor as the per-iteration path
        assert np.all(batch >= 0.2 * app.mover_mean_s)
        singles = np.stack(
            [app.item_costs(0, it, np.random.default_rng(2)) for it in range(50)]
        )
        assert batch.mean() == pytest.approx(singles.mean(), rel=0.02)
