"""Unit tests for campaign configuration, tables, figures and the CLI."""

import numpy as np
import pytest

from repro.analysis import AnalysisContext, run_analyses
from repro.core.timing import TimingShard
from repro.experiments.config import CampaignConfig
from repro.experiments.figures import (
    FIGURE_GENERATORS,
    figure1_earlybird_timeline,
    figure2_potential_overlap,
    figure3_histogram,
    figure4_minife_percentiles,
    figure5_minife_classes,
    figure6_minimd_percentiles,
    figure7_minimd_classes,
    figure8_miniqmc_percentiles,
    figure9_miniqmc_histogram,
)
from repro.experiments.paper import PAPER_REFERENCE, TABLE1_PASS_PERCENT
from repro.experiments.runner import build_parser, main
from repro.experiments.tables import (
    minimd_phase_table,
    section4_metrics_table,
    section41_normality_table,
    table1,
)


class TestCampaignConfig:
    def test_paper_scale_matches_section_3_2(self):
        config = CampaignConfig.paper_scale()
        assert (config.trials, config.processes, config.iterations, config.threads) == (
            10,
            8,
            200,
            48,
        )
        assert config.samples_per_application == 768_000
        assert config.process_iterations == 16_000
        assert config.machine.name == "manzano"

    def test_machine_grows_to_fit_job(self):
        config = CampaignConfig.paper_scale()
        assert config.machine.n_nodes * config.machine.cores_per_node >= 8 * 48

    def test_scaled_and_for_application_copies(self):
        config = CampaignConfig.smoke().scaled(trials=3).for_application("minimd")
        assert config.trials == 3
        assert config.application == "minimd"

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(trials=0)
        with pytest.raises(ValueError):
            CampaignConfig(backend="gpu")


class TestPaperReference:
    def test_reference_tables_cover_all_apps(self):
        assert set(TABLE1_PASS_PERCENT) == {"minife", "minimd", "miniqmc"}
        assert set(PAPER_REFERENCE["section4_metrics"]) == {"minife", "minimd", "miniqmc"}

    def test_figure_registry_covers_paper_figures(self):
        assert set(FIGURE_GENERATORS) == {
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
        }


class TestTables:
    def test_table1_rows(self, all_datasets):
        rows = table1(all_datasets)
        assert len(rows) == 3
        for row in rows:
            measured = [v for k, v in row.items() if "measured" in k]
            assert all(0.0 <= value <= 100.0 for value in measured)
            assert any("paper" in key for key in row)

    def test_section4_metrics_rows(self, all_datasets):
        rows = section4_metrics_table(all_datasets)
        by_app = {row["application"]: row for row in rows}
        assert by_app["MiniQMC"]["mean_iqr_ms (measured)"] > by_app["MiniFE"][
            "mean_iqr_ms (measured)"
        ]

    def test_section41_rows(self, all_datasets):
        rows = section41_normality_table(all_datasets)
        assert {row["application"] for row in rows} == {"MiniFE", "MiniMD", "MiniQMC"}

    def test_minimd_phase_table(self, minimd_dataset):
        rows = minimd_phase_table(minimd_dataset)
        assert rows[0]["mean_iqr_ms (measured)"] > rows[1]["mean_iqr_ms (measured)"]


class TestFigureGenerators:
    def test_figure1_and_2_from_arrivals(self):
        arrivals = np.concatenate([np.full(7, 20e-3), [24e-3]])
        fig1 = figure1_earlybird_timeline(arrivals, buffer_bytes=1 << 20)
        assert fig1["earlybird_completion_s"] <= fig1["bulk_completion_s"]
        fig2 = figure2_potential_overlap(arrivals)
        assert fig2["total_overlap_s"] == pytest.approx(7 * 4e-3)

    def test_figure3_histogram_bins(self, minife_dataset):
        fig = figure3_histogram(minife_dataset)
        assert fig["histogram"].bin_width == pytest.approx(10e-6)
        assert fig["samples"] == minife_dataset.n_samples

    def test_percentile_figures(self, minife_dataset, minimd_dataset, miniqmc_dataset):
        assert figure4_minife_percentiles(minife_dataset)["skew_direction"] == "early"
        fig6 = figure6_minimd_percentiles(minimd_dataset)
        assert fig6["warmup_mean_iqr_ms"] > fig6["steady_mean_iqr_ms"]
        fig8 = figure8_miniqmc_percentiles(miniqmc_dataset)
        assert fig8["mean_iqr_ms"] > 5.0

    def test_figure5_classes(self, minife_dataset):
        fig = figure5_minife_classes(minife_dataset)
        assert 0.0 < fig["laggard_fraction"] < 1.0
        assert fig["no_laggard_histogram"] is not None

    def test_figure7_classes(self, minimd_dataset):
        fig = figure7_minimd_classes(minimd_dataset)
        assert fig["initial_histogram"] is not None
        assert fig["steady_laggard_fraction"] < 0.5

    def test_figure9_histogram(self, miniqmc_dataset):
        fig = figure9_miniqmc_histogram(miniqmc_dataset)
        assert fig["histogram"].bin_width == pytest.approx(1e-3)
        assert fig["spread_ms"] > 10.0


class TestRunnerCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == "benchmark"
        # --apps defaults to None (all three proxies at run time) so that an
        # explicit --apps can be detected as conflicting with --scenario
        assert args.apps is None
        assert args.scenario is None

    def test_main_smoke_run_writes_outputs(self, tmp_path):
        exit_code = main(
            [
                "--scale",
                "smoke",
                "--apps",
                "minife",
                "--iterations",
                "10",
                "--threads",
                "16",
                "--output",
                str(tmp_path),
                "--save-datasets",
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "table1.csv").exists()
        assert (tmp_path / "section4_metrics.csv").exists()
        assert (tmp_path / "report.txt").exists()
        assert (tmp_path / "dataset_minife.npz").exists()
        assert (tmp_path / "figures" / "figure3_minife.csv").exists()


class TestSketchModeFigures:
    """Figures 5/7/9 generated from bounded (sketch-mode) streaming results.

    This is the out-of-core path: no merged dataset, only streamed shards
    plus sketch analysis products whose exemplars come from the laggards
    pass's bounded candidate pools.
    """

    @staticmethod
    def _sketch(dataset):
        shards = [
            TimingShard.from_dataset(
                dataset.select(trial=int(t), process=int(p)),
                trial=int(t),
                process=int(p),
            )
            for t in dataset.trials
            for p in dataset.processes
        ]
        context = AnalysisContext.from_dataset(dataset, exact=False)
        return run_analyses(shards, ["laggards"], context), shards

    def test_figure5_sketch_matches_exact_fraction(self, minife_dataset):
        results, shards = self._sketch(minife_dataset)
        sketch = figure5_minife_classes(results, shards=shards)
        exact = figure5_minife_classes(minife_dataset)
        assert sketch["laggard_fraction"] == exact["laggard_fraction"]
        for label in ("no_laggard", "laggard"):
            if sketch[f"{label}_exemplar"] is not None:
                assert sketch[f"{label}_histogram"] is not None
                assert sketch[f"{label}_histogram"].total > 0

    def test_figure7_sketch_from_candidate_pools(self, minimd_dataset):
        results, shards = self._sketch(minimd_dataset)
        fig = figure7_minimd_classes(results, shards=shards)
        assert fig["initial_histogram"] is not None
        assert 0.0 <= fig["steady_laggard_fraction"] <= 1.0
        assert fig["steady_laggard_fraction"] == results["laggards"].laggard_fraction

    def test_figure9_sketch_exemplar(self, miniqmc_dataset):
        results, shards = self._sketch(miniqmc_dataset)
        fig = figure9_miniqmc_histogram(results, shards=shards)
        assert fig["histogram"].total > 0
        assert fig["exemplar"] is not None
