"""Integration: the vectorised and event-driven execution paths agree.

The two backends share the application work models and the noise/clock
populations, so (a) with noise disabled they must agree essentially exactly,
and (b) with noise enabled they must agree in distribution.
"""

import numpy as np
import pytest

from repro.core.analyzer import ThreadTimingAnalyzer
from repro.experiments.campaign import run_campaign
from repro.experiments.config import CampaignConfig
from repro.stats.histogram import fixed_width_histogram, histogram_overlap


def _config(application, backend, noise, seed=77):
    config = CampaignConfig(
        application=application,
        trials=1,
        processes=2,
        iterations=15,
        threads=24,
        seed=seed,
        backend=backend,
    )
    if not noise:
        config.machine = config.machine.without_noise()
    return config


class TestBackendAgreement:
    @pytest.mark.parametrize("application", ["minife", "miniqmc"])
    def test_noise_free_backends_agree_closely(self, application):
        vector = run_campaign(_config(application, "vectorized", noise=False))
        event = run_campaign(_config(application, "event", noise=False))
        assert len(vector) == len(event)
        v = np.sort(vector.compute_times_s)
        e = np.sort(event.compute_times_s)
        # identical work models, no noise: distributions match tightly (the
        # event path additionally rounds through per-core clocks)
        np.testing.assert_allclose(np.median(v), np.median(e), rtol=1e-3)
        np.testing.assert_allclose(v.mean(), e.mean(), rtol=1e-3)

    def test_noisy_backends_agree_in_distribution(self):
        vector = run_campaign(_config("minimd", "vectorized", noise=True))
        event = run_campaign(_config("minimd", "event", noise=True))
        hist_v = fixed_width_histogram(vector.compute_times_s, 0.25e-3)
        hist_e = fixed_width_histogram(event.compute_times_s, 0.25e-3)
        assert histogram_overlap(hist_v, hist_e) > 0.7
        report_v = ThreadTimingAnalyzer(vector).report(include_earlybird=False)
        report_e = ThreadTimingAnalyzer(event).report(include_earlybird=False)
        assert report_v.mean_median_arrival_ms == pytest.approx(
            report_e.mean_median_arrival_ms, rel=0.02
        )

    def test_event_backend_records_raw_clock_readings(self):
        dataset = run_campaign(_config("minife", "event", noise=False))
        assert "start_ns" in dataset.columns
        starts = dataset.column("start_ns")
        ends = dataset.column("end_ns")
        assert np.all(ends >= starts)
        # raw readings are *not* aligned across threads (unsynchronised
        # clocks), which is exactly why the derived compute time is used
        assert starts.std() > 1e6
