"""End-to-end tests for the campaign service (async API + HTTP front end).

The acceptance bar for the service is bit-identity: a campaign submitted
through the async API (or over HTTP) must produce exactly the dataset that
``CampaignSession.run`` produces for the same config — coalesced, streamed
or not.  A gated backend (shards blocked on events the test releases)
makes the streaming/cancellation ordering deterministic.
"""

import asyncio
import json
import threading

import numpy as np
import pytest

from repro.core.timing import TimingDataset, TimingShard
from repro.experiments.backends import (
    CampaignBackend,
    ShardSpec,
    register_backend,
    unregister_backend,
)
from repro.experiments.config import CampaignConfig
from repro.experiments.session import CampaignSession
from repro.scenarios import get_scenario
from repro.service import (
    CampaignHTTPServer,
    CampaignService,
    JobCancelledError,
    JobState,
    dataset_digest,
    shard_digest,
)

GATED_BACKEND = "integration-test-gated"
SCENARIO = "manzano-default"


def _session_digest(config: CampaignConfig) -> str:
    """The reference digest: what CampaignSession.run produces."""
    return dataset_digest(CampaignSession(config).run().dataset)


class GatedBackend(CampaignBackend):
    """Backend whose shards block until the test releases them.

    ``gates[(trial, process)]`` must be set before the shard returns, so a
    test controls exactly when each shard becomes available (and therefore
    when the service streams or observes a cancel flag).
    """

    gates = {}

    @classmethod
    def reset(cls, config: CampaignConfig) -> None:
        cls.gates = {
            (t, p): threading.Event()
            for t in range(config.trials)
            for p in range(config.processes)
        }

    def shard_specs(self, config):
        return [
            ShardSpec(trial=t, process=p)
            for t in range(config.trials)
            for p in range(config.processes)
        ]

    def run_shard(self, config, spec, streams):
        if not type(self).gates[(spec.trial, spec.process)].wait(timeout=30):
            raise TimeoutError(f"gate for shard {spec} never released")
        n = config.iterations * config.threads
        iteration, thread = np.divmod(np.arange(n), config.threads)
        columns = {
            "trial": np.full(n, spec.trial),
            "process": np.full(n, spec.process),
            "iteration": iteration,
            "thread": thread,
            "compute_time_s": np.full(n, float(spec.process + 1) * 1.0e-3),
        }
        return TimingShard(trial=spec.trial, process=spec.process, columns=columns)


@pytest.fixture()
def gated_backend():
    register_backend(GATED_BACKEND)(GatedBackend)
    try:
        yield GatedBackend
    finally:
        unregister_backend(GATED_BACKEND)


def _gated_config() -> CampaignConfig:
    config = CampaignConfig.smoke(application="minife")
    config = config.scaled(trials=1, processes=3)
    config.backend = GATED_BACKEND
    return config


class TestAsyncAPI:
    def test_three_jobs_two_identical_bit_identical_to_session(self):
        """The ISSUE acceptance scenario: 3 jobs, 2 identical, one distinct.

        The duplicate coalesces onto the in-flight job; every digest equals
        the one ``CampaignSession.run`` computes for the same config.
        """
        scenario_config = get_scenario(SCENARIO).campaign_config("smoke")
        distinct_config = CampaignConfig.smoke(application="minimd")

        async def scenario():
            async with CampaignService(workers=2, executor_mode="thread") as service:
                first = await service.submit(SCENARIO, scale="smoke")
                second = await service.submit(SCENARIO, scale="smoke")
                third = await service.submit(distinct_config)
                assert not first.coalesced
                assert second.coalesced and second.job is first.job
                assert third.job is not first.job
                results = await asyncio.gather(
                    first.result(), second.result(), third.result()
                )
                assert results[0] is results[1]
                stats = service.stats()
                assert stats["submitted"] == 3
                assert stats["coalesce_hits"] == 1
                return first.digest, third.digest

        shared_digest, distinct_digest = asyncio.run(scenario())
        assert shared_digest == _session_digest(scenario_config)
        assert distinct_digest == _session_digest(distinct_config)

    def test_stream_yields_shards_before_job_finishes(self, gated_backend):
        config = _gated_config()
        gated_backend.reset(config)

        async def scenario():
            async with CampaignService(workers=1, executor_mode="thread") as service:
                handle = await service.submit(config)
                stream = handle.stream()
                gated_backend.gates[(0, 0)].set()
                first = await asyncio.wait_for(anext(stream), timeout=10)
                # the first shard arrived while the campaign is still running
                assert handle.state is JobState.STREAMING
                assert not handle.job.finished
                assert (first.trial, first.process) == (0, 0)
                for gate in gated_backend.gates.values():
                    gate.set()
                rest = [shard async for shard in stream]
                result = await handle.result()
                assert [s.process for s in [first, *rest]] == [0, 1, 2]
                merged = TimingDataset.merge([first, *rest])
                assert dataset_digest(merged) == handle.digest
                assert dataset_digest(result.dataset) == handle.digest

        asyncio.run(scenario())

    def test_cancel_between_shards_stops_running_job(self, gated_backend):
        config = _gated_config()
        gated_backend.reset(config)

        async def scenario():
            async with CampaignService(workers=1, executor_mode="thread") as service:
                handle = await service.submit(config)
                queue = handle.job.subscribe()
                gated_backend.gates[(0, 0)].set()
                shard = await asyncio.wait_for(queue.get(), timeout=10)
                assert shard.process == 0
                assert handle.cancel() is True
                # release the remaining gates: the worker thread produces the
                # next shard, then observes the flag at the shard boundary
                for gate in gated_backend.gates.values():
                    gate.set()
                await asyncio.wait_for(handle.job.wait(), timeout=10)
                assert handle.state is JobState.CANCELLED
                assert handle.progress.shards_done == 1
                with pytest.raises(JobCancelledError):
                    await handle.result()

        asyncio.run(scenario())

    def test_cache_dir_serves_repeat_submissions(self, tmp_path):
        config = get_scenario(SCENARIO).campaign_config("smoke")

        async def scenario():
            async with CampaignService(
                workers=1, executor_mode="thread", cache_dir=tmp_path
            ) as service:
                first = await service.submit(SCENARIO, scale="smoke")
                await first.result()
                assert not first.job.from_cache
                # sequential (not coalesced: first already finished) resubmit
                second = await service.submit(SCENARIO, scale="smoke")
                await second.result()
                assert second.job.from_cache
                assert second.digest == first.digest
                stats = service.stats()
                assert stats["cache_hits"] == 1
                assert stats["cache_misses"] == 1
                return first.digest

        digest = asyncio.run(scenario())
        assert digest == _session_digest(config)


async def _http_request(host, port, method, path, body=None):
    """Minimal HTTP/1.1 client: one request, read to EOF (Connection: close)."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode()
    writer.write(
        (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode()
        + payload
    )
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(-1), timeout=60)
    writer.close()
    await writer.wait_closed()
    head, _, body_blob = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return status, body_blob


class TestHTTPFrontEnd:
    def test_submit_stream_result_round_trip(self):
        config = get_scenario(SCENARIO).campaign_config("smoke")
        expected = _session_digest(config)

        async def scenario():
            service = CampaignService(workers=1, executor_mode="thread")
            async with CampaignHTTPServer(service, port=0) as server:
                host, port = server.host, server.port
                status, body = await _http_request(
                    host, port, "POST", "/jobs",
                    body={"scenario": SCENARIO, "scale": "smoke"},
                )
                assert status == 202
                submitted = json.loads(body)
                job_id = submitted["job_id"]
                assert submitted["coalesced"] is False

                status, body = await _http_request(
                    host, port, "GET", f"/jobs/{job_id}/stream"
                )
                assert status == 200
                events = [json.loads(line) for line in body.splitlines() if line]
                shard_events = [e for e in events if e["event"] == "shard"]
                done = events[-1]
                assert done["event"] == "done"
                assert done["state"] == "done"
                assert len(shard_events) == done["shards_total"]
                assert all(len(e["digest"]) == 64 for e in shard_events)

                status, body = await _http_request(
                    host, port, "GET", f"/jobs/{job_id}/result"
                )
                assert status == 200
                result = json.loads(body)
                assert result["state"] == "done"
                assert result["digest"] == expected

                status, body = await _http_request(host, port, "GET", "/stats")
                assert status == 200
                stats = json.loads(body)
                assert stats["submitted"] == 1
                assert stats["jobs"]["done"] == 1

                # the per-shard stream digests match the job's own shards
                job = service.get_job(job_id)
                assert [e["digest"] for e in shard_events] == [
                    shard_digest(s) for s in job.shards
                ]

                # finalized analysis products over HTTP: the payload is the
                # streaming engine's own JSON view of the same campaign
                status, body = await _http_request(
                    host, port, "GET", f"/jobs/{job_id}/analyses"
                )
                assert status == 200
                payload = json.loads(body)
                assert payload["job_id"] == job_id
                assert payload["digest"] == expected
                assert payload["analyses"] == expected_analyses
                # second fetch is served from the per-job memo, identically
                status, body = await _http_request(
                    host, port, "GET", f"/jobs/{job_id}/analyses"
                )
                assert status == 200
                assert json.loads(body) == payload

        expected_analyses = json.loads(
            json.dumps(CampaignSession(config).analyze(analyses="all").as_payload())
        )
        asyncio.run(scenario())

    def test_http_error_paths(self):
        async def scenario():
            service = CampaignService(workers=1, executor_mode="thread")
            async with CampaignHTTPServer(service, port=0) as server:
                host, port = server.host, server.port
                status, _ = await _http_request(host, port, "GET", "/jobs/nope")
                assert status == 404
                status, body = await _http_request(
                    host, port, "POST", "/jobs", body={"scale": "smoke"}
                )
                assert status == 400
                assert b"scenario" in body
                status, _ = await _http_request(host, port, "DELETE", "/jobs")
                assert status == 405
                status, _ = await _http_request(host, port, "GET", "/healthz")
                assert status == 200

        asyncio.run(scenario())

    def test_analyses_endpoint_conflicts_on_cancelled_job(self, gated_backend):
        """``GET /jobs/<id>/analyses`` on a non-``done`` terminal job is a
        409, not a 500: there is no dataset to analyse."""
        config = _gated_config()
        gated_backend.reset(config)

        async def scenario():
            service = CampaignService(workers=1, executor_mode="thread")
            async with CampaignHTTPServer(service, port=0) as server:
                handle = await service.submit(config)
                assert handle.cancel() is True
                for gate in gated_backend.gates.values():
                    gate.set()
                await asyncio.wait_for(handle.job.wait(), timeout=10)
                status, body = await _http_request(
                    server.host, server.port,
                    "GET", f"/jobs/{handle.job.id}/analyses",
                )
                assert status == 409
                error = json.loads(body)
                assert error["state"] == "cancelled"
                assert "analyses need a completed job" in error["error"]

        asyncio.run(scenario())
