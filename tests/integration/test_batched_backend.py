"""The batched whole-shard kernel end-to-end.

The batched backend draws its randomness population by population (one 2-D
draw per source) instead of iteration by iteration, so it is *not*
bit-identical to ``"vectorized"`` — it pins its own reference digests here.
Distributional agreement with the vectorized path is property-tested in
``tests/property/test_prop_batched.py``; this module pins exact behaviour:
same seed → same arrays, serial or parallel, at any worker count.
"""

import hashlib

import numpy as np
import pytest

from repro.core.instrument import RegionInstrumenter
from repro.experiments.backends import available_backends, get_backend
from repro.experiments.config import CampaignConfig
from repro.experiments.session import CampaignSession

# sha256 of the dense compute_times_s array of CampaignConfig.smoke(app)
# (seed 7, 1 trial x 2 processes x 12 iterations x 16 threads) on the
# batched backend, recorded when the backend was introduced.
BATCHED_SMOKE_DIGESTS = {
    "minife": "38e1df999ecd7cff5bb430b8c9a10682ac903a5a0fd3df2ab538e9fda716a791",
    "minimd": "f8124167d5444cb073b34ff4c38bf32d7a39c34f4e271a835854d44a5cda73f8",
    "miniqmc": "33073ad318b758ef6da903e4cfb7c457b5e512c7fe240164ea96da0fed1a3b47",
}

# Same smoke recipe under explicit work-queue schedule clauses, recorded when
# the row-vectorized work-queue kernel extended the batched backend to
# dynamic/guided.  MiniFE is the app where the clause matters (200 planes
# over the thread team); MiniMD/MiniQMC decompose into exactly one item per
# thread, so every clause degenerates to the same hand-out — pinned below as
# a schedule-*invariance* assertion against the default digests above.
BATCHED_SCHEDULE_SMOKE_DIGESTS = {
    ("minife", "dynamic"): "1b734155d7a19f78335501c0bc3292bd68e71bc6364b036dcb6dc4e6214b5ea7",
    ("minife", "dynamic,4"): "d030bf08d2c307de6d3a6d63eb9c9462607357eb5ec5981dfe8ab949edf2e8bc",
    ("minife", "guided"): "3345a49af93f581fa86c2c3ba5d5b5ca6120ac791178b7b12eca203694bb87d0",
}


def _digest(dataset) -> str:
    blob = np.ascontiguousarray(dataset.compute_times_s, dtype=np.float64).tobytes()
    return hashlib.sha256(blob).hexdigest()


def _smoke(application: str, **overrides) -> CampaignConfig:
    config = CampaignConfig.smoke(application).with_backend("batched")
    if overrides:
        import dataclasses

        config = dataclasses.replace(config, **overrides)
    return config


class TestRegistration:
    def test_batched_backend_is_registered(self):
        assert "batched" in available_backends()
        assert get_backend("batched").name == "batched"

    def test_metadata_carries_backend_label(self):
        meta = get_backend("batched").metadata(_smoke("minife"))
        assert meta["backend"] == "batched"


class TestPinnedDigests:
    @pytest.mark.parametrize("application", sorted(BATCHED_SMOKE_DIGESTS))
    def test_batched_campaign_matches_recorded_digest(self, application):
        dataset = CampaignSession(_smoke(application)).run().dataset
        assert _digest(dataset) == BATCHED_SMOKE_DIGESTS[application]

    @pytest.mark.parametrize(
        "application, schedule", sorted(BATCHED_SCHEDULE_SMOKE_DIGESTS)
    )
    def test_batched_workqueue_campaign_matches_recorded_digest(
        self, application, schedule
    ):
        config = _smoke(application, schedule=schedule)
        dataset = CampaignSession(config).run().dataset
        assert _digest(dataset) == BATCHED_SCHEDULE_SMOKE_DIGESTS[
            (application, schedule)
        ]

    @pytest.mark.parametrize("application", ["minimd", "miniqmc"])
    @pytest.mark.parametrize("schedule", ["dynamic", "guided"])
    def test_one_item_per_thread_apps_are_schedule_invariant(
        self, application, schedule
    ):
        # one loop item per thread: the work-queue hand-out is thread k gets
        # chunk k, identical to static, so the digest must not move
        dataset = CampaignSession(_smoke(application, schedule=schedule)).run().dataset
        assert _digest(dataset) == BATCHED_SMOKE_DIGESTS[application]

    @pytest.mark.parametrize("application", sorted(BATCHED_SMOKE_DIGESTS))
    def test_batched_shape_matches_vectorized(self, application):
        batched = CampaignSession(_smoke(application)).run().dataset
        vectorized = CampaignSession(CampaignConfig.smoke(application)).run().dataset
        assert batched.n_samples == vectorized.n_samples
        assert batched.is_dense()
        for column in ("trial", "process", "iteration", "thread"):
            assert np.array_equal(batched.column(column), vectorized.column(column))


class TestParallelBitIdentity:
    @pytest.mark.parametrize("max_workers", [2, 3])
    @pytest.mark.parametrize("mode", ["process", "thread"])
    def test_parallel_run_is_bit_identical_to_serial(self, max_workers, mode):
        serial = CampaignSession(_smoke("minife")).run().dataset
        parallel = CampaignSession(
            _smoke("minife", max_workers=max_workers), executor_mode=mode
        ).run().dataset
        assert np.array_equal(serial.compute_times_s, parallel.compute_times_s)

    def test_streamed_shards_match_merged_run(self):
        config = _smoke("minimd")
        session = CampaignSession(config)
        streamed = list(session.stream())
        merged = session.run(use_cache=False).dataset
        from repro.core.timing import TimingDataset

        assert np.array_equal(
            TimingDataset.merge(streamed).compute_times_s, merged.compute_times_s
        )


class TestRecordBlock:
    def test_record_block_matches_per_iteration_recording(self):
        rng = np.random.default_rng(5)
        times = np.abs(rng.normal(25e-3, 1e-3, size=(7, 5)))
        columnar = RegionInstrumenter(region="r", application="a")
        columnar.record_block(trial=2, process=3, compute_times_s=times)
        rowwise = RegionInstrumenter(region="r", application="a")
        for iteration, row in enumerate(times):
            rowwise.record_compute_times(
                trial=2, process=3, iteration=iteration, compute_times_s=row
            )
        a, b = columnar.dataset(), rowwise.dataset()
        assert a.columns == b.columns
        for name in a.columns:
            assert np.array_equal(a.column(name), b.column(name)), name

    def test_record_block_interleaves_with_row_records(self):
        instrumenter = RegionInstrumenter()
        instrumenter.record_compute_times(
            trial=0, process=0, iteration=0, compute_times_s=[1e-3, 2e-3]
        )
        instrumenter.record_block(
            trial=0,
            process=1,
            compute_times_s=np.full((2, 2), 3e-3),
            first_iteration=1,
        )
        dataset = instrumenter.dataset()
        assert instrumenter.n_records == 6
        assert dataset.column("process").tolist() == [0, 0, 1, 1, 1, 1]
        assert dataset.column("iteration").tolist() == [0, 0, 1, 1, 2, 2]

    def test_record_block_rejects_bad_input(self):
        instrumenter = RegionInstrumenter()
        with pytest.raises(ValueError):
            instrumenter.record_block(
                trial=0, process=0, compute_times_s=np.ones(4)
            )
        with pytest.raises(ValueError):
            instrumenter.record_block(
                trial=0, process=0, compute_times_s=-np.ones((2, 2))
            )

    def test_reset_discards_blocks(self):
        instrumenter = RegionInstrumenter()
        instrumenter.record_block(trial=0, process=0, compute_times_s=np.ones((2, 2)))
        instrumenter.reset()
        assert instrumenter.n_records == 0

    def test_recorded_values_are_decoupled_from_the_input_buffer(self):
        # callers may reuse a preallocated matrix across record_block calls
        buffer = np.full((2, 3), 1e-3)
        instrumenter = RegionInstrumenter()
        instrumenter.record_block(trial=0, process=0, compute_times_s=buffer)
        buffer[:] = 9.0
        instrumenter.record_block(
            trial=0, process=1, compute_times_s=buffer, first_iteration=0
        )
        recorded = instrumenter.dataset().column("compute_time_s")
        np.testing.assert_array_equal(recorded[:6], np.full(6, 1e-3))
        np.testing.assert_array_equal(recorded[6:], np.full(6, 9.0))
