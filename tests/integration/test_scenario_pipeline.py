"""Scenario subsystem end-to-end: bit-identity, CLI, matrix execution.

The digests below were recorded from the seed's hardwired two-source noise
model *before* ``OSNoiseModel`` was refactored onto the noise-source
registry.  They pin the acceptance criterion that the default scenario (and
every default-noise campaign) reproduces the reference datasets
bit-identically: same seed → same arrays, down to the last bit.
"""

import hashlib

import numpy as np
import pytest

from repro.experiments.config import CampaignConfig
from repro.experiments.runner import main as runner_main
from repro.experiments.session import CampaignSession
from repro.scenarios import ScenarioMatrix, available_scenarios, get_scenario

# sha256 of the dense compute_times_s array of CampaignConfig.smoke(app)
# (seed 7, 1 trial x 2 processes x 12 iterations x 16 threads).  minimd /
# miniqmc are unchanged since the pre-scenario-refactor
# recording; minife was re-recorded when ``StaticSchedule.simulate`` moved
# its per-thread busy-time summation to ``np.add.reduceat`` (sequential
# instead of pairwise accumulation shifts MiniFE's pencil-calibration median
# by one ULP — same physics, different last bit).
SEED_DIGESTS = {
    "minife": "bb2fcafc7160d7099ca5ef6dac0ecd53bff0aad663032aed63a90c0242740980",
    "minimd": "aad69e389dcdd05bee4e48e4e001a4e94e9a7b98124d3c24f49a2ce701cd1568",
    "miniqmc": "42d6abd256f408648188889ba1df2732b40a30ef1dbdbc4cb929170999478881",
}
# The event backend's digest was re-recorded when it adopted the
# WindowedNoiseModel: noise events are now drawn once per (core, trial)
# timeline window instead of once per delay query, so the draw order (and
# therefore the bits) changed — same populations, same distribution
# (tests/integration/test_paths_agree.py still checks distributional
# agreement with the vectorized path), and per-core noise is now a single
# consistent realisation instead of independent redraws per query window.
SEED_EVENT_DIGEST = "d9415bf79ddd3ecdc48bfaec62aacb9cefbca28fd0322557f1abf3127b615a33"


def _digest(dataset) -> str:
    blob = np.ascontiguousarray(dataset.compute_times_s, dtype=np.float64).tobytes()
    return hashlib.sha256(blob).hexdigest()


class TestBitIdentity:
    @pytest.mark.parametrize("application", sorted(SEED_DIGESTS))
    def test_default_campaign_matches_pre_refactor_digest(self, application):
        dataset = CampaignSession(CampaignConfig.smoke(application)).run().dataset
        assert _digest(dataset) == SEED_DIGESTS[application]

    def test_event_backend_matches_recorded_digest(self):
        config = CampaignConfig.smoke("minife").with_backend("event")
        dataset = CampaignSession(config).run().dataset
        assert _digest(dataset) == SEED_EVENT_DIGEST

    def test_default_scenario_matches_pre_refactor_digest(self):
        session = get_scenario("manzano-default").session(scale="smoke")
        assert _digest(session.run().dataset) == SEED_DIGESTS["minife"]


class TestScenarioExecution:
    def test_every_registered_scenario_smokes(self):
        for name in available_scenarios():
            config = get_scenario(name).campaign_config(
                "smoke", trials=1, processes=1, iterations=4, threads=8
            )
            dataset = CampaignSession(config).run().dataset
            times = dataset.compute_times_s
            assert np.all(np.isfinite(times)) and np.all(times >= 0.0), name
            assert dataset.metadata["scenario"] == name

    def test_matrix_feeds_sessions_and_keys_by_scenario(self, tmp_path):
        matrix = ScenarioMatrix(noises=(None, "none"))
        results = matrix.run(
            "smoke", cache_dir=tmp_path, iterations=4, threads=8, processes=1
        )
        assert set(results) == {"manzano-minife", "manzano-minife-none"}
        noisy = results["manzano-minife"].dataset
        quiet = results["manzano-minife-none"].dataset
        assert noisy.n_samples == quiet.n_samples
        # cache is keyed per config: a second run hits it
        rerun = matrix.run(
            "smoke", cache_dir=tmp_path, iterations=4, threads=8, processes=1
        )
        assert all(result.from_cache for result in rerun.values())

    def test_cache_hit_restamps_scenario_label(self, tmp_path):
        # two scenarios with identical physics share a cache entry (the key
        # excludes the label); the hit must carry the *requesting* scenario
        from repro.scenarios import Scenario

        first = get_scenario("manzano-default").session(
            scale="smoke", cache_dir=tmp_path
        )
        assert first.run().dataset.metadata["scenario"] == "manzano-default"
        twin = Scenario(name="manzano-twin")
        hit = twin.session(scale="smoke", cache_dir=tmp_path).run()
        assert hit.from_cache
        assert hit.dataset.metadata["scenario"] == "manzano-twin"
        # a plain (scenario-less) config drops the label entirely
        from dataclasses import replace

        unlabeled = replace(
            get_scenario("manzano-default").campaign_config("smoke"), scenario=None
        )
        plain = CampaignSession(unlabeled, cache_dir=tmp_path).run()
        assert plain.from_cache
        assert "scenario" not in plain.dataset.metadata

    def test_scenario_backend_pin_survives_cli_defaults(self):
        # manzano-dynamic-batched pins backend="batched"; the CLI must not
        # silently override it with its own default when --backend is absent
        from repro.experiments.runner import _configure, build_parser

        parser = build_parser()
        args = parser.parse_args(["--scenario", "manzano-dynamic-batched"])
        config = _configure(args, "minife")
        assert config.backend == "batched"
        assert config.schedule == "dynamic,4"
        # an explicit flag still wins over the scenario pin
        args = parser.parse_args(
            ["--scenario", "manzano-dynamic-batched", "--backend", "event"]
        )
        assert _configure(args, "minife").backend == "event"
        # scenario-less runs keep the vectorized default
        args = parser.parse_args(["--apps", "minife"])
        assert _configure(args, "minife").backend == "vectorized"

    def test_schedule_override_changes_the_data(self):
        base = get_scenario("manzano-default").campaign_config(
            "smoke", iterations=6, threads=8, processes=1
        )
        dynamic = get_scenario("manzano-dynamic").campaign_config(
            "smoke", iterations=6, threads=8, processes=1
        )
        a = CampaignSession(base).run().dataset.compute_times_s
        b = CampaignSession(dynamic).run().dataset.compute_times_s
        assert a.shape == b.shape
        assert not np.array_equal(a, b)


class TestCLI:
    def test_list_scenarios_porcelain(self, capsys):
        assert runner_main(["--list-scenarios", "--porcelain"]) == 0
        names = capsys.readouterr().out.split()
        assert list(names) == sorted(available_scenarios())

    def test_list_machines_and_sources(self, capsys):
        assert runner_main(["--list-machines", "--list-noise-sources"]) == 0
        out = capsys.readouterr().out
        assert "manzano" in out and "cloudvm" in out
        assert "pareto-interrupts" in out and "profiles:" in out

    def test_scenario_run_end_to_end(self, tmp_path, capsys):
        code = runner_main(
            [
                "--scenario",
                "manzano-quiet",
                "--scale",
                "smoke",
                "--iterations",
                "6",
                "--threads",
                "8",
                "--processes",
                "1",
                "--output",
                str(tmp_path),
                "--save-datasets",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[scenario manzano-quiet]" in out
        assert (tmp_path / "dataset_minife.npz").exists()
        assert (tmp_path / "report.txt").exists()

    @pytest.mark.parametrize(
        "conflict", [["--machine", "cloudvm"], ["--schedule", "dynamic"], ["--apps", "minimd"]]
    )
    def test_scenario_conflicting_flags_rejected(self, conflict, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner_main(["--scenario", "manzano-default", *conflict])
        assert excinfo.value.code == 2
        assert "conflicts with --scenario" in capsys.readouterr().err

    def test_cli_machine_and_schedule_overrides(self, tmp_path, capsys):
        code = runner_main(
            [
                "--apps",
                "minife",
                "--scale",
                "smoke",
                "--machine",
                "laptop",
                "--schedule",
                "dynamic",
                "--iterations",
                "4",
                "--threads",
                "8",
                "--processes",
                "1",
                "--output",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert "on laptop" in capsys.readouterr().out
