"""Integration: the simulated campaigns reproduce the paper's *shapes*.

These tests assert the qualitative claims of §4 (the ones EXPERIMENTS.md
tracks) on session-scale campaigns.  Absolute equality with the paper's
numbers is neither expected nor asserted — bands are deliberately generous so
the tests check mechanisms, not calibration luck.
"""

import numpy as np
import pytest

from repro.core.analyzer import ThreadTimingAnalyzer
from repro.experiments.campaign import quick_campaign
from repro.experiments.paper import SECTION4_METRICS, TABLE1_PASS_PERCENT


@pytest.fixture(scope="module")
def reports(request):
    datasets = request.getfixturevalue("all_datasets")
    return {
        name: ThreadTimingAnalyzer(ds).report(include_earlybird=False)
        for name, ds in datasets.items()
    }


@pytest.fixture(scope="module")
def miniqmc_multiprocess_dataset():
    """A MiniQMC campaign with enough distinct process populations for the
    coarse-level (application / application-iteration) normality claims.

    The paper's application-level rejection pools 80 process-trial walker
    populations; with only the two processes of the shared smoke fixture the
    between-process variance heterogeneity that drives the rejection is not
    yet resolvable, so this test uses a dozen populations.
    """
    return quick_campaign(
        "miniqmc", trials=2, processes=6, iterations=30, threads=48, seed=424242
    )


class TestMedianArrivals:
    @pytest.mark.parametrize("application", ["minife", "minimd", "miniqmc"])
    def test_mean_median_within_10_percent_of_paper(self, reports, application):
        measured = reports[application].mean_median_arrival_ms
        expected = SECTION4_METRICS[application]["mean_median_arrival_ms"]
        assert measured == pytest.approx(expected, rel=0.10)


class TestDistributionShape:
    def test_minife_is_left_skewed_with_tiny_iqr(self, reports):
        report = reports["minife"]
        assert report.skew_direction == "early"
        assert report.mean_iqr_ms < 0.5

    def test_miniqmc_has_the_widest_distribution(self, reports):
        assert reports["miniqmc"].mean_iqr_ms > 5 * reports["minife"].mean_iqr_ms
        assert reports["miniqmc"].mean_iqr_ms > 5 * reports["minimd"].mean_iqr_ms
        assert reports["miniqmc"].mean_iqr_ms == pytest.approx(
            SECTION4_METRICS["miniqmc"]["mean_iqr_ms"], rel=0.35
        )

    def test_minimd_two_phase_behaviour(self, all_datasets):
        series = ThreadTimingAnalyzer(all_datasets["minimd"]).percentile_series()
        warmup = series.iqr_summary(slice(0, 19))
        steady = series.iqr_summary(slice(19, None))
        assert warmup["mean"] > 3 * steady["mean"]


class TestLaggards:
    def test_minife_laggard_fraction_band(self, reports):
        assert 0.08 <= reports["minife"].laggard_fraction <= 0.40

    def test_minimd_steady_laggards_are_rare(self, all_datasets):
        analyzer = ThreadTimingAnalyzer(all_datasets["minimd"])
        laggards = analyzer.laggards()
        steady = [
            has
            for key, has in zip(laggards.keys, laggards.has_laggard)
            if key[-1] >= 19
        ]
        assert np.mean(steady) < 0.15

    def test_reclaimable_time_ordering(self, reports):
        assert (
            reports["miniqmc"].mean_reclaimable_ms
            > reports["minife"].mean_reclaimable_ms
        )
        assert (
            reports["miniqmc"].mean_reclaimable_ms
            > reports["minimd"].mean_reclaimable_ms
        )


class TestNormalityClasses:
    def test_application_level_rejected_for_minife_and_minimd(self, reports):
        assert reports["minife"].application_level_rejected
        assert reports["minimd"].application_level_rejected

    def test_application_level_rejected_for_miniqmc_with_many_processes(
        self, miniqmc_multiprocess_dataset
    ):
        study = ThreadTimingAnalyzer(miniqmc_multiprocess_dataset).normality()
        assert study.application_rejects_normality()
        # while the individual process-iterations remain overwhelmingly normal
        rates = study.process_iteration_pass_rates()
        assert min(rates.values()) > 0.85

    def test_table1_qualitative_classes(self, reports):
        """MiniFE ≈ never normal, MiniMD mostly normal, MiniQMC ~95 % normal."""
        minife = reports["minife"].process_iteration_pass_rates
        minimd = reports["minimd"].process_iteration_pass_rates
        miniqmc = reports["miniqmc"].process_iteration_pass_rates
        assert max(minife.values()) < 0.10
        assert min(minimd.values()) > 0.50
        assert min(miniqmc.values()) > 0.85

    def test_table1_ordering_matches_paper(self, reports):
        for test_name in ("dagostino", "shapiro_wilk", "anderson_darling"):
            measured = [
                reports[app].process_iteration_pass_rates[test_name]
                for app in ("minife", "minimd", "miniqmc")
            ]
            paper = [
                TABLE1_PASS_PERCENT[app][test_name] / 100.0
                for app in ("minife", "minimd", "miniqmc")
            ]
            assert np.argsort(measured).tolist() == np.argsort(paper).tolist()
