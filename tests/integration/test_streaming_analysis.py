"""Integration: the streaming analysis engine vs the in-memory analyzer.

The acceptance criterion of the analysis-layer refactor: every registered
pass, folded over campaign shards (serially, in parallel, in any order),
produces results identical to the legacy in-memory path.  The digests below
pin the full ``FeasibilityReport.as_dict()`` payload (canonical JSON,
sha256) of the seed smoke campaigns for all three applications — both the
``ThreadTimingAnalyzer`` facade and ``CampaignSession.analyze(analyses=...)``
must reproduce them bit-for-bit in exact mode.
"""

import hashlib
import json

import numpy as np
import pytest

from repro.analysis import AnalysisContext, run_analyses
from repro.core.analyzer import ThreadTimingAnalyzer
from repro.experiments.config import CampaignConfig
from repro.experiments.runner import main as runner_main
from repro.experiments.session import CampaignSession

# sha256 of json.dumps(report.as_dict(), sort_keys=True) for the smoke
# campaigns (seed 7, 1 trial x 2 processes x 12 iterations x 16 threads),
# recorded when the analysis layer moved onto the streaming engine
REPORT_DIGESTS = {
    "minife": "9c1124f4445eb4b380dc4a6bb479a2b7e02e185eab060eb51a227eca8cece3e3",
    "minimd": "28c4bc9cf1f7fe30d975175e3a035ca5d9508a434f63e427eca1c50c2fee331a",
    "miniqmc": "dcd2c2333de48ece5a4f3ebdecf3352a089bd51bebcdd6580c15656897675e39",
}


def _digest(report) -> str:
    blob = json.dumps(report.as_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TestPinnedReportDigests:
    @pytest.mark.parametrize("application", sorted(REPORT_DIGESTS))
    def test_in_memory_report_matches_pin(self, application):
        dataset = CampaignSession(CampaignConfig.smoke(application)).run().dataset
        report = ThreadTimingAnalyzer(dataset).report()
        assert _digest(report) == REPORT_DIGESTS[application]

    @pytest.mark.parametrize("application", sorted(REPORT_DIGESTS))
    def test_streaming_report_matches_pin(self, application):
        session = CampaignSession(CampaignConfig.smoke(application))
        results = session.analyze(analyses="all")
        assert _digest(results.report()) == REPORT_DIGESTS[application]


class TestStreamingEqualsInMemory:
    def test_streaming_never_merges_but_agrees_field_for_field(self):
        session = CampaignSession(CampaignConfig.smoke("minife"))
        streaming = session.analyze(analyses="all").report().as_dict()
        legacy = (
            ThreadTimingAnalyzer(session.run().dataset).report().as_dict()
        )
        assert streaming == legacy

    def test_parallel_workers_bit_identical_to_serial(self):
        serial = CampaignSession(CampaignConfig.smoke("minimd")).analyze(
            analyses="all"
        )
        parallel = CampaignSession(
            CampaignConfig.smoke("minimd").parallel(2)
        ).analyze(analyses="all")
        assert parallel.report().as_dict() == serial.report().as_dict()
        np.testing.assert_array_equal(
            parallel["percentiles"].values, serial["percentiles"].values
        )
        np.testing.assert_array_equal(
            parallel["histogram"].counts, serial["histogram"].counts
        )

    def test_event_backend_shards_agree_with_merged(self):
        config = CampaignConfig.smoke("minife").with_backend("event")
        session = CampaignSession(config)
        streaming = session.analyze(analyses="all").report().as_dict()
        legacy = ThreadTimingAnalyzer(session.run().dataset).report().as_dict()
        assert streaming == legacy

    def test_shard_order_invariance_of_merged_accumulators(self):
        session = CampaignSession(CampaignConfig.smoke("miniqmc"))
        shards = list(session.stream())
        context = AnalysisContext.from_config(
            session.config, metadata=session.backend_for().metadata(session.config)
        )
        forward = run_analyses(shards, "all", context)
        backward = run_analyses(list(reversed(shards)), "all", context)
        assert forward.report().as_dict() == backward.report().as_dict()
        np.testing.assert_array_equal(
            forward["percentiles"].values, backward["percentiles"].values
        )

    def test_sketch_mode_close_to_exact_with_bounded_memory(self):
        session = CampaignSession(CampaignConfig.smoke("minife"))
        exact = session.analyze(analyses="all").report().as_dict()
        sketched = session.analyze(analyses="all", exact=False).report().as_dict()
        # integer tallies stay exact in sketch mode
        assert sketched["laggard_fraction"] == exact["laggard_fraction"]
        assert sketched["application_level_rejected"] == exact[
            "application_level_rejected"
        ]
        # sketched percentile-derived fields agree within the documented
        # rank tolerance
        for key in ("mean_median_arrival_ms", "mean_iqr_ms", "mean_reclaimable_ms"):
            assert sketched[key] == pytest.approx(exact[key], rel=0.05)


class TestAnalysesCLI:
    def test_list_analyses_porcelain(self, capsys):
        from repro.analysis import available_analyses

        assert runner_main(["--list-analyses", "--porcelain"]) == 0
        assert capsys.readouterr().out.split() == list(available_analyses())

    def test_streaming_analyses_run_end_to_end(self, tmp_path, capsys):
        code = runner_main(
            [
                "--apps",
                "minife",
                "--scale",
                "smoke",
                "--analyses",
                "all",
                "--output",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streaming passes" in out
        payload = json.loads((tmp_path / "analyses_minife.json").read_text())
        assert set(payload) == {
            "earlybird",
            "histogram",
            "laggards",
            "normality",
            "percentiles",
            "reclaimable",
        }
        assert (tmp_path / "report.txt").exists()

    def test_subset_of_analyses(self, tmp_path, capsys):
        code = runner_main(
            [
                "--apps",
                "minimd",
                "--scale",
                "smoke",
                "--analyses",
                "histogram",
                "laggards",
                "--output",
                str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "analyses_minimd.json").read_text())
        assert set(payload) == {"histogram", "laggards"}
        # no report without the full report-pass set
        assert not (tmp_path / "report.txt").exists()

    def test_save_datasets_conflicts_with_analyses(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner_main(
                [
                    "--apps",
                    "minife",
                    "--scale",
                    "smoke",
                    "--analyses",
                    "all",
                    "--save-datasets",
                    "--output",
                    str(tmp_path),
                ]
            )
        assert excinfo.value.code == 2
        assert "conflicts with --analyses" in capsys.readouterr().err

    def test_unknown_analysis_fails_cleanly(self, tmp_path):
        with pytest.raises(ValueError, match="unknown analysis"):
            runner_main(
                [
                    "--apps",
                    "minife",
                    "--scale",
                    "smoke",
                    "--analyses",
                    "bogus",
                    "--output",
                    str(tmp_path),
                ]
            )
