"""Integration: every example script runs end to end (at reduced scale)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "feasibility report" in result.stdout
        assert "best strategy" in result.stdout

    def test_minife_feasibility(self):
        result = _run(
            "minife_feasibility.py",
            "--trials", "1", "--processes", "1", "--iterations", "40",
        )
        assert result.returncode == 0, result.stderr
        assert "Figure 4 analogue" in result.stdout
        assert "Figure 5 analogue" in result.stdout
        assert "recommendation" in result.stdout

    def test_minimd_two_phase(self):
        result = _run(
            "minimd_two_phase.py",
            "--trials", "1", "--processes", "1", "--iterations", "60",
        )
        assert result.returncode == 0, result.stderr
        assert "two-phase IQR comparison" in result.stdout
        assert "OS-noise ablation" in result.stdout

    def test_miniqmc_overlap(self):
        result = _run(
            "miniqmc_overlap.py",
            "--trials", "1", "--processes", "1", "--iterations", "40",
        )
        assert result.returncode == 0, result.stderr
        assert "Figure 9 analogue" in result.stdout
        assert "hidden fraction" in result.stdout

    def test_partitioned_communication_demo(self):
        result = _run("partitioned_communication_demo.py")
        assert result.returncode == 0, result.stderr
        assert "all partitions arrived" in result.stdout
        assert "bulk (BSP) message fully delivered" in result.stdout

    def test_paper_reproduction_smoke(self, tmp_path):
        result = _run(
            "paper_reproduction.py",
            "--scale", "smoke", "--apps", "minife",
            "--iterations", "10", "--threads", "16",
            "--output", str(tmp_path),
        )
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "table1.csv").exists()
        assert (tmp_path / "report.txt").exists()
