"""Parallel sharded execution must be bit-identical to serial execution."""

import dataclasses

import numpy as np
import pytest

from repro.experiments.backends import get_backend
from repro.experiments.config import CampaignConfig
from repro.experiments.executor import ShardExecutor
from repro.experiments.session import CampaignSession


def _assert_bit_identical(a, b):
    assert set(a.columns) == set(b.columns)
    for name in sorted(a.columns):
        np.testing.assert_array_equal(
            a.column(name), b.column(name), err_msg=f"column {name!r} differs"
        )


class TestParallelBitIdentical:
    def test_vectorized_parallel_matches_serial(self):
        """The ISSUE acceptance check: smoke minife, 4 process workers."""
        serial = CampaignSession(CampaignConfig.smoke()).run("minife").dataset
        parallel_config = CampaignConfig.smoke().parallel(4)
        parallel = CampaignSession(parallel_config).run("minife").dataset
        _assert_bit_identical(serial, parallel)

    def test_thread_pool_matches_serial(self):
        serial = CampaignSession(CampaignConfig.smoke()).run().dataset
        parallel = CampaignSession(
            CampaignConfig.smoke().parallel(4), executor_mode="thread"
        ).run().dataset
        _assert_bit_identical(serial, parallel)

    @pytest.mark.parametrize("application", ["minimd", "miniqmc"])
    def test_other_applications_parallel_match_serial(self, application):
        config = CampaignConfig.smoke(application=application)
        serial = CampaignSession(config).run().dataset
        parallel = CampaignSession(config.parallel(2)).run().dataset
        _assert_bit_identical(serial, parallel)

    def test_event_backend_parallel_matches_serial(self):
        config = dataclasses.replace(
            CampaignConfig.smoke().with_backend("event"),
            trials=2,
            processes=2,
            iterations=4,
            threads=8,
        )
        serial = CampaignSession(config).run().dataset
        parallel = CampaignSession(config.parallel(2)).run().dataset
        _assert_bit_identical(serial, parallel)

    def test_chunked_parallel_stream_matches_serial_stream(self):
        config = CampaignConfig.smoke().with_backend("chunked")
        serial_shards = list(CampaignSession(config).stream())
        parallel_shards = list(CampaignSession(config.parallel(4)).stream())
        assert [s.sort_key for s in serial_shards] == [
            s.sort_key for s in parallel_shards
        ]
        for a, b in zip(serial_shards, parallel_shards):
            for name in a.columns:
                np.testing.assert_array_equal(
                    np.asarray(a.columns[name]), np.asarray(b.columns[name])
                )


class TestShardExecutor:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ShardExecutor(0)
        with pytest.raises(ValueError):
            ShardExecutor(2, mode="fiber")

    def test_worker_count_capped_by_shard_count(self):
        config = CampaignConfig.smoke()  # 1 trial x 2 processes = 2 shards
        executor = ShardExecutor(16)
        backend = get_backend(config.backend)
        assert executor._resolve_workers(config, len(backend.shard_specs(config))) == 2

    def test_executor_defers_to_config_max_workers(self):
        config = CampaignConfig.smoke().parallel(3).scaled(trials=2, processes=2)
        assert ShardExecutor()._resolve_workers(config, 4) == 3

    def test_run_merged_matches_backend_run(self):
        config = CampaignConfig.smoke()
        backend = get_backend(config.backend)
        merged = ShardExecutor(2).run_merged(backend, config)
        _assert_bit_identical(merged, backend.run(config))
        assert merged.metadata == backend.run(config).metadata
