"""The whole-campaign tensor backend end-to-end.

The campaign backend samples *all* (trial, process) shards as
``(n_shards, n_iterations, n_threads)`` tensors — one schedule fold, one
draw per noise source, one columnar assembly per shard chunk.  Its
randomness is ordered shard-major across the whole campaign, so it is not
bit-identical to ``"vectorized"`` or ``"batched"``; it pins its own
reference digests here (distributional agreement with the vectorized path
is property-tested in ``tests/property/test_prop_campaign.py``).  What this
module pins exactly:

* same seed → same arrays, for every ``chunk_shards`` value (the
  purpose-split draw streams make chunked consumption a contiguous
  continuation, so chunking can never move a digest);
* grouped execution (``run_many``, the scenario-matrix sharing path, the
  service's job grouping) → bit-identical to solo runs;
* chunk-parallel execution (``max_workers > 1`` folds whole shard chunks
  on a worker pool, returning columns through shared memory) → bit-identical
  to serial for every worker count × chunk size, solo and grouped, in
  memory and spilled to a :class:`~repro.io.shard_store.ShardStore`;
* a worker that dies mid-fold surfaces as a clear ``RuntimeError`` (never a
  hang) and leaks no shared-memory segments.
"""

import hashlib
import multiprocessing
import os

import numpy as np
import pytest

from repro.core.instrument import RegionInstrumenter
from repro.experiments.backends import (
    CampaignTensorBackend,
    available_backends,
    campaign_group_key,
    get_backend,
)
from repro.experiments.config import CampaignConfig
from repro.experiments.executor import ShardExecutor
from repro.experiments.session import CampaignSession
from repro.scenarios import get_scenario
from repro.scenarios.scenario import ScenarioMatrix

# sha256 of the dense compute_times_s array of CampaignConfig.smoke(app)
# (seed 7, 1 trial x 2 processes x 12 iterations x 16 threads) on the
# campaign backend.  Re-recorded ONCE when draw streams moved from
# contiguous continuation to absolute shard keying (the change that makes
# chunk-parallel execution bit-identical at any worker count): every
# shard-varying draw now sits under its ("shard", trial, process) scope,
# which restructured the whole-tensor jitter/noise/straggler draws into
# per-shard draws.  Serial == parallel == any chunk_shards from here on, so
# these digests are stable against any future chunking/worker change.
CAMPAIGN_SMOKE_DIGESTS = {
    "minife": "e00daed36dd885b6da7460460091db6425d155af7791046d27c19d1e14e584f2",
    "minimd": "6600a86f66463499c72829eb7b89ebdea5942f73199c651fe8a9c39c08de7cfb",
    "miniqmc": "51581b1ada86e420bc79754122affab8dbcb824980e8040807abd701e3724491",
}

# Same smoke recipe under explicit work-queue schedule clauses (MiniFE is
# the app whose 200-pencil loop makes the clause matter); re-recorded with
# the shard-keyed streams above.  The "dynamic,4" entry doubles as the
# digest of the ``manzano-campaign-batched`` scenario at smoke scale.
CAMPAIGN_SCHEDULE_SMOKE_DIGESTS = {
    ("minife", "dynamic"): "72af0d3efc013179108eb566e8d875bfbc1d124e0dcb2bc673fe896fa1733ff0",
    ("minife", "dynamic,4"): "2af151e1a05561807064884cd19332f17de63b4c733fbed90525856cd231d552",
    ("minife", "guided"): "6247d45687080ced6825e53e91189a0131d685e602bfae911a6b83dfbede864b",
}

APPLICATIONS = sorted(CAMPAIGN_SMOKE_DIGESTS)


def _digest(dataset) -> str:
    blob = np.ascontiguousarray(dataset.compute_times_s, dtype=np.float64).tobytes()
    return hashlib.sha256(blob).hexdigest()


def _smoke(application: str, **overrides) -> CampaignConfig:
    config = CampaignConfig.smoke(application).with_backend("campaign")
    if overrides:
        import dataclasses

        config = dataclasses.replace(config, **overrides)
    return config


class TestRegistration:
    def test_campaign_backend_is_registered(self):
        assert "campaign" in available_backends()
        backend = get_backend("campaign")
        assert backend.name == "campaign"
        assert backend.parallelizable is False
        assert backend.chunk_parallel is True
        assert backend.chunk_shards == CampaignTensorBackend.DEFAULT_CHUNK_SHARDS

    def test_metadata_carries_backend_label(self):
        meta = get_backend("campaign").metadata(_smoke("minife"))
        assert meta["backend"] == "campaign"

    def test_chunk_shards_must_be_positive(self):
        with pytest.raises(ValueError):
            CampaignTensorBackend(chunk_shards=0)

    def test_run_shard_is_not_a_unit_of_work(self):
        backend = get_backend("campaign")
        config = _smoke("minife")
        spec = backend.shard_specs(config)[0]
        with pytest.raises(NotImplementedError):
            backend.run_shard(config, spec, None)


class TestPinnedDigests:
    @pytest.mark.parametrize("application", APPLICATIONS)
    def test_campaign_matches_recorded_digest(self, application):
        dataset = CampaignSession(_smoke(application)).run().dataset
        assert _digest(dataset) == CAMPAIGN_SMOKE_DIGESTS[application]

    @pytest.mark.parametrize(
        "application, schedule", sorted(CAMPAIGN_SCHEDULE_SMOKE_DIGESTS)
    )
    def test_campaign_workqueue_matches_recorded_digest(self, application, schedule):
        config = _smoke(application, schedule=schedule)
        dataset = CampaignSession(config).run().dataset
        assert _digest(dataset) == CAMPAIGN_SCHEDULE_SMOKE_DIGESTS[
            (application, schedule)
        ]

    @pytest.mark.parametrize("application", APPLICATIONS)
    def test_campaign_shape_matches_vectorized(self, application):
        campaign = CampaignSession(_smoke(application)).run().dataset
        vectorized = CampaignSession(CampaignConfig.smoke(application)).run().dataset
        assert campaign.n_samples == vectorized.n_samples
        assert campaign.is_dense()
        for column in ("trial", "process", "iteration", "thread"):
            assert np.array_equal(campaign.column(column), vectorized.column(column))

    def test_scenario_pins_the_campaign_backend(self):
        scenario = get_scenario("manzano-campaign-batched")
        assert scenario.backend == "campaign"
        assert scenario.schedule == "dynamic,4"
        dataset = scenario.session(scale="smoke").run().dataset
        assert _digest(dataset) == CAMPAIGN_SCHEDULE_SMOKE_DIGESTS[
            ("minife", "dynamic,4")
        ]


class TestChunkInvariance:
    @pytest.mark.parametrize("application", APPLICATIONS)
    @pytest.mark.parametrize("chunk_shards", [1, 2, 3, 8])
    def test_chunked_run_is_bit_identical(self, application, chunk_shards):
        config = _smoke(application)
        whole = get_backend("campaign").run(config)
        chunked = CampaignTensorBackend(chunk_shards=chunk_shards).run(config)
        for name in whole.columns:
            assert np.array_equal(whole.column(name), chunked.column(name)), name

    @pytest.mark.parametrize("chunk_shards", [1, 3])
    def test_chunked_workqueue_run_is_bit_identical(self, chunk_shards):
        config = _smoke("minife", schedule="dynamic,4")
        whole = get_backend("campaign").run(config)
        chunked = CampaignTensorBackend(chunk_shards=chunk_shards).run(config)
        assert np.array_equal(whole.compute_times_s, chunked.compute_times_s)

    def test_fast_run_matches_streamed_shards(self):
        # run() assembles all chunks columnar-ly; iter_shards slices them
        # into per-(trial, process) shards — same rows either way
        from repro.core.timing import TimingDataset

        config = _smoke("miniqmc")
        backend = get_backend("campaign")
        fast = backend.run(config)
        merged = TimingDataset.merge(
            backend.iter_shards(config), metadata=backend.metadata(config)
        )
        for name in fast.columns:
            assert np.array_equal(fast.column(name), merged.column(name)), name
        assert fast.metadata == merged.metadata


_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - tmpfs-less platforms
        return set()


class TestParallelExecution:
    @pytest.mark.parametrize("mode", ["thread", "process"])
    @pytest.mark.parametrize("max_workers", [2, 4])
    def test_executor_chunk_parallel_is_bit_identical(self, max_workers, mode):
        # parallelizable=False but chunk_parallel=True: the executor must
        # not fan individual shards across a pool (each worker would re-run
        # the whole tensor pass) — instead the backend folds whole shard
        # chunks on its own pool, bit-identically to the serial run
        serial = CampaignSession(_smoke("minife", trials=3)).run().dataset
        parallel = CampaignSession(
            _smoke("minife", trials=3, max_workers=max_workers),
            executor_mode=mode,
        ).run(use_cache=False).dataset
        assert np.array_equal(serial.compute_times_s, parallel.compute_times_s)

    def test_executor_routes_through_the_chunk_parallel_path(self, monkeypatch):
        calls = {"parallel": 0}
        original = CampaignTensorBackend.iter_shards_parallel

        def counting(self, config, **kwargs):
            calls["parallel"] += 1
            return original(self, config, **kwargs)

        monkeypatch.setattr(
            CampaignTensorBackend, "iter_shards_parallel", counting
        )
        shards = list(ShardExecutor(max_workers=4, mode="thread").iter_shards(
            get_backend("campaign"), _smoke("minife", trials=3, max_workers=4)
        ))
        assert calls["parallel"] == 1
        assert len(shards) == 6

    def test_executor_streams_per_process_shards(self):
        config = _smoke("minimd", max_workers=4)
        shards = list(ShardExecutor(mode="thread").iter_shards(
            get_backend("campaign"), config
        ))
        assert [(s.trial, s.process) for s in shards] == [(0, 0), (0, 1)]


class TestParallelBitIdentity:
    """The acceptance matrix: workers x chunk_shards, solo and grouped,
    in memory and spilled to a store — every cell bit-identical to the
    plain serial run."""

    @pytest.mark.parametrize("chunk_shards", [1, 3, 8])
    @pytest.mark.parametrize("max_workers", [1, 2, 4])
    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_solo_run_matrix(self, max_workers, chunk_shards, mode):
        if mode == "process" and not _HAS_FORK:
            pytest.skip("needs the fork start method")
        serial = get_backend("campaign").run(_smoke("minife", trials=3))
        backend = CampaignTensorBackend(chunk_shards=chunk_shards)
        parallel = backend.run(
            _smoke("minife", trials=3, max_workers=max_workers), mode=mode
        )
        for name in serial.columns:
            assert np.array_equal(serial.column(name), parallel.column(name)), name

    @pytest.mark.skipif(not _HAS_FORK, reason="needs the fork start method")
    @pytest.mark.parametrize("chunk_shards", [1, 3, 8])
    @pytest.mark.parametrize("max_workers", [1, 2, 4])
    def test_store_spill_matrix(self, tmp_path, max_workers, chunk_shards):
        # process workers spill their chunks straight into the store's
        # on-disk group format; the live stream and the finalized store
        # must both match the serial run
        from repro.core.timing import TimingDataset
        from repro.io.shard_store import ShardStore

        serial = get_backend("campaign").run(_smoke("minife", trials=3))
        backend = CampaignTensorBackend(chunk_shards=chunk_shards)
        store = ShardStore(tmp_path / "store", mode="w", spill_threshold_bytes=1)
        live = TimingDataset.merge(backend.iter_shards_parallel(
            _smoke("minife", trials=3, max_workers=max_workers),
            workers=max_workers,
            mode="process",
            store=store,
        ))
        assert np.array_equal(serial.compute_times_s, live.compute_times_s)
        store.finalize()
        reread = TimingDataset.merge(
            ShardStore(tmp_path / "store", mode="r").iter_shards()
        )
        assert np.array_equal(serial.compute_times_s, reread.compute_times_s)

    @pytest.mark.skipif(not _HAS_FORK, reason="needs the fork start method")
    @pytest.mark.parametrize("chunk_shards", [1, 3, 8])
    @pytest.mark.parametrize("max_workers", [1, 2, 4])
    def test_grouped_run_many_matrix(self, max_workers, chunk_shards):
        backend = CampaignTensorBackend(chunk_shards=chunk_shards)
        grouped = backend.run_many(
            [
                _smoke("minife", trials=2, max_workers=max_workers),
                _smoke("minife", trials=2, seed=99, max_workers=max_workers),
            ],
            mode="process",
        )
        solos = [
            get_backend("campaign").run(_smoke("minife", trials=2)),
            get_backend("campaign").run(_smoke("minife", trials=2, seed=99)),
        ]
        for dataset, solo in zip(grouped, solos):
            for name in solo.columns:
                assert np.array_equal(dataset.column(name), solo.column(name)), name


@pytest.mark.skipif(not _HAS_FORK, reason="needs the fork start method")
class TestWorkerCrash:
    def test_dead_worker_raises_and_leaks_no_shared_memory(self, monkeypatch):
        # a worker killed mid-fold must surface as a RuntimeError (not a
        # hang) and leave /dev/shm untouched — segments are only created
        # after a fold succeeds
        import repro.experiments.backends as backends_module

        def die_mid_fold(config, chunk):
            os._exit(1)

        monkeypatch.setattr(
            backends_module, "_campaign_chunk_columns", die_mid_fold
        )
        before = _shm_entries()
        with pytest.raises(RuntimeError, match="worker died"):
            get_backend("campaign").run(
                _smoke("minife", trials=3, max_workers=2), mode="process"
            )
        assert _shm_entries() - before == set()


class TestGroupedExecution:
    def test_group_key_ignores_seed_and_machine(self):
        a = _smoke("minife")
        b = _smoke("minife", seed=99)
        assert campaign_group_key(a) == campaign_group_key(b)
        assert campaign_group_key(a) != campaign_group_key(_smoke("minimd"))
        assert campaign_group_key(a) != campaign_group_key(
            _smoke("minife", schedule="dynamic,4")
        )

    def test_run_many_is_bit_identical_to_solo_runs(self):
        backend = get_backend("campaign")
        configs = [
            _smoke("minife"),
            _smoke("minife", seed=99),
            _smoke("minife", schedule="dynamic,4"),
            _smoke("miniqmc"),
        ]
        grouped = backend.run_many(configs)
        for config, dataset in zip(configs, grouped):
            solo = backend.run(config)
            for name in solo.columns:
                assert np.array_equal(dataset.column(name), solo.column(name)), name

    def test_scenario_matrix_shares_one_tensor_pass(self, monkeypatch):
        # two compatible campaign-backend entries must reach the backend as
        # ONE run_many call (sharing the fold), not one run() per session
        calls = {"run_many": 0, "run": 0}
        original_run_many = CampaignTensorBackend.run_many
        original_run = CampaignTensorBackend.run

        def counting_run_many(self, configs, **kwargs):
            calls["run_many"] += 1
            return original_run_many(self, configs, **kwargs)

        def counting_run(self, config, streams=None, **kwargs):
            calls["run"] += 1
            return original_run(self, config, streams, **kwargs)

        monkeypatch.setattr(CampaignTensorBackend, "run_many", counting_run_many)
        monkeypatch.setattr(CampaignTensorBackend, "run", counting_run)
        matrix = ScenarioMatrix(applications=("minife",), noises=(None, "heavy-tail"))
        results = matrix.run(scale="smoke", backend="campaign")
        assert calls["run_many"] == 1
        assert calls["run"] == 0  # both entries shared the grouped pass
        for scenario in matrix:
            solo = scenario.session(scale="smoke", backend="campaign").run()
            assert np.array_equal(
                results[scenario.name].dataset.compute_times_s,
                solo.dataset.compute_times_s,
            )

    def test_scenario_matrix_grouped_results_hit_the_cache(self, tmp_path):
        matrix = ScenarioMatrix(applications=("minife",), noises=(None, "none"))
        first = matrix.run(scale="smoke", backend="campaign", cache_dir=tmp_path)
        assert not any(result.from_cache for result in first.values())
        second = matrix.run(scale="smoke", backend="campaign", cache_dir=tmp_path)
        assert all(result.from_cache for result in second.values())
        for name in first:
            assert np.array_equal(
                first[name].dataset.compute_times_s,
                second[name].dataset.compute_times_s,
            )


class TestRecordCampaign:
    def test_record_campaign_matches_per_shard_record_block(self):
        rng = np.random.default_rng(5)
        times = np.abs(rng.normal(25e-3, 1e-3, size=(3, 7, 5)))
        shards = [(0, 0), (0, 1), (1, 0)]
        tensor = RegionInstrumenter(region="r", application="a")
        tensor.record_campaign(shards=shards, compute_times_s=times)
        blockwise = RegionInstrumenter(region="r", application="a")
        for (trial, process), plane in zip(shards, times):
            blockwise.record_block(
                trial=trial, process=process, compute_times_s=plane
            )
        a, b = tensor.dataset(), blockwise.dataset()
        assert a.columns == b.columns
        for name in a.columns:
            assert np.array_equal(a.column(name), b.column(name)), name

    def test_record_campaign_rejects_bad_input(self):
        instrumenter = RegionInstrumenter()
        with pytest.raises(ValueError):
            instrumenter.record_campaign(
                shards=[(0, 0)], compute_times_s=np.ones((2, 2))
            )
        with pytest.raises(ValueError):
            instrumenter.record_campaign(
                shards=[(0, 0)], compute_times_s=np.ones((2, 2, 2))
            )
        with pytest.raises(ValueError):
            instrumenter.record_campaign(
                shards=[(0, 0)], compute_times_s=-np.ones((1, 2, 2))
            )

    def test_recorded_values_are_decoupled_from_the_input_buffer(self):
        buffer = np.full((1, 2, 3), 1e-3)
        instrumenter = RegionInstrumenter()
        instrumenter.record_campaign(shards=[(0, 0)], compute_times_s=buffer)
        buffer[:] = 9.0
        recorded = instrumenter.dataset().column("compute_time_s")
        np.testing.assert_array_equal(recorded, np.full(6, 1e-3))
