"""The whole-campaign tensor backend end-to-end.

The campaign backend samples *all* (trial, process) shards as
``(n_shards, n_iterations, n_threads)`` tensors — one schedule fold, one
draw per noise source, one columnar assembly per shard chunk.  Its
randomness is ordered shard-major across the whole campaign, so it is not
bit-identical to ``"vectorized"`` or ``"batched"``; it pins its own
reference digests here (distributional agreement with the vectorized path
is property-tested in ``tests/property/test_prop_campaign.py``).  What this
module pins exactly:

* same seed → same arrays, for every ``chunk_shards`` value (the
  purpose-split draw streams make chunked consumption a contiguous
  continuation, so chunking can never move a digest);
* grouped execution (``run_many``, the scenario-matrix sharing path, the
  service's job grouping) → bit-identical to solo runs;
* the executor runs the backend serially regardless of ``max_workers``
  (``parallelizable = False``).
"""

import hashlib

import numpy as np
import pytest

from repro.core.instrument import RegionInstrumenter
from repro.experiments.backends import (
    CampaignTensorBackend,
    available_backends,
    campaign_group_key,
    get_backend,
)
from repro.experiments.config import CampaignConfig
from repro.experiments.executor import ShardExecutor
from repro.experiments.session import CampaignSession
from repro.scenarios import get_scenario
from repro.scenarios.scenario import ScenarioMatrix

# sha256 of the dense compute_times_s array of CampaignConfig.smoke(app)
# (seed 7, 1 trial x 2 processes x 12 iterations x 16 threads) on the
# campaign backend, recorded when the backend was introduced.
CAMPAIGN_SMOKE_DIGESTS = {
    "minife": "6723f4350105746d1037c687cc736131a250f7e574a846403a3086864d226e9f",
    "minimd": "e9cf067470669c54b0099ce8c0aa487a90a06eab6dcfc86446ee4415744c2cdb",
    "miniqmc": "9309f7e3d4b8470a568168aee2a07780736727da5ba787afe4e080d9db6ada22",
}

# Same smoke recipe under explicit work-queue schedule clauses (MiniFE is
# the app whose 200-pencil loop makes the clause matter), recorded when the
# backend was introduced.  The "dynamic,4" entry doubles as the digest of
# the ``manzano-campaign-batched`` scenario at smoke scale.
CAMPAIGN_SCHEDULE_SMOKE_DIGESTS = {
    ("minife", "dynamic"): "9594dc8d9f45a6cc7666ae1d869442fd756a0f7a3894ff449ab5c7f39082eb73",
    ("minife", "dynamic,4"): "75609f3ef9a227b5b3b2166b234cb1fac52eb22ad4d13f3e3e3f109a92105b71",
    ("minife", "guided"): "6dfd35d0edd71c3246e2808b35dfc8517d921b3faeee39ca437cc313761ce443",
}

APPLICATIONS = sorted(CAMPAIGN_SMOKE_DIGESTS)


def _digest(dataset) -> str:
    blob = np.ascontiguousarray(dataset.compute_times_s, dtype=np.float64).tobytes()
    return hashlib.sha256(blob).hexdigest()


def _smoke(application: str, **overrides) -> CampaignConfig:
    config = CampaignConfig.smoke(application).with_backend("campaign")
    if overrides:
        import dataclasses

        config = dataclasses.replace(config, **overrides)
    return config


class TestRegistration:
    def test_campaign_backend_is_registered(self):
        assert "campaign" in available_backends()
        backend = get_backend("campaign")
        assert backend.name == "campaign"
        assert backend.parallelizable is False
        assert backend.chunk_shards == CampaignTensorBackend.DEFAULT_CHUNK_SHARDS

    def test_metadata_carries_backend_label(self):
        meta = get_backend("campaign").metadata(_smoke("minife"))
        assert meta["backend"] == "campaign"

    def test_chunk_shards_must_be_positive(self):
        with pytest.raises(ValueError):
            CampaignTensorBackend(chunk_shards=0)

    def test_run_shard_is_not_a_unit_of_work(self):
        backend = get_backend("campaign")
        config = _smoke("minife")
        spec = backend.shard_specs(config)[0]
        with pytest.raises(NotImplementedError):
            backend.run_shard(config, spec, None)


class TestPinnedDigests:
    @pytest.mark.parametrize("application", APPLICATIONS)
    def test_campaign_matches_recorded_digest(self, application):
        dataset = CampaignSession(_smoke(application)).run().dataset
        assert _digest(dataset) == CAMPAIGN_SMOKE_DIGESTS[application]

    @pytest.mark.parametrize(
        "application, schedule", sorted(CAMPAIGN_SCHEDULE_SMOKE_DIGESTS)
    )
    def test_campaign_workqueue_matches_recorded_digest(self, application, schedule):
        config = _smoke(application, schedule=schedule)
        dataset = CampaignSession(config).run().dataset
        assert _digest(dataset) == CAMPAIGN_SCHEDULE_SMOKE_DIGESTS[
            (application, schedule)
        ]

    @pytest.mark.parametrize("application", APPLICATIONS)
    def test_campaign_shape_matches_vectorized(self, application):
        campaign = CampaignSession(_smoke(application)).run().dataset
        vectorized = CampaignSession(CampaignConfig.smoke(application)).run().dataset
        assert campaign.n_samples == vectorized.n_samples
        assert campaign.is_dense()
        for column in ("trial", "process", "iteration", "thread"):
            assert np.array_equal(campaign.column(column), vectorized.column(column))

    def test_scenario_pins_the_campaign_backend(self):
        scenario = get_scenario("manzano-campaign-batched")
        assert scenario.backend == "campaign"
        assert scenario.schedule == "dynamic,4"
        dataset = scenario.session(scale="smoke").run().dataset
        assert _digest(dataset) == CAMPAIGN_SCHEDULE_SMOKE_DIGESTS[
            ("minife", "dynamic,4")
        ]


class TestChunkInvariance:
    @pytest.mark.parametrize("application", APPLICATIONS)
    @pytest.mark.parametrize("chunk_shards", [1, 2, 3, 8])
    def test_chunked_run_is_bit_identical(self, application, chunk_shards):
        config = _smoke(application)
        whole = get_backend("campaign").run(config)
        chunked = CampaignTensorBackend(chunk_shards=chunk_shards).run(config)
        for name in whole.columns:
            assert np.array_equal(whole.column(name), chunked.column(name)), name

    @pytest.mark.parametrize("chunk_shards", [1, 3])
    def test_chunked_workqueue_run_is_bit_identical(self, chunk_shards):
        config = _smoke("minife", schedule="dynamic,4")
        whole = get_backend("campaign").run(config)
        chunked = CampaignTensorBackend(chunk_shards=chunk_shards).run(config)
        assert np.array_equal(whole.compute_times_s, chunked.compute_times_s)

    def test_fast_run_matches_streamed_shards(self):
        # run() assembles all chunks columnar-ly; iter_shards slices them
        # into per-(trial, process) shards — same rows either way
        from repro.core.timing import TimingDataset

        config = _smoke("miniqmc")
        backend = get_backend("campaign")
        fast = backend.run(config)
        merged = TimingDataset.merge(
            backend.iter_shards(config), metadata=backend.metadata(config)
        )
        for name in fast.columns:
            assert np.array_equal(fast.column(name), merged.column(name)), name
        assert fast.metadata == merged.metadata


class TestSerialExecution:
    @pytest.mark.parametrize("max_workers", [2, 4])
    def test_executor_forces_serial_for_campaign_backend(self, max_workers):
        # parallelizable=False: the executor must not fan the campaign's
        # shards across a pool (each worker would re-run the whole tensor
        # pass); max_workers > 1 stays bit-identical to the serial run
        serial = CampaignSession(_smoke("minife")).run().dataset
        parallel = CampaignSession(
            _smoke("minife", max_workers=max_workers), executor_mode="thread"
        ).run(use_cache=False).dataset
        assert np.array_equal(serial.compute_times_s, parallel.compute_times_s)

    def test_executor_streams_per_process_shards(self):
        config = _smoke("minimd", max_workers=4)
        shards = list(ShardExecutor(mode="thread").iter_shards(
            get_backend("campaign"), config
        ))
        assert [(s.trial, s.process) for s in shards] == [(0, 0), (0, 1)]


class TestGroupedExecution:
    def test_group_key_ignores_seed_and_machine(self):
        a = _smoke("minife")
        b = _smoke("minife", seed=99)
        assert campaign_group_key(a) == campaign_group_key(b)
        assert campaign_group_key(a) != campaign_group_key(_smoke("minimd"))
        assert campaign_group_key(a) != campaign_group_key(
            _smoke("minife", schedule="dynamic,4")
        )

    def test_run_many_is_bit_identical_to_solo_runs(self):
        backend = get_backend("campaign")
        configs = [
            _smoke("minife"),
            _smoke("minife", seed=99),
            _smoke("minife", schedule="dynamic,4"),
            _smoke("miniqmc"),
        ]
        grouped = backend.run_many(configs)
        for config, dataset in zip(configs, grouped):
            solo = backend.run(config)
            for name in solo.columns:
                assert np.array_equal(dataset.column(name), solo.column(name)), name

    def test_scenario_matrix_shares_one_tensor_pass(self, monkeypatch):
        # two compatible campaign-backend entries must reach the backend as
        # ONE run_many call (sharing the fold), not one run() per session
        calls = {"run_many": 0, "run": 0}
        original_run_many = CampaignTensorBackend.run_many
        original_run = CampaignTensorBackend.run

        def counting_run_many(self, configs):
            calls["run_many"] += 1
            return original_run_many(self, configs)

        def counting_run(self, config, streams=None):
            calls["run"] += 1
            return original_run(self, config, streams)

        monkeypatch.setattr(CampaignTensorBackend, "run_many", counting_run_many)
        monkeypatch.setattr(CampaignTensorBackend, "run", counting_run)
        matrix = ScenarioMatrix(applications=("minife",), noises=(None, "heavy-tail"))
        results = matrix.run(scale="smoke", backend="campaign")
        assert calls["run_many"] == 1
        assert calls["run"] == 0  # both entries shared the grouped pass
        for scenario in matrix:
            solo = scenario.session(scale="smoke", backend="campaign").run()
            assert np.array_equal(
                results[scenario.name].dataset.compute_times_s,
                solo.dataset.compute_times_s,
            )

    def test_scenario_matrix_grouped_results_hit_the_cache(self, tmp_path):
        matrix = ScenarioMatrix(applications=("minife",), noises=(None, "none"))
        first = matrix.run(scale="smoke", backend="campaign", cache_dir=tmp_path)
        assert not any(result.from_cache for result in first.values())
        second = matrix.run(scale="smoke", backend="campaign", cache_dir=tmp_path)
        assert all(result.from_cache for result in second.values())
        for name in first:
            assert np.array_equal(
                first[name].dataset.compute_times_s,
                second[name].dataset.compute_times_s,
            )


class TestRecordCampaign:
    def test_record_campaign_matches_per_shard_record_block(self):
        rng = np.random.default_rng(5)
        times = np.abs(rng.normal(25e-3, 1e-3, size=(3, 7, 5)))
        shards = [(0, 0), (0, 1), (1, 0)]
        tensor = RegionInstrumenter(region="r", application="a")
        tensor.record_campaign(shards=shards, compute_times_s=times)
        blockwise = RegionInstrumenter(region="r", application="a")
        for (trial, process), plane in zip(shards, times):
            blockwise.record_block(
                trial=trial, process=process, compute_times_s=plane
            )
        a, b = tensor.dataset(), blockwise.dataset()
        assert a.columns == b.columns
        for name in a.columns:
            assert np.array_equal(a.column(name), b.column(name)), name

    def test_record_campaign_rejects_bad_input(self):
        instrumenter = RegionInstrumenter()
        with pytest.raises(ValueError):
            instrumenter.record_campaign(
                shards=[(0, 0)], compute_times_s=np.ones((2, 2))
            )
        with pytest.raises(ValueError):
            instrumenter.record_campaign(
                shards=[(0, 0)], compute_times_s=np.ones((2, 2, 2))
            )
        with pytest.raises(ValueError):
            instrumenter.record_campaign(
                shards=[(0, 0)], compute_times_s=-np.ones((1, 2, 2))
            )

    def test_recorded_values_are_decoupled_from_the_input_buffer(self):
        buffer = np.full((1, 2, 3), 1e-3)
        instrumenter = RegionInstrumenter()
        instrumenter.record_campaign(shards=[(0, 0)], compute_times_s=buffer)
        buffer[:] = 9.0
        recorded = instrumenter.dataset().column("compute_time_s")
        np.testing.assert_array_equal(recorded, np.full(6, 1e-3))
