"""Bit-identity matrix of the columnar analysis fast path.

The fused columnar kernel must be indistinguishable from the per-shard
streaming path: bit-identical products in exact mode and identical
accumulator states in sketch mode — for any ``chunk_shards``, any worker
count, and every producer (fused campaign execution, in-memory results,
out-of-core store groups, and the generic per-shard fallback).
"""

import pickle

import numpy as np
import pytest

from repro.analysis import (
    AnalysisContext,
    ColumnarAnalyzer,
    resolve_analyses,
    run_analyses,
    run_campaign_analyses,
    run_columnar_analyses,
)
from repro.analysis.engine import _reduce_partials
from repro.core.aggregation import ShardSlice
from repro.experiments.backends import CampaignTensorBackend
from repro.experiments.config import CampaignConfig
from repro.experiments.executor import ShardExecutor
from repro.experiments.session import CampaignResult, CampaignSession
from repro.io.shard_store import ShardStore

CONFIG = CampaignConfig(
    application="minife",
    trials=2,
    processes=2,
    iterations=10,
    threads=8,
    seed=5,
    backend="campaign",
)


def _products(results):
    """Canonical pickled product bytes per pass — byte-equality is the bar.

    One pickle round-trip first: it normalises object-identity topology
    (e.g. enum ``.value`` strings shared with dict keys in-process but not
    after crossing a worker boundary) without touching a single value, so
    the comparison stays bit-strict on every array byte and float while
    ignoring memo-reference layout.
    """
    return {
        name: pickle.dumps(pickle.loads(pickle.dumps(results[name])))
        for name in results
    }


@pytest.fixture(scope="module")
def reference():
    """Per-shard streaming products for both accumulation modes."""
    backend = CampaignTensorBackend()
    out = {}
    for exact in (True, False):
        context = AnalysisContext.from_config(
            CONFIG, exact=exact, metadata=backend.metadata(CONFIG)
        )
        results = run_analyses(backend.iter_shards(CONFIG), "all", context)
        out[exact] = (_products(results), context)
    return out


class TestFusedCampaignMatrix:
    @pytest.mark.parametrize("exact", [True, False], ids=["exact", "sketch"])
    @pytest.mark.parametrize("chunk_shards", [1, 3, 8])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_per_shard_path(self, reference, workers, chunk_shards, exact):
        ref, _ = reference[exact]
        backend = CampaignTensorBackend(chunk_shards=chunk_shards)
        results = run_campaign_analyses(
            backend,
            CONFIG.parallel(workers),
            "all",
            executor=ShardExecutor(mode="process"),
            exact=exact,
        )
        assert _products(results) == ref


class TestStoreBackedBlocks:
    @pytest.mark.parametrize("exact", [True, False], ids=["exact", "sketch"])
    def test_store_groups_match_per_shard_path(self, tmp_path, reference, exact):
        ref, context = reference[exact]
        backend = CampaignTensorBackend()
        store = ShardStore.create(tmp_path / "c.store", spill_threshold_bytes=4096)
        for shard in backend.iter_shards(CONFIG):
            store.append(shard)
        store.finalize()
        reopened = ShardStore.open(tmp_path / "c.store")
        assert reopened.n_groups > 1  # the reduction really crosses groups
        results = run_columnar_analyses(
            reopened.iter_column_blocks(), "all", context
        )
        assert _products(results) == ref

    def test_group_columns_are_mmap_views(self, tmp_path):
        backend = CampaignTensorBackend()
        store = ShardStore.create(tmp_path / "c.store")
        for shard in backend.iter_shards(CONFIG):
            store.append(shard)
        store.finalize()
        blocks = list(ShardStore.open(tmp_path / "c.store").iter_column_blocks())
        assert blocks
        for columns, slices in blocks:
            assert slices == sorted(slices, key=lambda sl: sl.sort_key)
            assert slices[-1].stop == len(next(iter(columns.values())))
            for array in columns.values():
                assert isinstance(array, np.memmap)


class TestInMemoryBlocks:
    @pytest.mark.parametrize("exact", [True, False], ids=["exact", "sketch"])
    def test_session_result_blocks_match_per_shard_path(self, reference, exact):
        ref, context = reference[exact]
        result = CampaignSession(CONFIG).run()
        results = run_columnar_analyses(
            result.iter_column_blocks(), "all", context
        )
        assert _products(results) == ref

    def test_dataset_backed_blocks_use_identical_fallback(self):
        """Dataset-derived shards (``process=None``, not block-shaped) must
        take the generic per-shard fallback and still match exactly."""
        dataset = CampaignSession(CONFIG).run().dataset
        result = CampaignResult(CONFIG, dataset=dataset)
        context = AnalysisContext.from_dataset(dataset)
        ref = _products(run_analyses(result.iter_shards(), "all", context))
        got = _products(
            run_columnar_analyses(result.iter_column_blocks(), "all", context)
        )
        assert got == ref


class TestShardOrderInvariance:
    def test_exact_columnar_partials_merge_order_free(self, reference):
        """Exact-mode scope: per-shard columnar partials reduced in reverse
        shard order finalize to the same report (the segment keys carry the
        serial order, so merge order cannot matter)."""
        ref, context = reference[True]
        backend = CampaignTensorBackend()
        shards = list(backend.iter_shards(CONFIG))
        columns = {
            name: np.concatenate(
                [np.asarray(shard.columns[name]) for shard in shards]
            )
            for name in shards[0].columns
        }
        slices = []
        start = 0
        for shard in shards:
            slices.append(
                ShardSlice(shard.trial, shard.process, start, start + shard.n_samples)
            )
            start += shard.n_samples
        passes = resolve_analyses("all")
        mapper = ColumnarAnalyzer(passes, context)
        # partials are mutated by the reduction — map once per direction
        forward = _reduce_partials(passes, iter(mapper(columns, slices)), context)
        backward = _reduce_partials(
            passes, reversed(mapper(columns, slices)), context
        )
        assert _products(forward) == ref
        assert forward.report().as_dict() == backward.report().as_dict()
        np.testing.assert_array_equal(
            forward["percentiles"].values, backward["percentiles"].values
        )
