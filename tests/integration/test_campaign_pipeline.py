"""Integration: campaign → dataset → analysis → tables/figures pipeline."""

import numpy as np
import pytest

from repro.core.analyzer import ThreadTimingAnalyzer
from repro.experiments.campaign import quick_campaign, run_all_campaigns, run_campaign
from repro.experiments.config import CampaignConfig
from repro.experiments.figures import figure3_histogram, percentile_figure
from repro.experiments.tables import section4_metrics_table, table1
from repro.io.dataset_io import load_dataset, save_dataset


class TestCampaignStructure:
    def test_dataset_dimensions_match_configuration(self, minife_dataset):
        assert minife_dataset.n_trials == 1
        assert minife_dataset.n_processes == 2
        assert minife_dataset.n_iterations == 30
        assert minife_dataset.n_threads == 48
        assert minife_dataset.is_dense()
        assert minife_dataset.metadata["machine"] == "manzano"

    def test_campaign_is_reproducible(self):
        config = CampaignConfig.smoke()
        first = run_campaign(config)
        second = run_campaign(CampaignConfig.smoke())
        np.testing.assert_array_equal(first.compute_times_s, second.compute_times_s)

    def test_different_seeds_give_different_noise(self):
        a = quick_campaign("minimd", trials=1, processes=1, iterations=5, threads=16, seed=1)
        b = quick_campaign("minimd", trials=1, processes=1, iterations=5, threads=16, seed=2)
        assert not np.allclose(a.compute_times_s, b.compute_times_s)

    def test_run_all_campaigns_covers_every_application(self):
        datasets = run_all_campaigns(CampaignConfig.smoke())
        assert set(datasets) == {"minife", "minimd", "miniqmc"}
        for name, dataset in datasets.items():
            assert dataset.application == name

    def test_noise_ablation_reduces_spread(self):
        noisy_cfg = CampaignConfig.smoke("minife")
        quiet_cfg = CampaignConfig.smoke("minife")
        quiet_cfg.machine = quiet_cfg.machine.without_noise()
        noisy = run_campaign(noisy_cfg)
        quiet = run_campaign(quiet_cfg)
        assert quiet.compute_times_s.std() < noisy.compute_times_s.std()
        assert quiet.metadata["noise_enabled"] is False


class TestEndToEnd:
    def test_full_pipeline_to_tables_and_figures(self, all_datasets, tmp_path):
        rows = table1(all_datasets)
        metrics = section4_metrics_table(all_datasets)
        assert len(rows) == 3 and len(metrics) == 3
        for name, dataset in all_datasets.items():
            assert figure3_histogram(dataset)["histogram"].total == dataset.n_samples
            series = percentile_figure(dataset, "fig")["series"]
            assert series.values.shape[1] == dataset.n_iterations
        # persistence round trip of a full campaign dataset
        path = save_dataset(all_datasets["minife"], tmp_path / "minife")
        reloaded = load_dataset(path)
        assert reloaded.n_samples == all_datasets["minife"].n_samples

    def test_report_recommendations_differ_across_applications(self, all_datasets):
        recommendations = {
            name: ThreadTimingAnalyzer(ds).report(include_earlybird=False).recommendation
            for name, ds in all_datasets.items()
        }
        # MiniQMC's wide distribution must not get the same advice as MiniFE's
        # tight laggard-driven profile (§5 discussion)
        assert recommendations["miniqmc"] != recommendations["minife"]

    def test_earlybird_gain_largest_for_miniqmc(self, all_datasets):
        gains = {}
        for name, dataset in all_datasets.items():
            analyzer = ThreadTimingAnalyzer(dataset)
            gains[name] = analyzer.earlybird(max_groups=25)["mean_improvement_s"]
        assert gains["miniqmc"] > gains["minife"]
        assert gains["miniqmc"] > gains["minimd"]
