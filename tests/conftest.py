"""Shared fixtures.

Campaign datasets are expensive enough to be worth sharing, so the three
per-application smoke datasets are built once per session.  All fixtures are
deterministic (fixed seeds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.timing import TimingDataset
from repro.experiments.campaign import quick_campaign
from repro.experiments.config import CampaignConfig


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def _smoke_dataset(application: str) -> TimingDataset:
    return quick_campaign(
        application,
        trials=1,
        processes=2,
        iterations=30,
        threads=48,
        seed=202304,
    )


@pytest.fixture(scope="session")
def minife_dataset() -> TimingDataset:
    return _smoke_dataset("minife")


@pytest.fixture(scope="session")
def minimd_dataset() -> TimingDataset:
    return _smoke_dataset("minimd")


@pytest.fixture(scope="session")
def miniqmc_dataset() -> TimingDataset:
    return _smoke_dataset("miniqmc")


@pytest.fixture(scope="session")
def all_datasets(minife_dataset, minimd_dataset, miniqmc_dataset):
    return {
        "minife": minife_dataset,
        "minimd": minimd_dataset,
        "miniqmc": miniqmc_dataset,
    }


@pytest.fixture(scope="session")
def synthetic_dataset() -> TimingDataset:
    """A small dense synthetic dataset with known structure (no noise model)."""
    rng = np.random.default_rng(0)
    times = np.abs(rng.normal(25.0e-3, 0.4e-3, size=(2, 2, 10, 16)))
    return TimingDataset.from_compute_times(
        times, {"application": "synthetic", "region": "loop"}
    )


@pytest.fixture()
def smoke_config() -> CampaignConfig:
    return CampaignConfig.smoke()
