"""Per-core monotonic clock model.

The paper (§3.1) measures time with ``clock_gettime(CLOCK_MONOTONIC)``, which
POSIX only guarantees to be monotonic *per core*: without ``tsc_reliable``
there is no ordering guarantee across the cores and sockets of a node.  The
authors therefore derive *compute time* (exit − enter on the same core), which
cancels the per-core offset.

:class:`MonotonicClock` reproduces those semantics so the instrumentation
layer can be tested against them:

* every core's clock has a private epoch offset (time since "an undefined
  event in the past"),
* a small relative drift, and
* bounded read jitter (granularity of the clock source),
* reads on one core never go backwards, even when jitter is negative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.cluster.topology import Core


@dataclass(frozen=True)
class ClockSpec:
    """Statistical description of the per-core clock population.

    Parameters
    ----------
    max_offset_s:
        Per-core epoch offsets are drawn uniformly from ``[0, max_offset_s]``.
        Offsets of seconds to days are typical (time since boot).
    drift_ppm:
        Standard deviation of the per-core relative frequency error in parts
        per million.
    read_jitter_ns:
        Half-width of the uniform jitter added to every read, modelling clock
        source granularity (``clock_getres`` is ~1 ns but reads cost ~20 ns).
    tsc_reliable:
        When ``True`` all cores share one offset and zero drift (a platform
        with a synchronised, invariant TSC).  The paper's platform does *not*
        have this flag, which is the point of the compute-time derivation.
    """

    max_offset_s: float = 1.0e6
    drift_ppm: float = 2.0
    read_jitter_ns: float = 15.0
    tsc_reliable: bool = False

    def __post_init__(self) -> None:
        if self.max_offset_s < 0 or self.drift_ppm < 0 or self.read_jitter_ns < 0:
            raise ValueError("ClockSpec parameters must be non-negative")


class MonotonicClock:
    """The ``CLOCK_MONOTONIC`` source of a single core.

    Parameters
    ----------
    offset_s:
        Epoch offset of this core's clock.
    drift:
        Relative frequency error (e.g. ``1e-6`` = 1 ppm fast).
    read_jitter_ns:
        Uniform read jitter half-width in nanoseconds.
    rng:
        Generator used for jitter draws.
    """

    __slots__ = ("offset_s", "drift", "read_jitter_ns", "_rng", "_last_reading")

    def __init__(
        self,
        offset_s: float = 0.0,
        drift: float = 0.0,
        read_jitter_ns: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.offset_s = float(offset_s)
        self.drift = float(drift)
        self.read_jitter_ns = float(read_jitter_ns)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._last_reading = -np.inf

    def read_ns(self, true_time_s: float) -> int:
        """Read the clock at physical time ``true_time_s``; returns nanoseconds.

        Guaranteed monotonically non-decreasing across successive reads on
        this core, exactly as IEEE POSIX.1-2017 requires.
        """
        raw = (self.offset_s + true_time_s * (1.0 + self.drift)) * 1.0e9
        if self.read_jitter_ns > 0.0:
            raw += self._rng.uniform(-self.read_jitter_ns, self.read_jitter_ns)
        reading = max(raw, self._last_reading)
        self._last_reading = reading
        return int(round(reading))

    def read_s(self, true_time_s: float) -> float:
        """Read the clock and return seconds (float)."""
        return self.read_ns(true_time_s) * 1.0e-9

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MonotonicClock(offset={self.offset_s:.3f}s, "
            f"drift={self.drift * 1e6:.2f}ppm)"
        )


class ClockDomain:
    """The collection of per-core clocks of a machine.

    Creates one :class:`MonotonicClock` per core, with offsets/drifts drawn
    from a :class:`ClockSpec`.  With ``tsc_reliable=True`` every core shares
    one offset (raw timestamps become comparable across cores).
    """

    def __init__(
        self,
        spec: ClockSpec,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.spec = spec
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._clocks: Dict[Tuple[int, int, int], MonotonicClock] = {}
        self._shared_offset = float(self._rng.uniform(0.0, spec.max_offset_s))

    def clock_for(self, core: Core) -> MonotonicClock:
        """Return (and cache) the clock of ``core``."""
        key = core.global_id
        if key not in self._clocks:
            if self.spec.tsc_reliable:
                offset = self._shared_offset
                drift = 0.0
            else:
                offset = float(self._rng.uniform(0.0, self.spec.max_offset_s))
                drift = float(self._rng.normal(0.0, self.spec.drift_ppm * 1e-6))
            self._clocks[key] = MonotonicClock(
                offset_s=offset,
                drift=drift,
                read_jitter_ns=self.spec.read_jitter_ns,
                rng=np.random.default_rng(self._rng.integers(0, 2**63 - 1)),
            )
        return self._clocks[key]

    def cross_core_comparable(self) -> bool:
        """Whether raw timestamps may be compared across cores."""
        return self.spec.tsc_reliable

    def __len__(self) -> int:
        return len(self._clocks)
