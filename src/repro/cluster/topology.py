"""Physical cluster layout: cores, sockets, nodes and the interconnect graph.

The layout serves two purposes:

1. Thread placement — every simulated OpenMP thread is pinned to a
   :class:`Core`, which owns the thread's monotonic clock and receives that
   core's OS noise.
2. Network distances — the interconnect is a ``networkx`` graph (node ↔
   switch) used by :class:`repro.mpi.network.NetworkModel` to derive per-hop
   latency between ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx


@dataclass(frozen=True)
class Core:
    """A single hardware thread context.

    Identified globally by ``(node_id, socket_id, core_id)``.
    """

    node_id: int
    socket_id: int
    core_id: int
    frequency_ghz: float = 2.9

    @property
    def global_id(self) -> Tuple[int, int, int]:
        """Globally unique identifier of the core."""
        return (self.node_id, self.socket_id, self.core_id)

    @property
    def seconds_per_cycle(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0e-9 / self.frequency_ghz


@dataclass
class Socket:
    """A CPU package holding ``cores_per_socket`` cores."""

    node_id: int
    socket_id: int
    cores: List[Core] = field(default_factory=list)

    @property
    def n_cores(self) -> int:
        return len(self.cores)


@dataclass
class Node:
    """A compute node: one or more sockets plus memory."""

    node_id: int
    sockets: List[Socket] = field(default_factory=list)
    memory_gb: float = 192.0

    @property
    def cores(self) -> List[Core]:
        """All cores of the node, socket-major order."""
        return [core for socket in self.sockets for core in socket.cores]

    @property
    def n_cores(self) -> int:
        return sum(socket.n_cores for socket in self.sockets)


class Cluster:
    """A set of identical nodes connected through a single-switch fabric.

    Parameters
    ----------
    n_nodes:
        Number of compute nodes.
    sockets_per_node, cores_per_socket:
        CPU layout of every node.
    frequency_ghz:
        Nominal core frequency.
    memory_gb:
        Memory per node (informational).
    name:
        Label used in reports.

    Notes
    -----
    The interconnect is modelled as a two-level tree: every node connects to a
    leaf switch, and leaf switches connect to a root switch (enough fidelity
    for hop-count based latency on a small job; the paper uses 8 processes).
    """

    def __init__(
        self,
        n_nodes: int = 1,
        *,
        sockets_per_node: int = 2,
        cores_per_socket: int = 24,
        frequency_ghz: float = 2.9,
        memory_gb: float = 192.0,
        nodes_per_switch: int = 32,
        name: str = "cluster",
    ) -> None:
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if sockets_per_node < 1 or cores_per_socket < 1:
            raise ValueError("sockets_per_node and cores_per_socket must be >= 1")
        self.name = name
        self.frequency_ghz = frequency_ghz
        self.nodes: List[Node] = []
        for node_id in range(n_nodes):
            sockets = []
            for socket_id in range(sockets_per_node):
                cores = [
                    Core(node_id, socket_id, core_id, frequency_ghz)
                    for core_id in range(cores_per_socket)
                ]
                sockets.append(Socket(node_id, socket_id, cores))
            self.nodes.append(Node(node_id, sockets, memory_gb))
        self.nodes_per_switch = nodes_per_switch
        self.graph = self._build_graph()

    # ------------------------------------------------------------------
    def _build_graph(self) -> nx.Graph:
        graph = nx.Graph()
        n_switches = (len(self.nodes) + self.nodes_per_switch - 1) // self.nodes_per_switch
        for switch in range(n_switches):
            graph.add_node(("switch", switch), kind="switch")
        if n_switches > 1:
            graph.add_node(("root", 0), kind="root")
            for switch in range(n_switches):
                graph.add_edge(("switch", switch), ("root", 0))
        for node in self.nodes:
            graph.add_node(("node", node.node_id), kind="node")
            switch = node.node_id // self.nodes_per_switch
            graph.add_edge(("node", node.node_id), ("switch", switch))
        return graph

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def cores_per_node(self) -> int:
        return self.nodes[0].n_cores

    @property
    def total_cores(self) -> int:
        return sum(node.n_cores for node in self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def cores_of(self, node_id: int) -> List[Core]:
        """All cores of a node in socket-major order (pinning order)."""
        return self.nodes[node_id].cores

    def iter_cores(self) -> Iterator[Core]:
        for node in self.nodes:
            yield from node.cores

    # ------------------------------------------------------------------
    def hops_between(self, node_a: int, node_b: int) -> int:
        """Number of network hops between two nodes (0 if the same node)."""
        if node_a == node_b:
            return 0
        return nx.shortest_path_length(
            self.graph, ("node", node_a), ("node", node_b)
        )

    def place_processes(
        self, n_processes: int, threads_per_process: int
    ) -> List[List[Core]]:
        """Assign cores to MPI processes, filling nodes in order.

        Mirrors a typical ``--map-by node --bind-to core`` launch: processes
        are packed onto nodes; each process gets ``threads_per_process``
        consecutive cores.  Raises if the cluster is too small.
        """
        if n_processes < 1 or threads_per_process < 1:
            raise ValueError("n_processes and threads_per_process must be >= 1")
        placements: List[List[Core]] = []
        node_idx = 0
        core_idx = 0
        for _ in range(n_processes):
            while (
                node_idx < self.n_nodes
                and core_idx + threads_per_process > self.nodes[node_idx].n_cores
            ):
                node_idx += 1
                core_idx = 0
            if node_idx >= self.n_nodes:
                raise ValueError(
                    f"cannot place {n_processes} processes × "
                    f"{threads_per_process} threads on {self.n_nodes} node(s) "
                    f"of {self.cores_per_node} cores"
                )
            cores = self.nodes[node_idx].cores[core_idx : core_idx + threads_per_process]
            placements.append(cores)
            core_idx += threads_per_process
        return placements

    def node_of_rank(
        self, placements: List[List[Core]], rank: int
    ) -> int:
        """Node hosting MPI ``rank`` given a placement from :meth:`place_processes`."""
        return placements[rank][0].node_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster({self.name!r}, nodes={self.n_nodes}, "
            f"cores/node={self.cores_per_node}, {self.frequency_ghz} GHz)"
        )
