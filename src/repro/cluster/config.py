"""Machine configuration presets.

A :class:`MachineConfig` bundles the cluster layout, the clock population and
the OS-noise population into a single object the campaign runner can pass
around.  :func:`manzano` reproduces the paper's test platform (§3.2).

The presets here are also registered by name in the machine registry
(:mod:`repro.scenarios.machines`, ``get_machine("manzano")``), alongside the
additional ``fatnode`` and ``cloudvm`` platforms; these module-level
factories remain the stable construction API.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.cluster.clock import ClockDomain, ClockSpec
from repro.cluster.noise import NoiseSpec, OSNoiseModel, WindowedNoiseModel
from repro.cluster.topology import Cluster


@dataclass
class MachineConfig:
    """Full description of the simulated machine.

    Parameters
    ----------
    n_nodes, sockets_per_node, cores_per_socket, frequency_ghz, memory_gb:
        Cluster layout (see :class:`repro.cluster.topology.Cluster`).
    clock_spec:
        Per-core clock population (see :class:`repro.cluster.clock.ClockSpec`).
    noise_spec:
        OS noise population (see :class:`repro.cluster.noise.NoiseSpec`).
    name:
        Label used in reports and dataset metadata.
    """

    n_nodes: int = 1
    sockets_per_node: int = 2
    cores_per_socket: int = 24
    frequency_ghz: float = 2.9
    memory_gb: float = 192.0
    clock_spec: ClockSpec = field(default_factory=ClockSpec)
    noise_spec: NoiseSpec = field(default_factory=NoiseSpec)
    name: str = "generic"

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")

    # ------------------------------------------------------------------
    @property
    def cores_per_node(self) -> int:
        return self.sockets_per_node * self.cores_per_socket

    def build_cluster(self) -> Cluster:
        """Instantiate the :class:`Cluster` topology."""
        return Cluster(
            self.n_nodes,
            sockets_per_node=self.sockets_per_node,
            cores_per_socket=self.cores_per_socket,
            frequency_ghz=self.frequency_ghz,
            memory_gb=self.memory_gb,
            name=self.name,
        )

    def build_clock_domain(self, rng: Optional[np.random.Generator] = None) -> ClockDomain:
        """Instantiate the per-core clock population."""
        return ClockDomain(self.clock_spec, rng=rng)

    def build_noise_model(
        self,
        rng: Optional[np.random.Generator] = None,
        *,
        windowed: bool = False,
        window_s: float = 1.0,
    ) -> OSNoiseModel:
        """Instantiate the OS-noise model (one per process/trial).

        ``windowed=True`` builds a
        :class:`~repro.cluster.noise.WindowedNoiseModel`: per-core event
        timelines pre-generated ``window_s`` seconds at a time, the variant
        the event-driven backend uses so region execution stops drawing
        noise events query by query.
        """
        if windowed:
            return WindowedNoiseModel(self.noise_spec, rng=rng, window_s=window_s)
        return OSNoiseModel(self.noise_spec, rng=rng)

    def without_noise(self) -> "MachineConfig":
        """Copy of this configuration with OS noise disabled (ablation A2)."""
        return replace(self, noise_spec=self.noise_spec.disabled())

    def with_noise(self, noise_spec: NoiseSpec) -> "MachineConfig":
        """Copy of this configuration with a replacement noise population."""
        return replace(self, noise_spec=noise_spec)

    def with_noise_profile(self, profile: str) -> "MachineConfig":
        """Copy of this configuration under a registered noise profile.

        Profile names resolve through
        :func:`repro.scenarios.sources.noise_profile` (``"default"``,
        ``"none"``, ``"heavy-tail"``, ``"bursty"``, ``"storm"``, ...).
        """
        from repro.scenarios.sources import noise_profile

        return replace(self, noise_spec=noise_profile(profile))

    def with_noise_sources(self, *sources) -> "MachineConfig":
        """Copy of this configuration composing exactly the given
        :class:`~repro.cluster.noise.NoiseSourceSpec` declarations."""
        return replace(self, noise_spec=self.noise_spec.with_sources(*sources))


def manzano(n_nodes: int = 2) -> MachineConfig:
    """The paper's test platform (§3.2).

    Two 24-core Intel Cascade Lake sockets per node at 2.90 GHz, 192 GB RAM,
    RHEL7 (standard HPC noise profile), Omni-Path interconnect (modelled in
    :mod:`repro.mpi.network`), no ``tsc_reliable``.
    """
    return MachineConfig(
        n_nodes=n_nodes,
        sockets_per_node=2,
        cores_per_socket=24,
        frequency_ghz=2.9,
        memory_gb=192.0,
        clock_spec=ClockSpec(tsc_reliable=False),
        noise_spec=NoiseSpec(),
        name="manzano",
    )


def laptop() -> MachineConfig:
    """A small single-socket machine, handy for examples and tests."""
    return MachineConfig(
        n_nodes=1,
        sockets_per_node=1,
        cores_per_socket=8,
        frequency_ghz=3.2,
        memory_gb=32.0,
        clock_spec=ClockSpec(tsc_reliable=False),
        noise_spec=NoiseSpec(),
        name="laptop",
    )
