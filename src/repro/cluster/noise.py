"""Operating-system noise model.

The paper attributes laggard threads primarily to OS noise (citing Morari et
al., "A quantitative analysis of OS noise", IPDPS 2011).  We model two noise
sources per core:

* **Periodic daemons** — timer ticks, kernel threads, monitoring agents: a
  fixed period, a fixed (small) duration, and a per-core phase.
* **Random interrupts** — a Poisson process of rare, longer preemptions
  (page-cache flush, NUMA balancing, ...), with exponentially distributed
  durations.  These are what produce >1 ms laggards.

The central query is :meth:`OSNoiseModel.delay_over`: given that a thread
needs ``work_s`` seconds of CPU starting at ``start_s`` on a given core, how
much *extra* wall time does noise add?  The model "detours" through every
noise event overlapping the execution window, which is how a 25 ms compute
region stretches to 26+ ms when a 1.2 ms interrupt lands inside it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.topology import Core


@dataclass(frozen=True)
class NoiseEvent:
    """One noise occurrence on a core: ``duration`` seconds at ``start``."""

    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class NoiseSpec:
    """Parameters of the per-core OS noise population.

    Parameters
    ----------
    daemon_period_s / daemon_duration_s:
        Period and duration of the periodic noise component.  Defaults model
        a 10 ms scheduling tick stealing ~4 µs.
    interrupt_rate_hz:
        Mean rate of the random (Poisson) interrupt component per core.
    interrupt_mean_s:
        Mean duration of one random interrupt (exponential).
    interrupt_max_s:
        Hard cap on a single interrupt duration (keeps tails physical).
    jitter_fraction:
        Multiplicative lognormal-ish jitter applied to pure compute time,
        modelling cache/TLB/DVFS variation (standard deviation as a fraction
        of the compute time).
    enabled:
        Master switch (the noise-off ablation uses ``enabled=False``).
    """

    daemon_period_s: float = 0.010
    daemon_duration_s: float = 4.0e-6
    interrupt_rate_hz: float = 0.3
    interrupt_mean_s: float = 0.5e-3
    interrupt_max_s: float = 8.0e-3
    jitter_fraction: float = 0.005
    enabled: bool = True

    def __post_init__(self) -> None:
        for name in (
            "daemon_period_s",
            "daemon_duration_s",
            "interrupt_rate_hz",
            "interrupt_mean_s",
            "interrupt_max_s",
            "jitter_fraction",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.daemon_period_s == 0 and self.daemon_duration_s > 0:
            raise ValueError("daemon_duration_s requires a non-zero period")

    def disabled(self) -> "NoiseSpec":
        """A copy of this spec with all noise switched off."""
        return NoiseSpec(
            daemon_period_s=self.daemon_period_s,
            daemon_duration_s=self.daemon_duration_s,
            interrupt_rate_hz=self.interrupt_rate_hz,
            interrupt_mean_s=self.interrupt_mean_s,
            interrupt_max_s=self.interrupt_max_s,
            jitter_fraction=self.jitter_fraction,
            enabled=False,
        )


class OSNoiseModel:
    """Samples OS noise for the cores of one simulated process.

    Parameters
    ----------
    spec:
        Noise population parameters.
    rng:
        Source of randomness (per process/trial, so trials are independent).
    """

    def __init__(self, spec: NoiseSpec, rng: Optional[np.random.Generator] = None):
        self.spec = spec
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # per-core phase of the periodic daemon, lazily drawn
        self._phases: dict = {}

    # ------------------------------------------------------------------
    def _phase_for(self, core_key: Tuple[int, int, int]) -> float:
        if core_key not in self._phases:
            period = self.spec.daemon_period_s
            self._phases[core_key] = (
                float(self._rng.uniform(0.0, period)) if period > 0 else 0.0
            )
        return self._phases[core_key]

    # ------------------------------------------------------------------
    def events_in(
        self, core: Core, start_s: float, end_s: float
    ) -> List[NoiseEvent]:
        """All noise events on ``core`` overlapping ``[start_s, end_s)``."""
        if not self.spec.enabled or end_s <= start_s:
            return []
        events: List[NoiseEvent] = []
        spec = self.spec
        # periodic daemon occurrences
        if spec.daemon_period_s > 0 and spec.daemon_duration_s > 0:
            phase = self._phase_for(core.global_id)
            first = np.ceil((start_s - phase) / spec.daemon_period_s)
            tick = phase + first * spec.daemon_period_s
            while tick < end_s:
                events.append(NoiseEvent(tick, spec.daemon_duration_s))
                tick += spec.daemon_period_s
        # Poisson interrupts
        if spec.interrupt_rate_hz > 0 and spec.interrupt_mean_s > 0:
            window = end_s - start_s
            n = int(self._rng.poisson(spec.interrupt_rate_hz * window))
            if n > 0:
                starts = start_s + self._rng.uniform(0.0, window, size=n)
                durations = np.minimum(
                    self._rng.exponential(spec.interrupt_mean_s, size=n),
                    spec.interrupt_max_s,
                )
                events.extend(
                    NoiseEvent(float(s), float(d)) for s, d in zip(starts, durations)
                )
        events.sort(key=lambda ev: ev.start)
        return events

    # ------------------------------------------------------------------
    def jittered_compute(self, work_s: float, rng: Optional[np.random.Generator] = None) -> float:
        """Apply multiplicative execution jitter to a pure compute time."""
        if work_s < 0:
            raise ValueError("work_s must be non-negative")
        if not self.spec.enabled or self.spec.jitter_fraction <= 0 or work_s == 0:
            return work_s
        gen = rng if rng is not None else self._rng
        factor = float(gen.normal(1.0, self.spec.jitter_fraction))
        return work_s * max(factor, 0.5)

    def delay_over(self, core: Core, start_s: float, work_s: float) -> float:
        """Extra wall time added by noise to ``work_s`` seconds of compute.

        The thread starts at ``start_s``; every noise event whose start falls
        inside the (continuously extended) execution window preempts the
        thread for its full duration.

        Returns the *additional* time, i.e. wall time = ``work_s`` + return
        value.
        """
        if work_s < 0:
            raise ValueError("work_s must be non-negative")
        if not self.spec.enabled or work_s == 0.0:
            return 0.0
        # Look ahead over a window generously larger than the work to capture
        # events that land inside the stretched execution.
        horizon = work_s * 1.5 + self.spec.interrupt_max_s + self.spec.daemon_period_s
        events = self.events_in(core, start_s, start_s + horizon)
        end = start_s + work_s
        extra = 0.0
        for event in events:
            if event.start < end:
                end += event.duration
                extra += event.duration
            else:
                break
        return extra

    def batch_delays(
        self, work_s, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Vectorised noise delays for a batch of independent compute windows.

        Statistically equivalent to calling :meth:`delay_over` once per entry
        (periodic daemon occurrences + Poisson interrupts), but without the
        per-core phase bookkeeping — the fast campaign path uses this, the
        event-driven path uses :meth:`delay_over`.
        """
        work = np.asarray(work_s, dtype=np.float64)
        if np.any(work < 0):
            raise ValueError("work times must be non-negative")
        if not self.spec.enabled:
            return np.zeros_like(work)
        gen = rng if rng is not None else self._rng
        extra = np.zeros_like(work)
        spec = self.spec
        if spec.daemon_period_s > 0 and spec.daemon_duration_s > 0:
            expected_ticks = work / spec.daemon_period_s
            ticks = np.floor(expected_ticks) + (
                gen.uniform(size=work.shape) < (expected_ticks - np.floor(expected_ticks))
            )
            extra += ticks * spec.daemon_duration_s
        if spec.interrupt_rate_hz > 0 and spec.interrupt_mean_s > 0:
            counts = gen.poisson(spec.interrupt_rate_hz * work)
            flat_counts = counts.ravel()
            total = int(flat_counts.sum())
            if total > 0:
                durations = np.minimum(
                    gen.exponential(spec.interrupt_mean_s, size=total),
                    spec.interrupt_max_s,
                )
                boundaries = np.cumsum(flat_counts)[:-1]
                per_window = np.array(
                    [seg.sum() for seg in np.split(durations, boundaries)]
                ).reshape(work.shape)
                extra += per_window
        return extra

    # ------------------------------------------------------------------
    def sample_wall_time(
        self,
        core: Core,
        start_s: float,
        work_s: float,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Wall time for ``work_s`` of compute starting at ``start_s`` on ``core``.

        Combines execution jitter and noise preemption; this is the single
        entry point used by the OpenMP execution simulator.
        """
        jittered = self.jittered_compute(work_s, rng=rng)
        return jittered + self.delay_over(core, start_s, jittered)


def total_noise(events: Sequence[NoiseEvent]) -> float:
    """Sum of the durations of a sequence of noise events."""
    return float(sum(event.duration for event in events))
