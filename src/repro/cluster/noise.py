"""Operating-system noise model.

The paper attributes laggard threads primarily to OS noise (citing Morari et
al., "A quantitative analysis of OS noise", IPDPS 2011).  By default we model
two noise sources per core:

* **Periodic daemons** — timer ticks, kernel threads, monitoring agents: a
  fixed period, a fixed (small) duration, and a per-core phase.
* **Random interrupts** — a Poisson process of rare, longer preemptions
  (page-cache flush, NUMA balancing, ...), with exponentially distributed
  durations.  These are what produce >1 ms laggards.

:class:`OSNoiseModel` composes a list of registered
:class:`~repro.scenarios.sources.NoiseSource` instances; the default pair
above is what a plain :class:`NoiseSpec` builds (bit-identical to the
original hardwired model), and scenario noise profiles swap in heavy-tailed,
bursty or storm populations through :attr:`NoiseSpec.sources`.

The central query is :meth:`OSNoiseModel.delay_over`: given that a thread
needs ``work_s`` seconds of CPU starting at ``start_s`` on a given core, how
much *extra* wall time does noise add?  The model "detours" through every
noise event overlapping the execution window, which is how a 25 ms compute
region stretches to 26+ ms when a 1.2 ms interrupt lands inside it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.topology import Core

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.scenarios.sources import NoiseSource


@dataclass(frozen=True)
class NoiseEvent:
    """One noise occurrence on a core: ``duration`` seconds at ``start``."""

    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class NoiseSourceSpec:
    """Declarative description of one registered noise source.

    ``kind`` names an entry of the noise-source registry
    (:func:`repro.scenarios.sources.register_noise_source`); ``params`` are
    the constructor keyword arguments, stored as a sorted tuple of pairs so
    the spec stays hashable and produces stable cache keys.  Build with
    :meth:`of` for keyword ergonomics::

        NoiseSourceSpec.of("pareto-interrupts", rate_hz=0.2, alpha=1.5)
    """

    kind: str
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not str(self.kind).strip():
            raise ValueError("NoiseSourceSpec needs a source kind")
        params = self.params
        if isinstance(params, dict):
            params = params.items()
        object.__setattr__(
            self, "params", tuple(sorted((str(k), v) for k, v in params))
        )

    @classmethod
    def of(cls, kind: str, **params) -> "NoiseSourceSpec":
        """Construct a spec from keyword parameters."""
        return cls(kind=kind, params=tuple(sorted(params.items())))

    def as_dict(self) -> Dict[str, float]:
        """The parameters as a plain keyword dictionary."""
        return dict(self.params)


@dataclass(frozen=True)
class NoiseSpec:
    """Parameters of the per-core OS noise population.

    Parameters
    ----------
    daemon_period_s / daemon_duration_s:
        Period and duration of the periodic noise component.  Defaults model
        a 10 ms scheduling tick stealing ~4 µs.
    interrupt_rate_hz:
        Mean rate of the random (Poisson) interrupt component per core.
    interrupt_mean_s:
        Mean duration of one random interrupt (exponential).
    interrupt_max_s:
        Hard cap on a single interrupt duration (keeps tails physical).
    jitter_fraction:
        Multiplicative lognormal-ish jitter applied to pure compute time,
        modelling cache/TLB/DVFS variation (standard deviation as a fraction
        of the compute time).
    enabled:
        Master switch (the noise-off ablation uses ``enabled=False``).
    sources:
        Optional tuple of :class:`NoiseSourceSpec` declarations.  When empty
        (the default) the model is built from the legacy scalar fields above
        — one periodic daemon plus one Poisson interrupt source, bit-identical
        to the pre-registry model.  When non-empty, exactly these registered
        sources are composed *instead* and the scalar fields are ignored.
    """

    daemon_period_s: float = 0.010
    daemon_duration_s: float = 4.0e-6
    interrupt_rate_hz: float = 0.3
    interrupt_mean_s: float = 0.5e-3
    interrupt_max_s: float = 8.0e-3
    jitter_fraction: float = 0.005
    enabled: bool = True
    sources: Tuple[NoiseSourceSpec, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "daemon_period_s",
            "daemon_duration_s",
            "interrupt_rate_hz",
            "interrupt_mean_s",
            "interrupt_max_s",
            "jitter_fraction",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.daemon_period_s == 0 and self.daemon_duration_s > 0:
            raise ValueError("daemon_duration_s requires a non-zero period")
        object.__setattr__(self, "sources", tuple(self.sources))
        for source in self.sources:
            if not isinstance(source, NoiseSourceSpec):
                raise TypeError(
                    "NoiseSpec.sources entries must be NoiseSourceSpec, "
                    f"got {type(source).__name__}"
                )

    def disabled(self) -> "NoiseSpec":
        """A copy of this spec with all noise switched off."""
        return replace(self, enabled=False)

    def with_sources(self, *sources: NoiseSourceSpec) -> "NoiseSpec":
        """A copy of this spec composing exactly the given sources."""
        return replace(self, sources=tuple(sources))

    def build_sources(self) -> Tuple["NoiseSource", ...]:
        """Instantiate this spec's noise sources from the registry.

        The import is deferred so the cluster layer stays importable without
        the scenario subsystem (which itself imports this module).
        """
        from repro.scenarios.sources import build_noise_sources

        if self.sources:
            return build_noise_sources(self.sources)
        return build_noise_sources(
            (
                NoiseSourceSpec.of(
                    "periodic-daemon",
                    period_s=self.daemon_period_s,
                    duration_s=self.daemon_duration_s,
                ),
                NoiseSourceSpec.of(
                    "poisson-interrupts",
                    rate_hz=self.interrupt_rate_hz,
                    mean_s=self.interrupt_mean_s,
                    max_s=self.interrupt_max_s,
                ),
            )
        )


class OSNoiseModel:
    """Samples OS noise for the cores of one simulated process.

    Composes the :class:`~repro.scenarios.sources.NoiseSource` instances the
    spec declares (or the default daemon + Poisson pair), querying them in
    order with the model's generator so draw sequences stay deterministic.

    Parameters
    ----------
    spec:
        Noise population parameters.
    rng:
        Source of randomness (per process/trial, so trials are independent).
    sources:
        Explicit source instances to compose, overriding ``spec``'s source
        declarations (the spec's ``enabled``/``jitter_fraction`` switches
        still apply).
    """

    def __init__(
        self,
        spec: Optional[NoiseSpec] = None,
        rng: Optional[np.random.Generator] = None,
        *,
        sources: Optional[Sequence["NoiseSource"]] = None,
    ):
        self.spec = spec if spec is not None else NoiseSpec()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.sources: Tuple["NoiseSource", ...] = (
            tuple(sources) if sources is not None else self.spec.build_sources()
        )

    # ------------------------------------------------------------------
    @property
    def horizon_s(self) -> float:
        """Look-ahead the composed sources need beyond a compute window."""
        return float(sum(source.horizon_s for source in self.sources))

    # ------------------------------------------------------------------
    def events_in(
        self, core: Core, start_s: float, end_s: float
    ) -> List[NoiseEvent]:
        """All noise events on ``core`` overlapping ``[start_s, end_s)``."""
        if not self.spec.enabled or end_s <= start_s:
            return []
        events: List[NoiseEvent] = []
        for source in self.sources:
            events.extend(source.events_in(core.global_id, start_s, end_s, self._rng))
        events.sort(key=lambda ev: ev.start)
        return events

    # ------------------------------------------------------------------
    def jittered_compute(self, work_s: float, rng: Optional[np.random.Generator] = None) -> float:
        """Apply multiplicative execution jitter to a pure compute time."""
        if work_s < 0:
            raise ValueError("work_s must be non-negative")
        if not self.spec.enabled or self.spec.jitter_fraction <= 0 or work_s == 0:
            return work_s
        gen = rng if rng is not None else self._rng
        factor = float(gen.normal(1.0, self.spec.jitter_fraction))
        return work_s * max(factor, 0.5)

    def delay_over(self, core: Core, start_s: float, work_s: float) -> float:
        """Extra wall time added by noise to ``work_s`` seconds of compute.

        The thread starts at ``start_s``; every noise event whose start falls
        inside the (continuously extended) execution window preempts the
        thread for its full duration.

        Returns the *additional* time, i.e. wall time = ``work_s`` + return
        value.
        """
        if work_s < 0:
            raise ValueError("work_s must be non-negative")
        if not self.spec.enabled or work_s == 0.0:
            return 0.0
        # Look ahead over a window generously larger than the work to capture
        # events that land inside the stretched execution.
        horizon = work_s * 1.5 + self.horizon_s
        events = self.events_in(core, start_s, start_s + horizon)
        end = start_s + work_s
        extra = 0.0
        for event in events:
            if event.start < end:
                end += event.duration
                extra += event.duration
            else:
                break
        return extra

    def batch_delays(
        self, work_s, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Vectorised noise delays for a batch of independent compute windows.

        Statistically equivalent to calling :meth:`delay_over` once per entry
        (periodic daemon occurrences + Poisson interrupts), but without the
        per-core phase bookkeeping — the fast campaign paths use this, the
        event-driven path uses :meth:`delay_over`.  ``work_s`` may have any
        shape — the vectorized backend passes ``(n_threads,)`` slices, the
        batched backend one ``(n_iterations, n_threads)`` matrix per shard —
        and every registered source draws for the whole batch in one call;
        the returned delays match the input shape.
        """
        work = np.asarray(work_s, dtype=np.float64)
        if np.any(work < 0):
            raise ValueError("work times must be non-negative")
        if not self.spec.enabled:
            return np.zeros_like(work)
        gen = rng if rng is not None else self._rng
        extra = np.zeros_like(work)
        # each source draws under its own scope when the rng splits draws by
        # purpose (the campaign backend's chunk-invariant PurposeSplitRNG);
        # plain generators pass through maybe_scope untouched, so the other
        # backends' draw sequences — and pinned digests — are unchanged
        from repro.sim.random import maybe_scope

        for index, source in enumerate(self.sources):
            with maybe_scope(gen, "source", index):
                extra = extra + source.batch_extra(work, gen)
        return extra

    # ------------------------------------------------------------------
    def sample_wall_time(
        self,
        core: Core,
        start_s: float,
        work_s: float,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Wall time for ``work_s`` of compute starting at ``start_s`` on ``core``.

        Combines execution jitter and noise preemption; this is the single
        entry point used by the OpenMP execution simulator.
        """
        jittered = self.jittered_compute(work_s, rng=rng)
        return jittered + self.delay_over(core, start_s, jittered)

    def windowed(self, window_s: float = 1.0) -> "WindowedNoiseModel":
        """A :class:`WindowedNoiseModel` over this model's spec, sources and
        generator (per-core pre-generated timelines, see below)."""
        return WindowedNoiseModel(
            self.spec, self._rng, sources=self.sources, window_s=window_s
        )


class _CoreTimeline:
    """Pre-generated noise events of one core: sorted parallel arrays plus
    the horizon up to which the timeline has been drawn."""

    __slots__ = ("starts", "durations", "until")

    def __init__(self) -> None:
        self.starts = np.empty(0, dtype=np.float64)
        self.durations = np.empty(0, dtype=np.float64)
        self.until = 0.0


class WindowedNoiseModel(OSNoiseModel):
    """OS-noise model with per-core pre-generated event timelines.

    The base class draws a fresh event population for *every* query window —
    one set of generator calls per :meth:`~OSNoiseModel.delay_over`, which in
    the event-driven execution path means per chunk per iteration.  This
    subclass instead gives each core a single noise *timeline*, extended in
    fixed ``window_s`` blocks: the first query past the generated horizon
    draws every source's events for the whole next window in one
    ``events_in`` call per source, and subsequent queries are binary searches
    over the cached arrays.  A campaign region of ~25 ms amortises one
    1-second window over ~40 regions of queries.

    Two semantic consequences, both deliberate:

    * a core's noise is one consistent realisation — overlapping query
      windows see the *same* events instead of independent redraws (what the
      per-core clocks already do for time), with the same bounded preemption
      look-ahead as the per-query model;
    * draws happen window-by-window instead of query-by-query, so datasets
      sampled through a windowed model differ bit-wise from the per-query
      model while agreeing in distribution (the event backend re-pinned its
      reference digest when it adopted this model).
    """

    def __init__(
        self,
        spec: Optional[NoiseSpec] = None,
        rng: Optional[np.random.Generator] = None,
        *,
        sources: Optional[Sequence["NoiseSource"]] = None,
        window_s: float = 1.0,
    ):
        super().__init__(spec, rng, sources=sources)
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = float(window_s)
        self._timelines: Dict[object, _CoreTimeline] = {}

    # ------------------------------------------------------------------
    def _timeline(self, core: Core) -> _CoreTimeline:
        timeline = self._timelines.get(core.global_id)
        if timeline is None:
            timeline = self._timelines[core.global_id] = _CoreTimeline()
        return timeline

    def _extend(self, core: Core, timeline: _CoreTimeline, end_s: float) -> None:
        """Draw whole windows until the timeline covers ``end_s``."""
        while timeline.until < end_s:
            window_start = timeline.until
            window_end = window_start + self.window_s
            events: List[NoiseEvent] = []
            for source in self.sources:
                events.extend(
                    source.events_in(
                        core.global_id, window_start, window_end, self._rng
                    )
                )
            if events:
                events.sort(key=lambda ev: ev.start)
                timeline.starts = np.concatenate(
                    (timeline.starts, [ev.start for ev in events])
                )
                timeline.durations = np.concatenate(
                    (timeline.durations, [ev.duration for ev in events])
                )
            timeline.until = window_end

    # ------------------------------------------------------------------
    def events_in(
        self, core: Core, start_s: float, end_s: float
    ) -> List[NoiseEvent]:
        """Cached-timeline view of the events on ``core`` in ``[start_s, end_s)``."""
        if not self.spec.enabled or end_s <= start_s:
            return []
        timeline = self._timeline(core)
        self._extend(core, timeline, end_s)
        lo = int(np.searchsorted(timeline.starts, start_s, side="left"))
        hi = int(np.searchsorted(timeline.starts, end_s, side="left"))
        return [
            NoiseEvent(float(s), float(d))
            for s, d in zip(timeline.starts[lo:hi], timeline.durations[lo:hi])
        ]

    def delay_over(self, core: Core, start_s: float, work_s: float) -> float:
        """Extra wall time from the cached timeline.

        Same detour semantics as the base class — every event whose start
        falls inside the continuously extended execution window preempts for
        its full duration, considering events up to the same bounded
        look-ahead (``work_s * 1.5 + horizon_s``) — but served from the
        timeline, extending it on demand rather than drawing a fresh
        population per call.  The look-ahead bound matters beyond parity: it
        caps timeline growth (and terminates the walk) even for overloaded
        noise populations whose duty cycle reaches 1, where an exact walk
        would never catch up with the stretching window.
        """
        if work_s < 0:
            raise ValueError("work_s must be non-negative")
        if not self.spec.enabled or work_s == 0.0:
            return 0.0
        timeline = self._timeline(core)
        end = start_s + work_s
        horizon_end = start_s + work_s * 1.5 + self.horizon_s
        self._extend(core, timeline, horizon_end)
        extra = 0.0
        index = int(np.searchsorted(timeline.starts, start_s, side="left"))
        n_events = len(timeline.starts)
        while index < n_events:
            start = float(timeline.starts[index])
            if start >= end or start >= horizon_end:
                break
            duration = float(timeline.durations[index])
            end += duration
            extra += duration
            index += 1
        return extra


def total_noise(events: Sequence[NoiseEvent]) -> float:
    """Sum of the durations of a sequence of noise events."""
    return float(sum(event.duration for event in events))
