"""Machine model: cluster topology, per-core clocks and OS noise.

The paper's experiments ran on the Manzano cluster (two 24-core Intel Cascade
Lake sockets per node, 2.90 GHz, Omni-Path interconnect).  This subpackage
models the parts of that platform that shape per-thread timing measurements:

* :class:`~repro.cluster.topology.Cluster` /
  :class:`~repro.cluster.topology.Node` /
  :class:`~repro.cluster.topology.Core` — the physical layout, including a
  ``networkx`` graph used by the network model for hop counts.
* :class:`~repro.cluster.clock.MonotonicClock` — the per-core
  ``clock_gettime(CLOCK_MONOTONIC)`` analogue: monotonic on one core, *not*
  synchronised across cores/sockets (no ``tsc_reliable``), which is exactly
  why the paper measures elapsed compute time instead of comparing raw
  timestamps.
* :class:`~repro.cluster.noise.OSNoiseModel` — periodic daemon activity plus
  random interrupts, after Morari et al.'s quantitative OS-noise analysis
  (the paper's cited source of laggard threads).
* :class:`~repro.cluster.config.MachineConfig` — presets, including
  :func:`~repro.cluster.config.manzano`.
"""

from repro.cluster.clock import ClockSpec, MonotonicClock
from repro.cluster.config import MachineConfig, laptop, manzano
from repro.cluster.noise import (
    NoiseEvent,
    NoiseSourceSpec,
    NoiseSpec,
    OSNoiseModel,
    WindowedNoiseModel,
)
from repro.cluster.topology import Cluster, Core, Node, Socket

__all__ = [
    "Cluster",
    "Node",
    "Socket",
    "Core",
    "MonotonicClock",
    "ClockSpec",
    "OSNoiseModel",
    "WindowedNoiseModel",
    "NoiseSpec",
    "NoiseSourceSpec",
    "NoiseEvent",
    "MachineConfig",
    "manzano",
    "laptop",
]
