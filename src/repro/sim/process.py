"""Generator-based simulated processes.

A process body is a Python generator.  Each ``yield`` hands a command back to
the engine:

>>> def worker(engine):
...     yield Delay(1.0)              # compute for 1 simulated second
...     yield Signal(done_event)      # announce completion
...     value = yield WaitEvent(other) # block until `other` triggers
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.sim.events import Delay, SimEvent, Signal, WaitEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import SimulationEngine


class SimProcess:
    """A coroutine scheduled on a :class:`~repro.sim.engine.SimulationEngine`.

    Attributes
    ----------
    name:
        Human-readable identifier, used in traces and error messages.
    finished:
        ``True`` once the generator has returned.
    result:
        The generator's return value (``StopIteration.value``).
    start_time / finish_time:
        Simulation times at which the body first ran and at which it
        completed.
    """

    __slots__ = (
        "engine",
        "name",
        "_generator",
        "finished",
        "result",
        "start_time",
        "finish_time",
        "done_event",
        "failure",
    )

    def __init__(
        self,
        engine: "SimulationEngine",
        generator: Generator[Any, Any, Any],
        *,
        name: str = "process",
    ) -> None:
        self.engine = engine
        self.name = name
        self._generator = generator
        self.finished = False
        self.result: Any = None
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        #: Triggered (with the process result) when the body returns.
        self.done_event = SimEvent(f"{name}.done")
        #: Exception raised by the body, re-raised by the engine caller.
        self.failure: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def _step_initial(self) -> None:
        self.start_time = self.engine.now
        self._step(None)

    def _step(self, send_value: Any) -> None:
        """Advance the generator by one segment and act on the command."""
        self.engine.record_trace("resume", self.name)
        try:
            command = self._generator.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as exc:  # propagate simulated failures
            self.failure = exc
            self._finish(None)
            raise
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Delay):
            self.engine.schedule(command.duration, lambda: self._step(None))
        elif isinstance(command, WaitEvent):
            event = command.event
            if event.triggered:
                # resume on the next engine tick at the same time to preserve
                # deterministic ordering with other ready processes
                self.engine.schedule(0.0, lambda: self._step(event.value))
            else:
                event.add_waiter(
                    lambda value: self.engine.schedule(0.0, lambda: self._step(value))
                )
        elif isinstance(command, Signal):
            command.event.trigger(command.value, time=self.engine.now)
            self.engine.schedule(0.0, lambda: self._step(None))
        elif command is None:
            # bare `yield`: cooperative re-schedule at the same time
            self.engine.schedule(0.0, lambda: self._step(None))
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported command {command!r}"
            )

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        self.finish_time = self.engine.now
        if not self.done_event.triggered:
            self.done_event.trigger(result, time=self.engine.now)

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> Optional[float]:
        """Simulated wall time spent by the process (``None`` if unfinished)."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"SimProcess({self.name!r}, {state})"
