"""Hierarchical, reproducible random-number streams.

Every stochastic component of the simulation (per-core noise, per-thread cost
jitter, per-walker acceptance in MiniQMC, ...) draws from its own named
stream.  Streams are derived from a root seed with
:class:`numpy.random.SeedSequence` spawning, so

* adding a new component never perturbs the draws of existing components, and
* two campaigns with the same root seed are bit-identical.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Tuple

import numpy as np


def _key_to_int(key: Tuple) -> int:
    """Hash an arbitrary key tuple to a stable 32-bit integer."""
    text = "\x1f".join(str(part) for part in key)
    return zlib.crc32(text.encode("utf-8"))


class RandomStreams:
    """Factory of named, independent ``numpy`` generators.

    Parameters
    ----------
    seed:
        Root seed of the whole campaign.

    Examples
    --------
    >>> streams = RandomStreams(1234)
    >>> g1 = streams.get("minife", "noise", 0)
    >>> g2 = streams.get("minife", "noise", 1)
    >>> g1 is streams.get("minife", "noise", 0)
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._cache: Dict[Tuple, np.random.Generator] = {}

    def get(self, *key) -> np.random.Generator:
        """Return (and cache) the generator for ``key``."""
        key = tuple(key)
        if key not in self._cache:
            child = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(_key_to_int(key),)
            )
            self._cache[key] = np.random.default_rng(child)
        return self._cache[key]

    def fresh(self, *key) -> np.random.Generator:
        """Return a *new* generator for ``key`` (not cached, same seed path).

        Useful when a component needs to replay an identical draw sequence.
        """
        key = tuple(key)
        child = np.random.SeedSequence(entropy=self.seed, spawn_key=(_key_to_int(key),))
        return np.random.default_rng(child)

    def spawn(self, *key) -> "RandomStreams":
        """Derive a child :class:`RandomStreams` namespace for a sub-component."""
        return RandomStreams(self.seed ^ _key_to_int(tuple(key)) ^ 0x9E3779B9)

    def keys(self) -> Iterable[Tuple]:
        """Keys of all streams created so far."""
        return list(self._cache.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={len(self._cache)})"
