"""Hierarchical, reproducible random-number streams.

Every stochastic component of the simulation (per-core noise, per-thread cost
jitter, per-walker acceptance in MiniQMC, ...) draws from its own named
stream.  Streams are derived from a root seed with
:class:`numpy.random.SeedSequence` spawning, so

* adding a new component never perturbs the draws of existing components, and
* two campaigns with the same root seed are bit-identical.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Tuple

import numpy as np


def _key_to_int(key: Tuple) -> int:
    """Hash an arbitrary key tuple to a stable 32-bit integer."""
    text = "\x1f".join(str(part) for part in key)
    return zlib.crc32(text.encode("utf-8"))


class RandomStreams:
    """Factory of named, independent ``numpy`` generators.

    Parameters
    ----------
    seed:
        Root seed of the whole campaign.

    Examples
    --------
    >>> streams = RandomStreams(1234)
    >>> g1 = streams.get("minife", "noise", 0)
    >>> g2 = streams.get("minife", "noise", 1)
    >>> g1 is streams.get("minife", "noise", 0)
    True
    """

    def __init__(self, seed: int = 0, *, _path: Tuple[int, ...] = ()) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self.seed = int(seed)
        self._path: Tuple[int, ...] = tuple(int(part) for part in _path)
        self._root = np.random.SeedSequence(self.seed, spawn_key=self._path)
        self._cache: Dict[Tuple, np.random.Generator] = {}

    @property
    def path(self) -> Tuple[int, ...]:
        """Derivation path of this namespace (empty for a root instance)."""
        return self._path

    def _sequence(self, key: Tuple) -> np.random.SeedSequence:
        return np.random.SeedSequence(
            entropy=self.seed, spawn_key=self._path + (_key_to_int(key),)
        )

    def get(self, *key) -> np.random.Generator:
        """Return (and cache) the generator for ``key``."""
        key = tuple(key)
        if key not in self._cache:
            self._cache[key] = np.random.default_rng(self._sequence(key))
        return self._cache[key]

    def fresh(self, *key) -> np.random.Generator:
        """Return a *new* generator for ``key`` (not cached, same seed path).

        Useful when a component needs to replay an identical draw sequence.
        """
        return np.random.default_rng(self._sequence(tuple(key)))

    def derive(self, *key) -> "RandomStreams":
        """Derive a *named* child namespace along the SeedSequence spawn path.

        Unlike :meth:`spawn` (which folds the key into a new root seed by
        XOR), derivation extends the ``spawn_key`` path, so

        * the child's streams are statistically independent of every stream of
          the parent (and of children derived under other names),
        * ``streams.derive("a").derive("b")`` and ``streams.derive("b")`` can
          never collide, and
        * re-deriving the same name anywhere (e.g. inside a worker process)
          reproduces the exact same streams — the property the parallel shard
          executor relies on for bit-identical campaign results.
        """
        key = tuple(key)
        if not key:
            raise ValueError("derive() requires at least one name component")
        return RandomStreams(self.seed, _path=self._path + (_key_to_int(key),))

    def spawn(self, *key) -> "RandomStreams":
        """Derive a child :class:`RandomStreams` namespace for a sub-component.

        Legacy seed-folding derivation; prefer :meth:`derive`, whose children
        are collision-free by construction.
        """
        return RandomStreams(self.seed ^ _key_to_int(tuple(key)) ^ 0x9E3779B9)

    def keys(self) -> Iterable[Tuple]:
        """Keys of all streams created so far."""
        return list(self._cache.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={len(self._cache)})"
