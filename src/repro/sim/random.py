"""Hierarchical, reproducible random-number streams.

Every stochastic component of the simulation (per-core noise, per-thread cost
jitter, per-walker acceptance in MiniQMC, ...) draws from its own named
stream.  Streams are derived from a root seed with
:class:`numpy.random.SeedSequence` spawning, so

* adding a new component never perturbs the draws of existing components, and
* two campaigns with the same root seed are bit-identical.
"""

from __future__ import annotations

import zlib
from contextlib import contextmanager
from typing import Dict, Iterable, List, Tuple

import numpy as np


def _key_to_int(key: Tuple) -> int:
    """Hash an arbitrary key tuple to a stable 32-bit integer."""
    text = "\x1f".join(str(part) for part in key)
    return zlib.crc32(text.encode("utf-8"))


class RandomStreams:
    """Factory of named, independent ``numpy`` generators.

    Parameters
    ----------
    seed:
        Root seed of the whole campaign.

    Examples
    --------
    >>> streams = RandomStreams(1234)
    >>> g1 = streams.get("minife", "noise", 0)
    >>> g2 = streams.get("minife", "noise", 1)
    >>> g1 is streams.get("minife", "noise", 0)
    True
    """

    def __init__(self, seed: int = 0, *, _path: Tuple[int, ...] = ()) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self.seed = int(seed)
        self._path: Tuple[int, ...] = tuple(int(part) for part in _path)
        self._root = np.random.SeedSequence(self.seed, spawn_key=self._path)
        self._cache: Dict[Tuple, np.random.Generator] = {}

    @property
    def path(self) -> Tuple[int, ...]:
        """Derivation path of this namespace (empty for a root instance)."""
        return self._path

    def _sequence(self, key: Tuple) -> np.random.SeedSequence:
        return np.random.SeedSequence(
            entropy=self.seed, spawn_key=self._path + (_key_to_int(key),)
        )

    def get(self, *key) -> np.random.Generator:
        """Return (and cache) the generator for ``key``."""
        key = tuple(key)
        if key not in self._cache:
            self._cache[key] = np.random.default_rng(self._sequence(key))
        return self._cache[key]

    def fresh(self, *key) -> np.random.Generator:
        """Return a *new* generator for ``key`` (not cached, same seed path).

        Useful when a component needs to replay an identical draw sequence.
        """
        return np.random.default_rng(self._sequence(tuple(key)))

    def derive(self, *key) -> "RandomStreams":
        """Derive a *named* child namespace along the SeedSequence spawn path.

        Unlike :meth:`spawn` (which folds the key into a new root seed by
        XOR), derivation extends the ``spawn_key`` path, so

        * the child's streams are statistically independent of every stream of
          the parent (and of children derived under other names),
        * ``streams.derive("a").derive("b")`` and ``streams.derive("b")`` can
          never collide, and
        * re-deriving the same name anywhere (e.g. inside a worker process)
          reproduces the exact same streams — the property the parallel shard
          executor relies on for bit-identical campaign results.
        """
        key = tuple(key)
        if not key:
            raise ValueError("derive() requires at least one name component")
        return RandomStreams(self.seed, _path=self._path + (_key_to_int(key),))

    def spawn(self, *key) -> "RandomStreams":
        """Derive a child :class:`RandomStreams` namespace for a sub-component.

        Legacy seed-folding derivation; prefer :meth:`derive`, whose children
        are collision-free by construction.
        """
        return RandomStreams(self.seed ^ _key_to_int(tuple(key)) ^ 0x9E3779B9)

    def keys(self) -> Iterable[Tuple]:
        """Keys of all streams created so far."""
        return list(self._cache.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={len(self._cache)})"


#: ``numpy.random.Generator`` drawing methods a :class:`PurposeSplitRNG`
#: proxies.  Each (scope, method, occurrence) triple seeds its own fresh
#: generator, so the set only needs to cover what the simulation draws.
_PROXIED_METHODS = frozenset(
    {
        "random",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "standard_exponential",
        "poisson",
        "pareto",
        "lognormal",
        "gamma",
        "integers",
        "choice",
        "permutation",
    }
)


class PurposeSplitRNG:
    """A drop-in ``Generator`` facade that keys draws by absolute purpose.

    The whole-campaign tensor backend samples every (trial, process) shard
    from one pass over (n_shards, n_iterations, n_threads) arrays — possibly
    in several shard chunks to bound peak memory, possibly with the chunks
    folded by different worker processes.  For every chunking *and* any
    worker assignment to be **bit-identical**, a draw's value must depend on
    nothing but its identity: draw sites are keyed by ``(scope path, method
    name, occurrence)`` and served a **fresh** generator from the underlying
    :class:`RandomStreams` seed path on every occurrence — no generator
    state survives between draw sites, so a chunk's draws depend only on
    which shards it contains, never on what ran before it (or in a sibling
    worker).

    * :meth:`scope` pushes a name onto the scope stack (the backend scopes
      stages like ``"costs"``/``"noise"``, the apps scope each shard, the
      noise model scopes each source index);
    * every proxied method call is numbered *within* its scope entry by
      method name, and the numbering resets each time the scope is
      re-entered — so the second ``poisson`` of a source maps to the same
      stream on every chunking.

    Because keys are stateless, any two scope entries with the same path
    would *replay* identical values — so every shard-varying draw must sit
    inside an absolute ``("shard", trial, process)`` scope, which makes the
    path unique per shard.  :meth:`generator` enforces this: a proxied draw
    outside a shard scope raises ``RuntimeError``, catching campaign draw
    sites that would silently correlate shards (the whole-tensor draws the
    pre-parallel backend used).  Data-dependent draw *sizes* are fine, as is
    skipping draws entirely — per-shard keys never shift a neighbour's
    stream.
    """

    def __init__(self, streams: RandomStreams, *scope) -> None:
        #: the *underived* streams this facade was built from.  Draw sites
        #: that must realize the exact same values as the per-shard backends
        #: (e.g. per-process application state, whose realization feeds every
        #: downstream cost draw) reach through this to the shared per-shard
        #: streams instead of the purpose-split namespace.
        self.root_streams = streams
        self._streams = streams.derive(*scope) if scope else streams
        self._scope: List[Tuple] = []
        self._counts: List[Dict[str, int]] = [{}]

    @contextmanager
    def scope(self, *name):
        """Enter a named draw scope (resets its occurrence numbering)."""
        if not name:
            raise ValueError("scope() requires at least one name component")
        self._scope.append(tuple(name))
        self._counts.append({})
        try:
            yield self
        finally:
            self._scope.pop()
            self._counts.pop()

    def generator(self, method: str) -> np.random.Generator:
        """A fresh generator keyed by ``method``'s occurrence in this scope."""
        if not any(part and part[0] == "shard" for part in self._scope):
            raise RuntimeError(
                "PurposeSplitRNG draw outside a ('shard', trial, process) "
                "scope: stateless shard-keyed streams would replay the same "
                "values for every shard.  Wrap the draw site in "
                "maybe_scope(rng, 'shard', trial, process)."
            )
        counts = self._counts[-1]
        occurrence = counts.get(method, 0)
        counts[method] = occurrence + 1
        key: Tuple = ()
        for part in self._scope:
            key += part
        return self._streams.fresh(*key, method, occurrence)

    def __getattr__(self, name: str):
        if name in _PROXIED_METHODS:

            def draw(*args, _name=name, **kwargs):
                return getattr(self.generator(_name), _name)(*args, **kwargs)

            return draw
        raise AttributeError(
            f"{type(self).__name__} proxies only {sorted(_PROXIED_METHODS)}; "
            f"{name!r} is not a supported drawing method"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PurposeSplitRNG(seed={self._streams.seed}, "
            f"scope={[p for p in self._scope]})"
        )


@contextmanager
def maybe_scope(rng, *name):
    """``rng.scope(*name)`` when supported, else a no-op.

    Lets shared draw sites (the noise model's per-source loop, the apps'
    batch kernels) scope their draws under a :class:`PurposeSplitRNG`
    without changing the byte-for-byte draw sequence of plain
    ``numpy.random.Generator`` callers — existing backends keep their
    pinned digests.
    """
    scope = getattr(rng, "scope", None)
    if scope is None:
        yield rng
    else:
        with scope(*name):
            yield rng
