"""Event primitives for the discrete-event engine.

A simulated process communicates with the engine by *yielding* command
objects.  Three commands exist:

``Delay(dt)``
    Suspend the process for ``dt`` simulated seconds.
``WaitEvent(event)``
    Suspend until ``event`` is triggered.  If the event has already been
    triggered the process resumes immediately (at the current time).
``Signal(event, value)``
    Trigger ``event`` (waking all waiters) and continue without suspending.

:class:`SimEvent` is the one-shot synchronisation object those commands refer
to.  Higher-level primitives (barriers, channels, partitioned-communication
completion flags) are built from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


class SimEvent:
    """A one-shot event that simulated processes can wait on.

    An event starts *untriggered*.  Once :meth:`trigger` is called it stays
    triggered forever and stores an optional payload ``value``.  Waiting on a
    triggered event never blocks.
    """

    __slots__ = ("name", "_triggered", "_value", "_waiters", "trigger_time")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._triggered = False
        self._value: Any = None
        self._waiters: List[Callable[[Any], None]] = []
        #: Simulation time at which the event was triggered (``None`` before).
        self.trigger_time: Optional[float] = None

    @property
    def triggered(self) -> bool:
        """Whether :meth:`trigger` has been called."""
        return self._triggered

    @property
    def value(self) -> Any:
        """Payload passed to :meth:`trigger` (``None`` until triggered)."""
        return self._value

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback`` to run when the event triggers.

        Used by the engine; user code should yield :class:`WaitEvent` instead.
        """
        if self._triggered:
            raise RuntimeError(
                f"cannot add waiter to already-triggered event {self.name!r}"
            )
        self._waiters.append(callback)

    def trigger(self, value: Any = None, *, time: Optional[float] = None) -> None:
        """Trigger the event, waking every registered waiter exactly once."""
        if self._triggered:
            raise RuntimeError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        self.trigger_time = time
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"SimEvent({self.name!r}, {state})"


@dataclass(frozen=True)
class Delay:
    """Command: suspend the yielding process for ``duration`` seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"negative delay: {self.duration}")


@dataclass(frozen=True)
class WaitEvent:
    """Command: suspend the yielding process until ``event`` triggers."""

    event: SimEvent


@dataclass(frozen=True)
class Signal:
    """Command: trigger ``event`` with ``value`` and continue immediately."""

    event: SimEvent
    value: Any = None


@dataclass(order=True)
class _ScheduledCallback:
    """Internal heap entry: a callback to run at ``time``.

    ``seq`` breaks ties so that callbacks scheduled earlier run earlier,
    which keeps the engine deterministic.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
