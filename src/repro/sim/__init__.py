"""Deterministic discrete-event simulation engine.

The engine is the substrate every simulated component (OpenMP threads, MPI
ranks, the network, OS noise daemons) runs on.  It is intentionally small:

* :class:`~repro.sim.engine.SimulationEngine` — the event loop.
* :class:`~repro.sim.process.SimProcess` — a generator-based coroutine
  scheduled on the engine; it yields :class:`~repro.sim.events.Delay`,
  :class:`~repro.sim.events.WaitEvent` or :class:`~repro.sim.events.Signal`
  commands.
* :class:`~repro.sim.events.SimEvent` — a one-shot event processes can wait
  on (used to build barriers, message arrival notifications, ...).
* :class:`~repro.sim.random.RandomStreams` — hierarchical, reproducible
  ``numpy`` RNG streams keyed by component names.

Time is a ``float`` number of **seconds** since the start of the simulation.
Determinism: with identical seeds and identical process creation order every
run produces bit-identical event traces.
"""

from repro.sim.engine import SimulationEngine
from repro.sim.events import Delay, SimEvent, Signal, WaitEvent
from repro.sim.process import SimProcess
from repro.sim.random import RandomStreams

__all__ = [
    "SimulationEngine",
    "SimProcess",
    "SimEvent",
    "Delay",
    "WaitEvent",
    "Signal",
    "RandomStreams",
]
