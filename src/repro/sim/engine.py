"""The discrete-event simulation engine.

The engine owns a priority queue of timestamped callbacks and the notion of
"now".  Simulated processes (:class:`repro.sim.process.SimProcess`) are
generator coroutines driven by the engine; everything else (barriers, network
transfers, OS noise) is expressed through scheduled callbacks and
:class:`~repro.sim.events.SimEvent` objects.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim.events import Delay, SimEvent, Signal, WaitEvent, _ScheduledCallback
from repro.sim.process import SimProcess


class SimulationEngine:
    """Deterministic event loop for the simulated machine.

    Parameters
    ----------
    trace:
        When ``True`` the engine records ``(time, label)`` tuples for every
        process resumption; useful in tests and debugging, off by default to
        keep large campaigns fast.
    """

    def __init__(self, *, trace: bool = False) -> None:
        self._now = 0.0
        self._queue: List[_ScheduledCallback] = []
        self._seq = 0
        self._processes: List[SimProcess] = []
        self._running = False
        self.trace_enabled = trace
        self.trace: List[tuple] = []

    # ------------------------------------------------------------------
    # time & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> _ScheduledCallback:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the heap entry, whose ``cancelled`` flag may be set to drop
        the callback before it fires.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise ValueError(f"non-finite delay: {delay}")
        entry = _ScheduledCallback(self._now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, entry)
        return entry

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> _ScheduledCallback:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        return self.schedule(time - self._now, callback)

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(
        self,
        generator: Generator[Any, Any, Any],
        *,
        name: str = "process",
        start_delay: float = 0.0,
    ) -> SimProcess:
        """Create a :class:`SimProcess` from ``generator`` and start it.

        The process body runs lazily: its first segment executes when the
        event loop reaches ``start_delay``.
        """
        process = SimProcess(self, generator, name=name)
        self._processes.append(process)
        self.schedule(start_delay, process._step_initial)
        return process

    def spawn_all(
        self, generators: Iterable[Generator[Any, Any, Any]], *, prefix: str = "p"
    ) -> List[SimProcess]:
        """Spawn one process per generator, named ``{prefix}{index}``."""
        return [
            self.spawn(gen, name=f"{prefix}{i}") for i, gen in enumerate(generators)
        ]

    @property
    def processes(self) -> List[SimProcess]:
        """All processes ever spawned on this engine."""
        return list(self._processes)

    # ------------------------------------------------------------------
    # event helpers
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> SimEvent:
        """Create a fresh :class:`SimEvent` bound to this engine."""
        return SimEvent(name)

    def trigger(self, event: SimEvent, value: Any = None) -> None:
        """Trigger ``event`` now (records the trigger time)."""
        event.trigger(value, time=self._now)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once simulation time would exceed ``until``.  ``None`` runs
            until the queue drains.
        max_events:
            Safety valve against runaway simulations.

        Returns
        -------
        float
            The simulation time when the loop stopped.
        """
        if self._running:
            raise RuntimeError("engine is already running")
        self._running = True
        try:
            count = 0
            while self._queue:
                entry = self._queue[0]
                if entry.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and entry.time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                if entry.time < self._now - 1e-15:
                    raise RuntimeError(
                        "event queue corrupted: time went backwards "
                        f"({entry.time} < {self._now})"
                    )
                self._now = max(self._now, entry.time)
                entry.callback()
                count += 1
                if count > max_events:
                    raise RuntimeError(
                        f"exceeded max_events={max_events}; "
                        "likely a livelock in a simulated component"
                    )
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_until_complete(self, processes: Iterable[SimProcess]) -> float:
        """Run until every process in ``processes`` has finished."""
        targets = list(processes)
        self.run()
        unfinished = [p for p in targets if not p.finished]
        if unfinished:
            names = ", ".join(p.name for p in unfinished)
            raise RuntimeError(
                f"event queue drained but processes still blocked: {names} "
                "(deadlock in simulated synchronisation)"
            )
        return self._now

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_events(self) -> int:
        """Number of (non-cancelled) callbacks still queued."""
        return sum(1 for entry in self._queue if not entry.cancelled)

    def record_trace(self, *items: Any) -> None:
        """Append a trace record ``(now, *items)`` if tracing is enabled."""
        if self.trace_enabled:
            self.trace.append((self._now, *items))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationEngine(now={self._now:.9f}, "
            f"pending={self.pending_events()}, processes={len(self._processes)})"
        )


def run_simple(generators: Iterable[Generator[Any, Any, Any]]) -> float:
    """Convenience: run a set of generator processes to completion.

    Returns the final simulation time.
    """
    engine = SimulationEngine()
    procs = engine.spawn_all(generators)
    return engine.run_until_complete(procs)
