"""Execution of instrumented ``parallel for nowait`` regions.

This is the simulated counterpart of the paper's Listing 1::

    #pragma omp parallel
    {
        int t = omp_get_thread_num();
        #pragma omp barrier
        clock_gettime(CLOCK_MONOTONIC, &t_start[i][t]);
        #pragma omp for nowait
        for (...) { /* work */ }
        clock_gettime(CLOCK_MONOTONIC, &t_end[i][t]);
        #pragma omp barrier
    }

Two equivalent execution paths are provided:

* :meth:`OpenMPRuntime.run_region` (``detailed=True``) — every thread is a
  process on the discrete-event engine; the entry barrier, per-chunk work,
  noise preemptions and the exit barrier all happen as events.  Used by the
  examples, by small-scale integration tests and by the ``"event"``
  campaign backend (which hands the team a
  :class:`~repro.cluster.noise.WindowedNoiseModel`, so the per-chunk noise
  queries here read a pre-generated per-core timeline instead of drawing
  events query by query).
* :meth:`OpenMPRuntime.run_region` (``detailed=False``, default) — the same
  schedule/cost/noise models evaluated in closed form, without the engine.
  Used by the full-scale campaign.  For static schedules with a fixed noise
  seed the two paths produce identical per-thread compute times (asserted in
  ``tests/integration/test_paths_agree.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.openmp.barrier import Barrier
from repro.openmp.forloop import LoopExecution, ThreadExecution
from repro.openmp.schedule import LoopSchedule, StaticSchedule
from repro.openmp.team import ThreadTeam
from repro.sim.engine import SimulationEngine
from repro.sim.events import Delay


@dataclass(frozen=True)
class RegionTiming:
    """Compact raw-timestamp view of one executed region (what a tracing
    tool would dump): per-thread start/end monotonic readings in ns."""

    region: str
    iteration: int
    start_ns: np.ndarray
    end_ns: np.ndarray

    @property
    def compute_times_s(self) -> np.ndarray:
        """Derived per-thread compute times in seconds."""
        return (self.end_ns - self.start_ns) * 1.0e-9


class OpenMPRuntime:
    """Simulated OpenMP runtime bound to one thread team.

    Parameters
    ----------
    team:
        The process's thread team (cores, clocks, noise).
    engine:
        Optional event engine; required only for the detailed path.  A fresh
        engine is created lazily when needed.
    fork_overhead_s / join_overhead_s:
        Cost of entering/leaving the parallel region (libgomp-style
        microsecond-scale overheads); included for realism, cancelled out by
        the compute-time derivation exactly as on real hardware.
    """

    def __init__(
        self,
        team: ThreadTeam,
        engine: Optional[SimulationEngine] = None,
        *,
        fork_overhead_s: float = 2.0e-6,
        join_overhead_s: float = 1.0e-6,
    ) -> None:
        self.team = team
        self._engine = engine
        self.fork_overhead_s = fork_overhead_s
        self.join_overhead_s = join_overhead_s
        #: physical time at which the next region starts (advances as regions run)
        self.current_time = 0.0
        #: executed regions, in order
        self.history: List[LoopExecution] = []

    # ------------------------------------------------------------------
    @property
    def engine(self) -> SimulationEngine:
        if self._engine is None:
            self._engine = SimulationEngine()
        return self._engine

    @property
    def n_threads(self) -> int:
        return self.team.n_threads

    # ------------------------------------------------------------------
    def run_region(
        self,
        item_costs: Sequence[float],
        *,
        schedule: Optional[LoopSchedule] = None,
        region: str = "compute",
        iteration: int = 0,
        detailed: bool = False,
    ) -> LoopExecution:
        """Execute one instrumented ``parallel for nowait`` region.

        Parameters
        ----------
        item_costs:
            Pure compute cost (seconds) of every loop iteration.
        schedule:
            Loop schedule; defaults to ``static`` (the Mantevo default).
        region, iteration:
            Labels recorded in the result.
        detailed:
            Run on the discrete-event engine instead of the closed form.
        """
        sched = schedule if schedule is not None else StaticSchedule()
        costs = np.asarray(item_costs, dtype=np.float64)
        if detailed:
            execution = self._run_detailed(costs, sched, region, iteration)
        else:
            execution = self._run_fast(costs, sched, region, iteration)
        self.history.append(execution)
        # next region begins after the last thread finished plus the join cost
        self.current_time = execution.region_end + self.join_overhead_s
        return execution

    # ------------------------------------------------------------------
    # closed-form path
    # ------------------------------------------------------------------
    def _run_fast(
        self,
        costs: np.ndarray,
        schedule: LoopSchedule,
        region: str,
        iteration: int,
    ) -> LoopExecution:
        outcome = schedule.simulate(costs, self.n_threads)
        region_start = self.current_time + self.fork_overhead_s
        execution = LoopExecution(
            region=region, iteration=iteration, region_start=region_start
        )
        end_times = np.empty(self.n_threads)
        for thread in self.team.threads:
            work = float(outcome.busy_time[thread.thread_id])
            jittered = self.team.noise.jittered_compute(work, rng=self.team.rng)
            noise_extra = self.team.noise.delay_over(thread.core, region_start, jittered)
            wall = jittered + noise_extra
            start_ns = thread.read_clock_ns(region_start)
            end_time = region_start + wall
            end_ns = thread.read_clock_ns(end_time)
            end_times[thread.thread_id] = end_time
            execution.threads.append(
                ThreadExecution(
                    thread_id=thread.thread_id,
                    items=outcome.assignment[thread.thread_id],
                    work_s=work,
                    noise_s=wall - work,
                    start_time=region_start,
                    end_time=end_time,
                    start_ns=start_ns,
                    end_ns=end_ns,
                )
            )
        execution.region_end = float(end_times.max())
        return execution

    # ------------------------------------------------------------------
    # discrete-event path
    # ------------------------------------------------------------------
    def _run_detailed(
        self,
        costs: np.ndarray,
        schedule: LoopSchedule,
        region: str,
        iteration: int,
    ) -> LoopExecution:
        engine = self.engine
        n_threads = self.n_threads
        entry_barrier = Barrier(engine, n_threads, name=f"{region}.entry")
        exit_barrier = Barrier(engine, n_threads, name=f"{region}.exit")
        static_assignment = schedule.static_assignment(len(costs), n_threads)
        shared_state = {"cursor": 0}
        records: List[Optional[ThreadExecution]] = [None] * n_threads
        region_start = self.current_time + self.fork_overhead_s

        def thread_body(thread_id: int) -> Generator:
            thread = self.team.thread(thread_id)
            # wait until the fork point of this region
            if engine.now < region_start:
                yield Delay(region_start - engine.now)
            yield from entry_barrier.wait(thread_id)
            start_time = engine.now
            start_ns = thread.read_clock_ns(start_time)
            total_work = 0.0
            total_noise = 0.0
            executed: List[np.ndarray] = []
            if static_assignment is not None:
                my_items = static_assignment[thread_id]
                chunks = [my_items] if len(my_items) else []
            else:
                chunks = None  # dynamic: pull from the shared cursor below
            while True:
                if chunks is not None:
                    if not chunks:
                        break
                    items = chunks.pop(0)
                else:
                    cursor = shared_state["cursor"]
                    if cursor >= len(costs):
                        break
                    chunk_size = getattr(schedule, "chunk", 1) or 1
                    items = np.arange(cursor, min(cursor + chunk_size, len(costs)))
                    shared_state["cursor"] = cursor + len(items)
                work = float(costs[items].sum())
                jittered = self.team.noise.jittered_compute(work, rng=self.team.rng)
                noise_extra = self.team.noise.delay_over(
                    thread.core, engine.now, jittered
                )
                executed.append(items)
                total_work += work
                total_noise += (jittered - work) + noise_extra
                if jittered + noise_extra > 0:
                    yield Delay(jittered + noise_extra)
            end_time = engine.now
            end_ns = thread.read_clock_ns(end_time)
            records[thread_id] = ThreadExecution(
                thread_id=thread_id,
                items=(
                    np.concatenate(executed)
                    if executed
                    else np.empty(0, dtype=np.int64)
                ),
                work_s=total_work,
                noise_s=total_noise,
                start_time=start_time,
                end_time=end_time,
                start_ns=start_ns,
                end_ns=end_ns,
            )
            yield from exit_barrier.wait(thread_id)

        processes = [
            engine.spawn(thread_body(t), name=f"{region}.it{iteration}.t{t}")
            for t in range(n_threads)
        ]
        engine.run_until_complete(processes)

        execution = LoopExecution(
            region=region, iteration=iteration, region_start=region_start
        )
        for record in records:
            assert record is not None  # every thread ran to completion
            execution.threads.append(record)
        execution.region_end = max(rec.end_time for rec in execution.threads)
        return execution

    # ------------------------------------------------------------------
    def timings(self) -> List[RegionTiming]:
        """Raw-timestamp view of every executed region (trace-file style)."""
        result = []
        for execution in self.history:
            result.append(
                RegionTiming(
                    region=execution.region,
                    iteration=execution.iteration,
                    start_ns=np.array([t.start_ns for t in execution.threads]),
                    end_ns=np.array([t.end_ns for t in execution.threads]),
                )
            )
        return result
