"""Result records of one executed ``parallel for nowait`` region."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class ThreadExecution:
    """What one thread did inside a single loop region.

    All times are physical simulation times in seconds; ``start_ns`` /
    ``end_ns`` are the raw monotonic-clock readings the instrumentation layer
    records (which are **not** comparable across threads — the derived
    ``compute time`` is).
    """

    thread_id: int
    items: np.ndarray
    work_s: float
    noise_s: float
    start_time: float
    end_time: float
    start_ns: int
    end_ns: int

    @property
    def wall_s(self) -> float:
        """Physical elapsed time of the thread's loop body."""
        return self.end_time - self.start_time

    @property
    def compute_time_s(self) -> float:
        """The paper's derived metric: elapsed time from its own clock."""
        return (self.end_ns - self.start_ns) * 1.0e-9


@dataclass
class LoopExecution:
    """All threads' executions for one region instance (one iteration).

    Attributes
    ----------
    region:
        Name of the instrumented compute region.
    iteration:
        Application iteration index.
    threads:
        Per-thread execution records, indexed by thread id.
    region_start / region_end:
        Physical times at which the first thread entered (post-barrier) and
        the last thread left the loop body.
    """

    region: str
    iteration: int
    threads: List[ThreadExecution] = field(default_factory=list)
    region_start: float = 0.0
    region_end: float = 0.0

    @property
    def n_threads(self) -> int:
        return len(self.threads)

    def compute_times_s(self) -> np.ndarray:
        """Per-thread derived compute times (the paper's arrival estimate)."""
        return np.array([t.compute_time_s for t in self.threads])

    def wall_times_s(self) -> np.ndarray:
        """Per-thread physical elapsed times (ground truth, for validation)."""
        return np.array([t.wall_s for t in self.threads])

    def arrival_spread_s(self) -> float:
        """Latest minus earliest thread completion."""
        walls = self.wall_times_s()
        return float(walls.max() - walls.min())

    def reclaimable_time_s(self) -> float:
        """Σ over threads of (latest arrival − this thread's arrival)."""
        walls = self.wall_times_s()
        return float(np.sum(walls.max() - walls))
