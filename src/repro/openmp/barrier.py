"""A reusable barrier for simulated thread teams.

The instrumentation pattern in the paper's Listing 1 brackets the timed loop
with two ``#pragma omp barrier`` directives: one *before* reading the start
timestamps (so all threads start together — this is what makes elapsed time an
estimate of arrival time) and the implicit one at the end of the parallel
region.  :class:`Barrier` provides those semantics on the event engine and
also records, per generation, when each participant arrived — which tests use
to verify barrier-induced idle time equals the reclaimable-time metric.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.sim.engine import SimulationEngine
from repro.sim.events import SimEvent, WaitEvent


class Barrier:
    """A cyclic barrier for ``n_threads`` simulated threads.

    Usage inside a process generator::

        yield from barrier.wait(thread_id)
    """

    def __init__(self, engine: SimulationEngine, n_threads: int, name: str = "barrier"):
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.engine = engine
        self.n_threads = n_threads
        self.name = name
        self._generation = 0
        self._arrived = 0
        self._release: SimEvent = engine.event(f"{name}.gen0")
        #: arrival times per generation: ``arrival_times[gen][thread] = t``
        self.arrival_times: List[Dict[int, float]] = [{}]
        #: release times per generation
        self.release_times: List[Optional[float]] = [None]

    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Number of completed barrier episodes."""
        return self._generation

    def wait(self, thread_id: int) -> Generator:
        """Generator to be delegated to (``yield from``) by a thread process."""
        generation = self._generation
        self.arrival_times[generation][thread_id] = self.engine.now
        self._arrived += 1
        release = self._release
        if self._arrived == self.n_threads:
            # last arrival releases everyone and rolls the barrier over
            self.release_times[generation] = self.engine.now
            self._generation += 1
            self._arrived = 0
            self._release = self.engine.event(f"{self.name}.gen{self._generation}")
            self.arrival_times.append({})
            self.release_times.append(None)
            release.trigger(generation, time=self.engine.now)
        else:
            yield WaitEvent(release)
        return generation

    # ------------------------------------------------------------------
    def idle_time(self, generation: int) -> Dict[int, float]:
        """Per-thread wait time (release − arrival) for one episode."""
        release = self.release_times[generation]
        if release is None:
            raise ValueError(f"barrier generation {generation} has not released")
        return {
            thread: release - arrival
            for thread, arrival in self.arrival_times[generation].items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Barrier({self.name!r}, n={self.n_threads}, "
            f"generation={self._generation}, waiting={self._arrived})"
        )
