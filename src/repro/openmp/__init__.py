"""Simulated OpenMP runtime.

Reproduces the execution structure the paper instruments (Listing 1): a
``parallel`` region containing a barrier, a timestamp, a ``for nowait`` loop
and a closing timestamp/barrier.  The pieces:

* :class:`~repro.openmp.schedule.StaticSchedule` /
  :class:`~repro.openmp.schedule.DynamicSchedule` /
  :class:`~repro.openmp.schedule.GuidedSchedule` — loop iteration-to-thread
  assignment policies (OpenMP ``schedule(...)`` clauses).
* :class:`~repro.openmp.barrier.Barrier` — a reusable barrier on the
  discrete-event engine.
* :class:`~repro.openmp.team.ThreadTeam` — the thread pool of one process,
  pinned to cores.
* :class:`~repro.openmp.runtime.OpenMPRuntime` — executes instrumented
  ``parallel for nowait`` regions, either on the event engine (detailed path)
  or through the closed-form scheduler simulation (fast path); both paths use
  the same cost/noise models.
"""

from repro.openmp.barrier import Barrier
from repro.openmp.forloop import LoopExecution, ThreadExecution
from repro.openmp.runtime import OpenMPRuntime, RegionTiming
from repro.openmp.schedule import (
    DynamicSchedule,
    GuidedSchedule,
    LoopSchedule,
    StaticSchedule,
    schedule_from_name,
)
from repro.openmp.team import ThreadTeam

__all__ = [
    "Barrier",
    "ThreadTeam",
    "OpenMPRuntime",
    "RegionTiming",
    "LoopExecution",
    "ThreadExecution",
    "LoopSchedule",
    "StaticSchedule",
    "DynamicSchedule",
    "GuidedSchedule",
    "schedule_from_name",
]
