"""OpenMP loop schedules.

A schedule maps loop iterations (work items) to threads.  Two interfaces are
exposed because the execution simulator has two paths:

* :meth:`LoopSchedule.static_assignment` — for schedules whose assignment is
  known before execution (``static`` and ``static,chunk``), return the item
  indices of every thread.
* :meth:`LoopSchedule.simulate` — for work-stealing-style schedules
  (``dynamic``, ``guided``) the assignment depends on execution order; the
  closed-form simulation replays the "grab the next chunk when idle" policy
  against the per-item cost vector and returns both the per-thread busy time
  and the realised assignment.

The default for the proxy applications is ``static`` — the OpenMP default for
``parallel for`` in the Mantevo apps the paper instruments — which is exactly
what creates MiniFE's deterministic imbalance (200 planes over 48 threads).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sums of contiguous blocks, in one ``np.add.reduceat`` call.

    ``offsets`` has ``n_segments + 1`` monotone entries covering
    ``values[offsets[0]:offsets[-1]]``; segment ``k`` is
    ``values[offsets[k]:offsets[k+1]]``.  Empty segments (``offsets[k] ==
    offsets[k+1]``) sum to zero — ``np.add.reduceat`` alone would return the
    element *at* the boundary for those, so they are masked out explicitly.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.diff(offsets)
    if np.any(sizes < 0):
        raise ValueError("offsets must be monotonically non-decreasing")
    out = np.zeros(len(sizes), dtype=np.float64)
    nonempty = sizes > 0
    if nonempty.any():
        # slice to the covered range (reduceat would otherwise fold any
        # tail beyond offsets[-1] into the last segment); dropping empty
        # segments keeps the remaining starts strictly increasing and
        # contiguous, exactly what reduceat expects
        arr = np.asarray(values, dtype=np.float64)[: offsets[-1]]
        out[nonempty] = np.add.reduceat(arr, offsets[:-1][nonempty])
    return out


def segment_sums_2d(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Row-wise :func:`segment_sums` of a 2-D matrix, in one ``reduceat``.

    ``values`` has shape ``(n_rows, n_values)``; ``offsets`` addresses
    segments along the last axis exactly as in :func:`segment_sums`, shared
    by every row.  Returns ``(n_rows, n_segments)``.  Each segment is summed
    left-to-right, so every row matches what :func:`segment_sums` returns
    for it — this is what keeps the batched schedule kernels bit-identical
    to their per-iteration counterparts.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.diff(offsets)
    if np.any(sizes < 0):
        raise ValueError("offsets must be monotonically non-decreasing")
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("values must be a 2-D matrix (rows x items)")
    out = np.zeros((arr.shape[0], len(sizes)), dtype=np.float64)
    nonempty = sizes > 0
    if nonempty.any():
        out[:, nonempty] = np.add.reduceat(
            arr[:, : offsets[-1]], offsets[:-1][nonempty], axis=1
        )
    return out


@lru_cache(maxsize=1024)
def _static_block_offsets(n_items: int, n_threads: int) -> np.ndarray:
    """Memoized boundaries of the chunk-less static split (read-only).

    The per-iteration execution paths (event backend, ``base_thread_times``)
    ask for the same ``(n_items, n_threads)`` split every call; the answer
    never changes, so it is computed once and shared.
    """
    base = n_items // n_threads
    remainder = n_items % n_threads
    sizes = np.full(n_threads, base, dtype=np.int64)
    sizes[:remainder] += 1
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    offsets.setflags(write=False)
    return offsets


@lru_cache(maxsize=1024)
def _static_assignment_cached(
    n_items: int, n_threads: int, chunk: Optional[int]
) -> Tuple[np.ndarray, ...]:
    """Memoized static item-to-thread assignment (read-only arrays)."""
    indices = np.arange(n_items)
    if chunk is None:
        offsets = _static_block_offsets(n_items, n_threads)
        parts = [indices[offsets[t] : offsets[t + 1]] for t in range(n_threads)]
    else:
        chunks = [
            indices[start : start + chunk] for start in range(0, n_items, chunk)
        ]
        dealt: List[List[np.ndarray]] = [[] for _ in range(n_threads)]
        for idx, piece in enumerate(chunks):
            dealt[idx % n_threads].append(piece)
        parts = [
            np.concatenate(p) if p else np.empty(0, dtype=np.int64) for p in dealt
        ]
    for part in parts:
        part.setflags(write=False)
    return tuple(parts)


@dataclass
class ScheduleOutcome:
    """Result of replaying a schedule against a per-item cost vector.

    Attributes
    ----------
    assignment:
        ``assignment[t]`` is the array of item indices executed by thread ``t``
        in execution order.
    busy_time:
        Total compute time per thread (sum of its items' costs).
    chunks:
        The chunks handed out, as ``(thread, start_item, n_items)`` tuples in
        hand-out order (useful for tests and traces).
    """

    assignment: List[np.ndarray]
    busy_time: np.ndarray
    chunks: List[Tuple[int, int, int]]


class LoopSchedule(ABC):
    """Abstract iteration-to-thread assignment policy."""

    #: schedule kind string, e.g. ``"static"``
    kind: str = "abstract"

    @abstractmethod
    def simulate(self, costs: np.ndarray, n_threads: int) -> ScheduleOutcome:
        """Replay the schedule on ``costs`` (one entry per loop iteration)."""

    def simulate_batch(self, costs: np.ndarray, n_threads: int) -> np.ndarray:
        """Per-thread busy time of many independent loop instances at once.

        ``costs`` has shape ``(n_instances, n_items)`` — one row per
        application iteration of a campaign shard; the return value is the
        ``(n_instances, n_threads)`` busy-time matrix.  The base
        implementation replays each row through :meth:`simulate` (required
        for work-queue schedules, whose assignment depends on the realised
        costs); schedules with cost-independent assignments override this
        with a closed-form fold over the whole matrix.  Every row is
        bit-identical to ``simulate(costs[i], n_threads).busy_time``.
        """
        arr = self._validate_batch(costs, n_threads)
        busy = np.empty((arr.shape[0], n_threads), dtype=np.float64)
        for i in range(arr.shape[0]):
            busy[i] = self.simulate(arr[i], n_threads).busy_time
        return busy

    def static_assignment(
        self, n_items: int, n_threads: int
    ) -> Optional[List[np.ndarray]]:
        """Assignment independent of costs, or ``None`` if execution-dependent."""
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(costs: np.ndarray, n_threads: int) -> np.ndarray:
        arr = np.asarray(costs, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("costs must be a 1-D array (one entry per iteration)")
        if np.any(arr < 0):
            raise ValueError("per-iteration costs must be non-negative")
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        return arr

    @staticmethod
    def _validate_batch(costs: np.ndarray, n_threads: int) -> np.ndarray:
        arr = np.asarray(costs, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(
                "batch costs must be a 2-D matrix (instances x loop items)"
            )
        if np.any(arr < 0):
            raise ValueError("per-iteration costs must be non-negative")
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        return arr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class StaticSchedule(LoopSchedule):
    """``schedule(static[, chunk])``.

    Without a chunk size the iterations are divided into ``n_threads``
    contiguous blocks of near-equal length (earlier threads get the remainder,
    as mainstream OpenMP runtimes do).  With a chunk size, chunks are dealt
    round-robin.
    """

    kind = "static"

    def __init__(self, chunk: Optional[int] = None) -> None:
        if chunk is not None and chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.chunk = chunk

    @staticmethod
    def _block_offsets(n_items: int, n_threads: int) -> np.ndarray:
        """Boundaries of the ``n_threads`` contiguous near-equal blocks —
        the single source of the chunk-less split policy, shared by
        :meth:`static_assignment`, :meth:`simulate` and
        :meth:`simulate_batch`.  Memoized (read-only array)."""
        return _static_block_offsets(int(n_items), int(n_threads))

    def static_assignment(self, n_items: int, n_threads: int) -> List[np.ndarray]:
        """Item indices per thread.  Memoized per ``(n_items, n_threads,
        chunk)``; the returned arrays are shared and read-only."""
        if n_items < 0:
            raise ValueError("n_items must be non-negative")
        return list(_static_assignment_cached(int(n_items), int(n_threads), self.chunk))

    def _chunk_offsets(self, n_items: int) -> np.ndarray:
        """Segment boundaries of the round-robin chunk decomposition."""
        starts = np.arange(0, n_items, self.chunk, dtype=np.int64)
        return np.concatenate((starts, [n_items]))

    def simulate(self, costs: np.ndarray, n_threads: int) -> ScheduleOutcome:
        arr = self._validate(costs, n_threads)
        assignment = self.static_assignment(len(arr), n_threads)
        if self.chunk is None:
            # contiguous blocks: one vectorised reduceat instead of a
            # per-thread Python summation loop
            busy = segment_sums(arr, self._block_offsets(len(arr), n_threads))
        else:
            # round-robin chunks: per-chunk sums via reduceat, scattered to
            # their dealt thread
            chunk_sums = segment_sums(arr, self._chunk_offsets(len(arr)))
            busy = np.zeros(n_threads)
            np.add.at(busy, np.arange(len(chunk_sums)) % n_threads, chunk_sums)
        chunks = [
            (t, int(idx[0]), len(idx)) for t, idx in enumerate(assignment) if len(idx)
        ]
        return ScheduleOutcome(assignment=assignment, busy_time=busy, chunks=chunks)

    def simulate_batch(self, costs: np.ndarray, n_threads: int) -> np.ndarray:
        """Closed-form batch kernel: the assignment is cost-independent, so
        the whole ``(n_instances, n_items)`` matrix folds through one
        row-wise ``reduceat`` instead of ``n_instances`` replays."""
        arr = self._validate_batch(costs, n_threads)
        n_items = arr.shape[1]
        if self.chunk is None:
            return segment_sums_2d(arr, self._block_offsets(n_items, n_threads))
        chunk_sums = segment_sums_2d(arr, self._chunk_offsets(n_items))
        busy = np.zeros((arr.shape[0], n_threads), dtype=np.float64)
        threads_of = np.arange(chunk_sums.shape[1]) % n_threads
        np.add.at(
            busy,
            (np.arange(arr.shape[0])[:, None], threads_of[None, :]),
            chunk_sums,
        )
        return busy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaticSchedule(chunk={self.chunk})"


class _WorkQueueSchedule(LoopSchedule):
    """Shared machinery for dynamic/guided: idle threads grab the next chunk."""

    def _chunk_sizes(self, n_items: int, n_threads: int) -> List[int]:
        raise NotImplementedError

    def simulate(self, costs: np.ndarray, n_threads: int) -> ScheduleOutcome:
        arr = self._validate(costs, n_threads)
        n_items = len(arr)
        sizes = self._chunk_sizes(n_items, n_threads)
        # clamp the chunk boundaries to the item count and pre-sum every
        # chunk in one vectorised reduceat
        bounds = np.minimum(np.concatenate(([0], np.cumsum(sizes))), n_items)
        chunk_costs = segment_sums(arr, bounds)
        # priority queue of (available_time, thread); ties broken by thread id
        heap = [(0.0, t) for t in range(n_threads)]
        heapq.heapify(heap)
        assignment: List[List[np.ndarray]] = [[] for _ in range(n_threads)]
        busy = np.zeros(n_threads)
        chunks: List[Tuple[int, int, int]] = []
        for k in range(len(sizes)):
            cursor, end = int(bounds[k]), int(bounds[k + 1])
            if end <= cursor:
                break
            available, thread = heapq.heappop(heap)
            cost = float(chunk_costs[k])
            assignment[thread].append(np.arange(cursor, end))
            busy[thread] += cost
            chunks.append((thread, cursor, end - cursor))
            heapq.heappush(heap, (available + cost, thread))
        merged = [
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
            for parts in assignment
        ]
        return ScheduleOutcome(assignment=merged, busy_time=busy, chunks=chunks)


class DynamicSchedule(_WorkQueueSchedule):
    """``schedule(dynamic[, chunk])`` — fixed-size chunks grabbed on demand."""

    kind = "dynamic"

    def __init__(self, chunk: int = 1) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.chunk = chunk

    def _chunk_sizes(self, n_items: int, n_threads: int) -> List[int]:
        n_chunks = (n_items + self.chunk - 1) // self.chunk
        return [self.chunk] * n_chunks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicSchedule(chunk={self.chunk})"


class GuidedSchedule(_WorkQueueSchedule):
    """``schedule(guided[, chunk])`` — geometrically shrinking chunks."""

    kind = "guided"

    def __init__(self, min_chunk: int = 1) -> None:
        if min_chunk < 1:
            raise ValueError("min_chunk must be >= 1")
        self.min_chunk = min_chunk

    def _chunk_sizes(self, n_items: int, n_threads: int) -> List[int]:
        sizes: List[int] = []
        remaining = n_items
        while remaining > 0:
            size = max(self.min_chunk, remaining // (2 * n_threads))
            size = min(size, remaining)
            sizes.append(size)
            remaining -= size
        return sizes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GuidedSchedule(min_chunk={self.min_chunk})"


def schedule_from_name(name: str, chunk: Optional[int] = None) -> LoopSchedule:
    """Build a schedule from an OpenMP-style clause string.

    ``"static"``, ``"static,8"``, ``"dynamic"``, ``"dynamic,4"``, ``"guided"``.
    """
    text = name.strip().lower()
    if "," in text:
        text, chunk_text = text.split(",", 1)
        chunk = int(chunk_text)
    text = text.strip()
    if text == "static":
        return StaticSchedule(chunk)
    if text == "dynamic":
        return DynamicSchedule(chunk if chunk is not None else 1)
    if text == "guided":
        return GuidedSchedule(chunk if chunk is not None else 1)
    raise ValueError(f"unknown schedule kind {name!r}")
