"""OpenMP loop schedules.

A schedule maps loop iterations (work items) to threads.  Two interfaces are
exposed because the execution simulator has two paths:

* :meth:`LoopSchedule.static_assignment` — for schedules whose assignment is
  known before execution (``static`` and ``static,chunk``), return the item
  indices of every thread.
* :meth:`LoopSchedule.simulate` — for work-stealing-style schedules
  (``dynamic``, ``guided``) the assignment depends on execution order; the
  closed-form simulation replays the "grab the next chunk when idle" policy
  against the per-item cost vector and returns both the per-thread busy time
  and the realised assignment.

The default for the proxy applications is ``static`` — the OpenMP default for
``parallel for`` in the Mantevo apps the paper instruments — which is exactly
what creates MiniFE's deterministic imbalance (200 planes over 48 threads).
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


def scatter_add_2d(
    target: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    *,
    unique: bool = False,
) -> np.ndarray:
    """``target[rows, cols] += values`` with explicit duplicate semantics.

    The campaign kernels scatter per-chunk sums into ``(instances, threads)``
    matrices; this is the one place that codifies how.  With ``unique=True``
    the caller asserts every ``(row, col)`` pair occurs at most once, so the
    buffered fancy-indexed add is safe — and much faster than ``np.add.at``
    (the work-queue kernel's per-chunk scatter picks exactly one thread per
    row).  With the default ``unique=False`` duplicates accumulate through
    the unbuffered ``np.add.at`` (the round-robin static kernel deals many
    chunks to the same thread).  ``rows``/``cols`` may broadcast against
    ``values``.  Returns ``target`` (mutated in place).

    Defined here (a leaf module, like :func:`segment_sums`) and re-exported
    by :mod:`repro.core.aggregation` for the analysis layer.
    """
    if unique:
        target[rows, cols] += values
    else:
        np.add.at(target, (rows, cols), values)
    return target


def segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sums of contiguous blocks, in one ``np.add.reduceat`` call.

    ``offsets`` has ``n_segments + 1`` monotone entries covering
    ``values[offsets[0]:offsets[-1]]``; segment ``k`` is
    ``values[offsets[k]:offsets[k+1]]``.  Empty segments (``offsets[k] ==
    offsets[k+1]``) sum to zero — ``np.add.reduceat`` alone would return the
    element *at* the boundary for those, so they are masked out explicitly.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.diff(offsets)
    if np.any(sizes < 0):
        raise ValueError("offsets must be monotonically non-decreasing")
    out = np.zeros(len(sizes), dtype=np.float64)
    nonempty = sizes > 0
    if nonempty.any():
        # slice to the covered range (reduceat would otherwise fold any
        # tail beyond offsets[-1] into the last segment); dropping empty
        # segments keeps the remaining starts strictly increasing and
        # contiguous, exactly what reduceat expects
        arr = np.asarray(values, dtype=np.float64)[: offsets[-1]]
        out[nonempty] = np.add.reduceat(arr, offsets[:-1][nonempty])
    return out


def segment_sums_2d(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Row-wise :func:`segment_sums` of a 2-D matrix, in one ``reduceat``.

    ``values`` has shape ``(n_rows, n_values)``; ``offsets`` addresses
    segments along the last axis exactly as in :func:`segment_sums`, shared
    by every row.  Returns ``(n_rows, n_segments)``.  Each segment is summed
    left-to-right, so every row matches what :func:`segment_sums` returns
    for it — this is what keeps the batched schedule kernels bit-identical
    to their per-iteration counterparts.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.diff(offsets)
    if np.any(sizes < 0):
        raise ValueError("offsets must be monotonically non-decreasing")
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("values must be a 2-D matrix (rows x items)")
    out = np.zeros((arr.shape[0], len(sizes)), dtype=np.float64)
    nonempty = sizes > 0
    if nonempty.any():
        out[:, nonempty] = np.add.reduceat(
            arr[:, : offsets[-1]], offsets[:-1][nonempty], axis=1
        )
    return out


def segment_sums_3d(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """:func:`segment_sums_2d` with a leading shard axis, in one ``reduceat``.

    ``values`` has shape ``(n_shards, n_rows, n_values)`` — a whole
    campaign's per-item costs at once; ``offsets`` addresses segments along
    the last axis exactly as in :func:`segment_sums`, shared by every
    (shard, row) plane.  Returns ``(n_shards, n_rows, n_segments)``.  Each
    plane is summed left-to-right, so ``out[s]`` is bit-identical to
    ``segment_sums_2d(values[s], offsets)`` — the property that keeps the
    campaign backend's whole-tensor schedule fold bit-identical to the
    per-shard batched kernels.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.diff(offsets)
    if np.any(sizes < 0):
        raise ValueError("offsets must be monotonically non-decreasing")
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 3:
        raise ValueError("values must be a 3-D tensor (shards x rows x items)")
    out = np.zeros((arr.shape[0], arr.shape[1], len(sizes)), dtype=np.float64)
    nonempty = sizes > 0
    if nonempty.any():
        out[:, :, nonempty] = np.add.reduceat(
            arr[:, :, : offsets[-1]], offsets[:-1][nonempty], axis=2
        )
    return out


@lru_cache(maxsize=1024)
def _static_block_offsets(n_items: int, n_threads: int) -> np.ndarray:
    """Memoized boundaries of the chunk-less static split (read-only).

    The per-iteration execution paths (event backend, ``base_thread_times``)
    ask for the same ``(n_items, n_threads)`` split every call; the answer
    never changes, so it is computed once and shared.
    """
    base = n_items // n_threads
    remainder = n_items % n_threads
    sizes = np.full(n_threads, base, dtype=np.int64)
    sizes[:remainder] += 1
    offsets = np.concatenate(([0], np.cumsum(sizes)))
    offsets.setflags(write=False)
    return offsets


@lru_cache(maxsize=1024)
def _dynamic_chunk_layout(n_items: int, chunk: int) -> Tuple[np.ndarray, np.ndarray]:
    """Memoized ``(sizes, bounds)`` of the dynamic chunk decomposition.

    ``sizes`` are the hand-out chunk lengths; ``bounds`` are the cumulative
    boundaries clamped to ``n_items`` (the last chunk may be short).  Both
    arrays are shared and read-only: every ``simulate``/``simulate_batch``
    call on a ``dynamic`` clause re-asks for the same ``(n_items, chunk)``
    layout, so it is computed once.
    """
    n_chunks = (n_items + chunk - 1) // chunk
    sizes = np.full(n_chunks, chunk, dtype=np.int64)
    bounds = np.minimum(np.concatenate(([0], np.cumsum(sizes))), n_items)
    sizes.setflags(write=False)
    bounds.setflags(write=False)
    return sizes, bounds


@lru_cache(maxsize=1024)
def _guided_chunk_layout(
    n_items: int, n_threads: int, min_chunk: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Memoized ``(sizes, bounds)`` of the guided chunk decomposition.

    The geometrically shrinking sizing loop is pure Python; memoizing per
    ``(n_items, n_threads, min_chunk)`` runs it once per layout instead of
    once per call (read-only shared arrays, mirroring
    :func:`_static_assignment_cached`).
    """
    size_list: List[int] = []
    remaining = n_items
    while remaining > 0:
        size = max(min_chunk, remaining // (2 * n_threads))
        size = min(size, remaining)
        size_list.append(size)
        remaining -= size
    sizes = np.asarray(size_list, dtype=np.int64)
    bounds = np.minimum(np.concatenate(([0], np.cumsum(sizes))), n_items)
    sizes.setflags(write=False)
    bounds.setflags(write=False)
    return sizes, bounds


@lru_cache(maxsize=1024)
def _static_assignment_cached(
    n_items: int, n_threads: int, chunk: Optional[int]
) -> Tuple[np.ndarray, ...]:
    """Memoized static item-to-thread assignment (read-only arrays)."""
    indices = np.arange(n_items)
    if chunk is None:
        offsets = _static_block_offsets(n_items, n_threads)
        parts = [indices[offsets[t] : offsets[t + 1]] for t in range(n_threads)]
    else:
        chunks = [
            indices[start : start + chunk] for start in range(0, n_items, chunk)
        ]
        dealt: List[List[np.ndarray]] = [[] for _ in range(n_threads)]
        for idx, piece in enumerate(chunks):
            dealt[idx % n_threads].append(piece)
        parts = [
            np.concatenate(p) if p else np.empty(0, dtype=np.int64) for p in dealt
        ]
    for part in parts:
        part.setflags(write=False)
    return tuple(parts)


@dataclass
class ScheduleOutcome:
    """Result of replaying a schedule against a per-item cost vector.

    Attributes
    ----------
    assignment:
        ``assignment[t]`` is the array of item indices executed by thread ``t``
        in execution order.
    busy_time:
        Total compute time per thread (sum of its items' costs).
    chunks:
        The chunks handed out, as ``(thread, start_item, n_items)`` tuples in
        hand-out order (useful for tests and traces).
    """

    assignment: List[np.ndarray]
    busy_time: np.ndarray
    chunks: List[Tuple[int, int, int]]


class LoopSchedule(ABC):
    """Abstract iteration-to-thread assignment policy."""

    #: schedule kind string, e.g. ``"static"``
    kind: str = "abstract"

    @abstractmethod
    def simulate(self, costs: np.ndarray, n_threads: int) -> ScheduleOutcome:
        """Replay the schedule on ``costs`` (one entry per loop iteration)."""

    def simulate_batch(self, costs: np.ndarray, n_threads: int) -> np.ndarray:
        """Per-thread busy time of many independent loop instances at once.

        ``costs`` has shape ``(n_instances, n_items)`` — one row per
        application iteration of a campaign shard; the return value is the
        ``(n_instances, n_threads)`` busy-time matrix.  The base
        implementation replays each row through :meth:`simulate` — the
        fallback for custom schedules; every built-in schedule overrides it
        with a vectorised whole-matrix kernel (closed-form folds for the
        static clauses, the row-vectorised work-queue replay for
        dynamic/guided).  Every row is bit-identical to
        ``simulate(costs[i], n_threads).busy_time``.
        """
        arr = self._validate_batch(costs, n_threads)
        busy = np.empty((arr.shape[0], n_threads), dtype=np.float64)
        for i in range(arr.shape[0]):
            busy[i] = self.simulate(arr[i], n_threads).busy_time
        return busy

    def simulate_campaign(self, costs: np.ndarray, n_threads: int) -> np.ndarray:
        """Per-thread busy time of a whole campaign's loop instances at once.

        ``costs`` has shape ``(n_shards, n_instances, n_items)`` — one plane
        per (trial, process) shard; the return value is the
        ``(n_shards, n_instances, n_threads)`` busy-time tensor.  The base
        implementation flattens the leading axes through
        :meth:`simulate_batch` (a zero-copy view for contiguous input), so
        one call folds the entire campaign — static clauses via one
        closed-form ``reduceat``, dynamic/guided via one row-vectorised
        work-queue replay over all ``n_shards * n_instances`` rows.  Every
        plane is bit-identical to ``simulate_batch(costs[s], n_threads)``.
        """
        arr = self._validate_campaign(costs, n_threads)
        n_shards, n_instances, n_items = arr.shape
        flat = self.simulate_batch(arr.reshape(n_shards * n_instances, n_items), n_threads)
        return flat.reshape(n_shards, n_instances, n_threads)

    def static_assignment(
        self, n_items: int, n_threads: int
    ) -> Optional[List[np.ndarray]]:
        """Assignment independent of costs, or ``None`` if execution-dependent."""
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _validate(costs: np.ndarray, n_threads: int) -> np.ndarray:
        arr = np.asarray(costs, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("costs must be a 1-D array (one entry per iteration)")
        if np.any(arr < 0):
            raise ValueError("per-iteration costs must be non-negative")
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        return arr

    @staticmethod
    def _validate_batch(costs: np.ndarray, n_threads: int) -> np.ndarray:
        arr = np.asarray(costs, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(
                "batch costs must be a 2-D matrix (instances x loop items)"
            )
        if np.any(arr < 0):
            raise ValueError("per-iteration costs must be non-negative")
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        return arr

    @staticmethod
    def _validate_campaign(costs: np.ndarray, n_threads: int) -> np.ndarray:
        arr = np.asarray(costs, dtype=np.float64)
        if arr.ndim != 3:
            raise ValueError(
                "campaign costs must be a 3-D tensor (shards x instances x items)"
            )
        if np.any(arr < 0):
            raise ValueError("per-iteration costs must be non-negative")
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        return arr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class StaticSchedule(LoopSchedule):
    """``schedule(static[, chunk])``.

    Without a chunk size the iterations are divided into ``n_threads``
    contiguous blocks of near-equal length (earlier threads get the remainder,
    as mainstream OpenMP runtimes do).  With a chunk size, chunks are dealt
    round-robin.
    """

    kind = "static"

    def __init__(self, chunk: Optional[int] = None) -> None:
        if chunk is not None and chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.chunk = chunk

    @staticmethod
    def _block_offsets(n_items: int, n_threads: int) -> np.ndarray:
        """Boundaries of the ``n_threads`` contiguous near-equal blocks —
        the single source of the chunk-less split policy, shared by
        :meth:`static_assignment`, :meth:`simulate` and
        :meth:`simulate_batch`.  Memoized (read-only array)."""
        return _static_block_offsets(int(n_items), int(n_threads))

    def static_assignment(self, n_items: int, n_threads: int) -> List[np.ndarray]:
        """Item indices per thread.  Memoized per ``(n_items, n_threads,
        chunk)``; the returned arrays are shared and read-only."""
        if n_items < 0:
            raise ValueError("n_items must be non-negative")
        return list(_static_assignment_cached(int(n_items), int(n_threads), self.chunk))

    def _chunk_offsets(self, n_items: int) -> np.ndarray:
        """Segment boundaries of the round-robin chunk decomposition."""
        starts = np.arange(0, n_items, self.chunk, dtype=np.int64)
        return np.concatenate((starts, [n_items]))

    def simulate(self, costs: np.ndarray, n_threads: int) -> ScheduleOutcome:
        arr = self._validate(costs, n_threads)
        assignment = self.static_assignment(len(arr), n_threads)
        if self.chunk is None:
            # contiguous blocks: one vectorised reduceat instead of a
            # per-thread Python summation loop
            busy = segment_sums(arr, self._block_offsets(len(arr), n_threads))
        else:
            # round-robin chunks: per-chunk sums via reduceat, scattered to
            # their dealt thread
            chunk_sums = segment_sums(arr, self._chunk_offsets(len(arr)))
            busy = np.zeros(n_threads)
            np.add.at(busy, np.arange(len(chunk_sums)) % n_threads, chunk_sums)
        chunks = [
            (t, int(idx[0]), len(idx)) for t, idx in enumerate(assignment) if len(idx)
        ]
        return ScheduleOutcome(assignment=assignment, busy_time=busy, chunks=chunks)

    def simulate_batch(self, costs: np.ndarray, n_threads: int) -> np.ndarray:
        """Closed-form batch kernel: the assignment is cost-independent, so
        the whole ``(n_instances, n_items)`` matrix folds through one
        row-wise ``reduceat`` instead of ``n_instances`` replays."""
        arr = self._validate_batch(costs, n_threads)
        n_items = arr.shape[1]
        if self.chunk is None:
            return segment_sums_2d(arr, self._block_offsets(n_items, n_threads))
        chunk_sums = segment_sums_2d(arr, self._chunk_offsets(n_items))
        busy = np.zeros((arr.shape[0], n_threads), dtype=np.float64)
        threads_of = np.arange(chunk_sums.shape[1]) % n_threads
        # round-robin deals many chunks to the same thread: duplicates must
        # accumulate (unique=False)
        scatter_add_2d(
            busy,
            np.arange(arr.shape[0])[:, None],
            threads_of[None, :],
            chunk_sums,
        )
        return busy

    def simulate_campaign(self, costs: np.ndarray, n_threads: int) -> np.ndarray:
        """Whole-campaign closed form: the chunk-less split folds the full
        ``(n_shards, n_instances, n_items)`` tensor through one
        :func:`segment_sums_3d` without even the flattening view; the
        round-robin clause reuses the 2-D scatter kernel on the flattened
        rows (same adds in the same order, so planes stay bit-identical to
        :meth:`simulate_batch`)."""
        arr = self._validate_campaign(costs, n_threads)
        if self.chunk is None:
            return segment_sums_3d(arr, self._block_offsets(arr.shape[2], n_threads))
        return super().simulate_campaign(arr, n_threads)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaticSchedule(chunk={self.chunk})"


class _WorkQueueSchedule(LoopSchedule):
    """Shared machinery for dynamic/guided: idle threads grab the next chunk."""

    def _chunk_layout(self, n_items: int, n_threads: int) -> Tuple[np.ndarray, np.ndarray]:
        """Memoized ``(sizes, bounds)`` chunk decomposition (read-only,
        shared).  Chunk boundaries depend only on the loop geometry — never
        on the realised costs — which is what makes the whole-matrix
        work-queue replay of :meth:`simulate_batch` possible."""
        raise NotImplementedError

    def _chunk_sizes(self, n_items: int, n_threads: int) -> np.ndarray:
        """Hand-out chunk lengths (memoized read-only array)."""
        return self._chunk_layout(n_items, n_threads)[0]

    def simulate(self, costs: np.ndarray, n_threads: int) -> ScheduleOutcome:
        arr = self._validate(costs, n_threads)
        sizes, bounds = self._chunk_layout(len(arr), n_threads)
        # non-empty chunks form a prefix (sizes are positive; clamping only
        # flattens the tail)
        n_chunks = int(np.count_nonzero(np.diff(bounds)))
        # pre-sum every chunk in one vectorised reduceat
        chunk_costs = segment_sums(arr, bounds)
        # priority queue of (available_time, thread); ties broken by thread
        # id.  The loop body is deliberately minimal — heap bookkeeping and
        # the busy accumulation only; the per-chunk item arrays are rebuilt
        # vectorised below (repeat + stable argsort) instead of one
        # ``np.arange`` per chunk, which dominated wide loops like MiniFE's
        # 40k-pencil mat-vec.
        heap = [(0.0, t) for t in range(n_threads)]
        heapq.heapify(heap)
        busy = np.zeros(n_threads)
        picks = np.empty(n_chunks, dtype=np.int64)
        for k in range(n_chunks):
            available, thread = heapq.heappop(heap)
            cost = float(chunk_costs[k])
            busy[thread] += cost
            picks[k] = thread
            heapq.heappush(heap, (available + cost, thread))
        eff_sizes = np.diff(bounds[: n_chunks + 1])
        chunks = [
            (int(picks[k]), int(bounds[k]), int(eff_sizes[k]))
            for k in range(n_chunks)
        ]
        # items sorted by executing thread, stable, is exactly "each thread's
        # chunks concatenated in hand-out order" (chunks are handed out in
        # ascending item order)
        item_threads = np.repeat(picks, eff_sizes)
        order = np.argsort(item_threads, kind="stable")
        counts = np.bincount(item_threads, minlength=n_threads)
        assignment = list(np.split(order, np.cumsum(counts)[:-1]))
        return ScheduleOutcome(assignment=assignment, busy_time=busy, chunks=chunks)

    def simulate_batch(self, costs: np.ndarray, n_threads: int) -> np.ndarray:
        """Row-vectorised work-queue replay of many loop instances at once.

        Chunk boundaries depend only on ``(n_items, n_threads[, chunk])``,
        so every row shares the same hand-out sequence; only *which thread*
        grabs chunk ``k`` depends on the realised costs.  The kernel
        therefore pre-sums all per-chunk costs for the whole
        ``(n_instances, n_items)`` matrix in one :func:`segment_sums_2d`
        call and replays the "idle thread grabs the next chunk" policy for
        all rows simultaneously: an ``(n_instances, n_threads)``
        available-time matrix, one ``argmin`` per chunk (first-minimum ==
        lowest thread id, exactly the heap's ``(time, thread)`` tie-break)
        and one unique-index scatter-add per chunk.  ``n_instances`` heap
        replays collapse into ``n_chunks`` vectorised steps, and every row
        stays bit-identical to ``simulate(costs[i], n_threads).busy_time``
        (same chunk sums, same adds in the same order — Hypothesis-pinned in
        ``tests/property/test_prop_schedule.py``).
        """
        arr = self._validate_batch(costs, n_threads)
        busy, _ = self._workqueue_replay(arr, n_threads, want_picks=False)
        return busy

    def simulate_batch_details(
        self, costs: np.ndarray, n_threads: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batch busy times plus the realised chunk-to-thread assignment.

        Returns ``(busy, picks)`` where ``picks[i, k]`` is the thread that
        executed hand-out chunk ``k`` of row ``i`` — the batch analogue of
        ``ScheduleOutcome.chunks`` (used by the bit-equality tests and by
        traces; :meth:`simulate_batch` skips building it).
        """
        arr = self._validate_batch(costs, n_threads)
        return self._workqueue_replay(arr, n_threads, want_picks=True)

    def _workqueue_replay(
        self, arr: np.ndarray, n_threads: int, want_picks: bool
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        n_instances, n_items = arr.shape
        _, bounds = self._chunk_layout(n_items, n_threads)
        # non-empty chunks form a prefix (sizes are positive; clamping only
        # flattens the tail), matching the heap replay's early break
        n_chunks = int(np.count_nonzero(np.diff(bounds)))
        chunk_costs = segment_sums_2d(arr, bounds)
        available = np.zeros((n_instances, n_threads), dtype=np.float64)
        busy = np.zeros((n_instances, n_threads), dtype=np.float64)
        picks = (
            np.empty((n_instances, n_chunks), dtype=np.int64) if want_picks else None
        )
        rows = np.arange(n_instances)
        for k in range(n_chunks):
            # first minimum per row == lowest thread id among the earliest
            # available, the heap's (time, thread) ordering
            thread = np.argmin(available, axis=1)
            cost = chunk_costs[:, k]
            # each row scatters to exactly one (row, thread) cell: unique
            scatter_add_2d(available, rows, thread, cost, unique=True)
            scatter_add_2d(busy, rows, thread, cost, unique=True)
            if picks is not None:
                picks[:, k] = thread
        return busy, picks


class DynamicSchedule(_WorkQueueSchedule):
    """``schedule(dynamic[, chunk])`` — fixed-size chunks grabbed on demand."""

    kind = "dynamic"

    def __init__(self, chunk: int = 1) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.chunk = chunk

    def _chunk_layout(self, n_items: int, n_threads: int) -> Tuple[np.ndarray, np.ndarray]:
        return _dynamic_chunk_layout(int(n_items), self.chunk)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicSchedule(chunk={self.chunk})"


class GuidedSchedule(_WorkQueueSchedule):
    """``schedule(guided[, chunk])`` — geometrically shrinking chunks."""

    kind = "guided"

    def __init__(self, min_chunk: int = 1) -> None:
        if min_chunk < 1:
            raise ValueError("min_chunk must be >= 1")
        self.min_chunk = min_chunk

    def _chunk_layout(self, n_items: int, n_threads: int) -> Tuple[np.ndarray, np.ndarray]:
        return _guided_chunk_layout(int(n_items), int(n_threads), self.min_chunk)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GuidedSchedule(min_chunk={self.min_chunk})"


def schedule_from_name(name: str, chunk: Optional[int] = None) -> LoopSchedule:
    """Build a schedule from an OpenMP-style clause string.

    ``"static"``, ``"static,8"``, ``"dynamic"``, ``"dynamic,4"``, ``"guided"``.
    """
    text = name.strip().lower()
    if "," in text:
        text, chunk_text = text.split(",", 1)
        chunk = int(chunk_text)
    text = text.strip()
    if text == "static":
        return StaticSchedule(chunk)
    if text == "dynamic":
        return DynamicSchedule(chunk if chunk is not None else 1)
    if text == "guided":
        return GuidedSchedule(chunk if chunk is not None else 1)
    raise ValueError(f"unknown schedule kind {name!r}")
