"""Thread teams: the OpenMP thread pool of one simulated MPI process.

Each team member is pinned to a :class:`~repro.cluster.topology.Core` (the
paper's jobs use all 48 hardware thread contexts of a node for their 8
processes × threads layout) and owns that core's monotonic clock, which is
how the instrumentation layer obtains per-thread timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.cluster.clock import ClockDomain, MonotonicClock
from repro.cluster.noise import OSNoiseModel
from repro.cluster.topology import Core


@dataclass
class TeamThread:
    """One OpenMP thread: an index within its team plus its pinned core."""

    thread_id: int
    core: Core
    clock: MonotonicClock

    def read_clock_ns(self, true_time_s: float) -> int:
        """``clock_gettime(CLOCK_MONOTONIC)`` on this thread's core."""
        return self.clock.read_ns(true_time_s)


class ThreadTeam:
    """The OpenMP thread team of one process.

    Parameters
    ----------
    cores:
        The cores this process is bound to (one thread per core, matching the
        paper's one-thread-per-hardware-context configuration).
    clock_domain:
        Source of per-core clocks.
    noise_model:
        OS-noise model applied to this process's cores.
    rng:
        Per-team random generator (thread-level cost jitter).
    """

    def __init__(
        self,
        cores: Sequence[Core],
        clock_domain: ClockDomain,
        noise_model: OSNoiseModel,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if len(cores) < 1:
            raise ValueError("a thread team needs at least one core")
        self.cores = list(cores)
        self.clock_domain = clock_domain
        self.noise = noise_model
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.threads: List[TeamThread] = [
            TeamThread(thread_id=t, core=core, clock=clock_domain.clock_for(core))
            for t, core in enumerate(self.cores)
        ]

    # ------------------------------------------------------------------
    @property
    def n_threads(self) -> int:
        return len(self.threads)

    def thread(self, thread_id: int) -> TeamThread:
        return self.threads[thread_id]

    def node_id(self) -> int:
        """Node hosting this team (teams never span nodes)."""
        return self.cores[0].node_id

    def spans_sockets(self) -> bool:
        """Whether the team's threads are spread over more than one socket."""
        return len({core.socket_id for core in self.cores}) > 1

    def __len__(self) -> int:
        return self.n_threads

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThreadTeam(n_threads={self.n_threads}, node={self.node_id()}, "
            f"sockets={sorted({c.socket_id for c in self.cores})})"
        )
