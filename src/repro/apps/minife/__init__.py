"""MiniFE: an unstructured-mesh implicit finite-element proxy (Mantevo).

The paper times MiniFE's sparse matrix-vector product — "the linear algebra
function of highest order" — at a compute volume of 200³ matrix elements per
process.  This subpackage provides:

* :mod:`~repro.apps.minife.mesh` — the structured brick mesh and the analytic
  27-point-stencil sparsity counts used by the work model.
* :mod:`~repro.apps.minife.csr` / :mod:`~repro.apps.minife.matvec` — a real
  CSR assembly and mat-vec kernel (reduced scale) with the same thread
  decomposition as the work model.
* :mod:`~repro.apps.minife.cg` — a conjugate-gradient driver using the kernel
  (the solver MiniFE's timed region lives inside).
* :mod:`~repro.apps.minife.app` — :class:`MiniFEApp`, the calibrated proxy
  used by the campaign.
"""

from repro.apps.minife.app import MiniFEApp, MiniFEConfig
from repro.apps.minife.cg import conjugate_gradient
from repro.apps.minife.csr import CSRMatrix, build_stencil_csr
from repro.apps.minife.matvec import csr_matvec, rowblock_partition, threaded_matvec
from repro.apps.minife.mesh import BrickMesh

__all__ = [
    "MiniFEApp",
    "MiniFEConfig",
    "BrickMesh",
    "CSRMatrix",
    "build_stencil_csr",
    "csr_matvec",
    "threaded_matvec",
    "rowblock_partition",
    "conjugate_gradient",
]
