"""Conjugate-gradient driver.

MiniFE's timed mat-vec lives inside a CG solve; the driver here closes that
loop for the reduced-scale kernel so examples can show the instrumented
region in its natural context (one mat-vec per CG iteration, followed by the
dot products / axpys that an application would overlap communication with).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.apps.minife.csr import CSRMatrix
from repro.apps.minife.matvec import csr_matvec


@dataclass
class CGResult:
    """Outcome of a conjugate-gradient solve."""

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def conjugate_gradient(
    matrix: CSRMatrix,
    b: np.ndarray,
    *,
    tol: float = 1.0e-8,
    max_iterations: int = 500,
    callback: Optional[Callable[[int, float, np.ndarray], None]] = None,
) -> CGResult:
    """Solve ``A x = b`` with (unpreconditioned) conjugate gradients.

    Parameters
    ----------
    matrix:
        SPD matrix in CSR form.
    b:
        Right-hand side.
    tol:
        Relative residual tolerance.
    max_iterations:
        Iteration cap.
    callback:
        Optional ``callback(iteration, residual_norm, x)`` invoked every
        iteration — the examples use it to hook the timing instrumentation.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (matrix.n_rows,):
        raise ValueError(f"b must have shape ({matrix.n_rows},)")
    x = np.zeros_like(b)
    r = b - csr_matvec(matrix, x)
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return CGResult(x=x, iterations=0, residual_norm=0.0, converged=True)
    for iteration in range(1, max_iterations + 1):
        ap = csr_matvec(matrix, p)
        alpha = rs_old / float(p @ ap)
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        residual = float(np.sqrt(rs_new)) / b_norm
        if callback is not None:
            callback(iteration, residual, x)
        if residual < tol:
            return CGResult(
                x=x, iterations=iteration, residual_norm=residual, converged=True
            )
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    return CGResult(
        x=x,
        iterations=max_iterations,
        residual_norm=float(np.sqrt(rs_old)) / b_norm,
        converged=False,
    )
