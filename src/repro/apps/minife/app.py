"""The calibrated MiniFE proxy used by the campaign.

Timed region
    The sparse matrix-vector product over a 200³ node mesh per process
    (the paper's §3.2 configuration).

Work decomposition
    The OpenMP loop runs over (z, y) "pencils" (contiguous runs of ``nx``
    rows), statically block-distributed over the 48 threads — identical to a
    contiguous row-block decomposition.  Pencils containing boundary nodes
    carry fewer stencil nonzeros, so the first and last thread of the team do
    measurably less work and arrive early, which produces MiniFE's
    left-skewed, strongly non-normal arrival pattern (Table 1 row "MiniFE",
    Figure 4's low 5th/25th percentiles).

Calibration
    * per-nonzero cost is set so the *median* thread spends ≈ 26.30 ms in the
      region (the paper's mean median arrival time);
    * an application-level straggler model (memory-bandwidth / page-fault
      contention during the mat-vec) delays one random thread by 1–4 ms in
      ``straggler_probability`` of process-iterations; together with the
      machine's OS-noise interrupts this reproduces the ≈ 22 % of iterations
      that contain a > 1 ms laggard (Figure 5b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.apps.base import ApplicationConfig, ProxyApplication
from repro.apps.minife.cg import conjugate_gradient
from repro.apps.minife.csr import build_stencil_csr
from repro.apps.minife.matvec import csr_matvec, threaded_matvec
from repro.apps.minife.mesh import BrickMesh

#: The paper's mean median arrival time for MiniFE (seconds).
TARGET_MEDIAN_ARRIVAL_S = 26.30e-3


@dataclass
class MiniFEConfig(ApplicationConfig):
    """MiniFE-specific knobs on top of the shared application config."""

    #: production mesh (per process), §3.2: "2003 matrix elements per process"
    nx: int = 200
    ny: int = 200
    nz: int = 200
    #: seconds of compute per stencil nonzero; ``None`` → calibrated so the
    #: median thread hits :data:`TARGET_MEDIAN_ARRIVAL_S`
    time_per_nonzero_s: Optional[float] = None
    #: probability that a process-iteration contains an application-level
    #: straggler thread (bandwidth/page-fault contention)
    straggler_probability: float = 0.18
    #: straggler delay range in seconds
    straggler_min_s: float = 1.0e-3
    straggler_max_s: float = 4.0e-3
    #: reduced-scale mesh used by the reference kernel
    kernel_nx: int = 16
    kernel_ny: int = 16
    kernel_nz: int = 16

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.straggler_probability <= 1.0:
            raise ValueError("straggler_probability must be in [0, 1]")
        if self.straggler_min_s < 0 or self.straggler_max_s < self.straggler_min_s:
            raise ValueError("invalid straggler delay range")


class MiniFEApp(ProxyApplication):
    """MiniFE proxy application (timed region: mat-vec)."""

    name = "minife"
    region = "matvec"

    def __init__(self, config: Optional[MiniFEConfig] = None) -> None:
        super().__init__(config if config is not None else MiniFEConfig())
        self.config: MiniFEConfig
        self.mesh = BrickMesh(self.config.nx, self.config.ny, self.config.nz)
        self._pencil_nnz = self.mesh.pencil_nonzeros()
        # calibration depends on _pencil_nnz being set first
        self._time_per_nonzero = self._calibrate_time_per_nonzero()
        # item costs are deterministic (the matrix does not change between
        # iterations), so compute them once
        self._item_costs = self._pencil_nnz * self._time_per_nonzero
        self._base_times_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _calibrate_time_per_nonzero(self) -> float:
        if self.config.time_per_nonzero_s is not None:
            if self.config.time_per_nonzero_s <= 0:
                raise ValueError("time_per_nonzero_s must be positive")
            return self.config.time_per_nonzero_s
        # Use the same pencil decomposition the timed loop uses, so the
        # *median thread* of a static schedule lands exactly on the target.
        from repro.openmp.schedule import StaticSchedule

        outcome = StaticSchedule().simulate(self._pencil_nnz, self.config.n_threads)
        median_nnz = float(np.median(outcome.busy_time))
        return TARGET_MEDIAN_ARRIVAL_S / median_nnz

    @property
    def time_per_nonzero_s(self) -> float:
        """Calibrated (or configured) cost of one stencil nonzero, in seconds."""
        return self._time_per_nonzero

    # ------------------------------------------------------------------
    # work model
    # ------------------------------------------------------------------
    def item_costs(
        self, process: int, iteration: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Cost of every (z, y) pencil of the mat-vec loop."""
        return self._item_costs

    def base_thread_times(
        self, process: int, iteration: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-thread pure mat-vec time (cached: the matrix never changes)."""
        if self._base_times_cache is None:
            self._base_times_cache = super().base_thread_times(process, iteration, rng)
        return self._base_times_cache

    def application_delays(
        self, process: int, iteration: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Occasional single-thread straggler from memory-system contention."""
        delays = np.zeros(self.config.n_threads)
        if rng.uniform() < self.config.straggler_probability:
            victim = int(rng.integers(self.config.n_threads))
            delays[victim] = rng.uniform(
                self.config.straggler_min_s, self.config.straggler_max_s
            )
        return delays

    # ------------------------------------------------------------------
    # batched work model (the ``"batched"`` campaign backend)
    # ------------------------------------------------------------------
    def base_thread_times_batch(
        self, process: int, n_iterations: int, rng: np.random.Generator
    ) -> np.ndarray:
        """The matrix never changes between iterations: broadcast the cached
        per-thread busy-time row instead of re-simulating the schedule."""
        row = self.base_thread_times(process, 0, rng)
        return np.broadcast_to(row, (n_iterations, row.size))

    def application_delays_batch(
        self, process: int, n_iterations: int, rng: np.random.Generator
    ) -> np.ndarray:
        """All of the shard's straggler events in three vectorised draws:
        which iterations straggle, which thread is the victim, how long."""
        cfg = self.config
        delays = np.zeros((n_iterations, cfg.n_threads))
        hit = rng.uniform(size=n_iterations) < cfg.straggler_probability
        n_hit = int(hit.sum())
        if n_hit:
            victims = rng.integers(cfg.n_threads, size=n_hit)
            delays[np.flatnonzero(hit), victims] = rng.uniform(
                cfg.straggler_min_s, cfg.straggler_max_s, size=n_hit
            )
        return delays

    # ------------------------------------------------------------------
    # whole-campaign work model (the ``"campaign"`` backend)
    # ------------------------------------------------------------------
    campaign_tensor = True

    def item_costs_campaign(self, shards, n_iterations, rng):
        """Deterministic matrix: broadcast the pencil costs (zero draws)."""
        return np.broadcast_to(
            self._item_costs, (len(shards), n_iterations, self._item_costs.size)
        )

    def base_thread_times_campaign(self, shards, n_iterations, rng):
        """Broadcast the cached busy-time row over all shards and iterations
        (bit-identical to folding the broadcast cost tensor: every schedule's
        campaign kernel replays identical rows to identical sums)."""
        row = self.base_thread_times(0, 0, rng)
        return np.broadcast_to(row, (len(shards), n_iterations, row.size))

    # straggler delays use the generic per-shard campaign fallback: each
    # shard's three draws sit under its absolute ("shard", trial, process)
    # scope, so any chunking or worker assignment replays identical events

    # ------------------------------------------------------------------
    # reference kernel
    # ------------------------------------------------------------------
    def run_reference_kernel(self, rng: np.random.Generator) -> Dict[str, float]:
        """Assemble a reduced-scale stencil matrix, run a threaded mat-vec and
        a short CG solve; returns verification quantities."""
        cfg = self.config
        matrix = build_stencil_csr(cfg.kernel_nx, cfg.kernel_ny, cfg.kernel_nz)
        x = rng.standard_normal(matrix.n_rows)
        reference = csr_matvec(matrix, x)
        threaded = threaded_matvec(matrix, x, cfg.n_threads)
        matvec_error = float(np.max(np.abs(reference - threaded.y)))
        b = np.ones(matrix.n_rows)
        cg = conjugate_gradient(matrix, b, tol=1e-8, max_iterations=500)
        return {
            "rows": float(matrix.n_rows),
            "nonzeros": float(matrix.nnz),
            "matvec_block_mismatch": matvec_error,
            "cg_iterations": float(cg.iterations),
            "cg_residual": cg.residual_norm,
            "cg_converged": float(cg.converged),
        }

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update(
            {
                "mesh": f"{self.config.nx}x{self.config.ny}x{self.config.nz}",
                "time_per_nonzero_ns": self._time_per_nonzero * 1e9,
                "straggler_probability": self.config.straggler_probability,
            }
        )
        return info
