"""Structured brick mesh and analytic 27-point stencil sparsity counts.

MiniFE assembles a hexahedral-element Laplace problem on an ``nx × ny × nz``
node grid; the resulting matrix has a 27-point stencil: row ``(x, y, z)``
couples to every node within one step in each dimension, so its nonzero count
is ``w(x)·w(y)·w(z)`` with ``w = 3`` for interior and ``2`` for boundary
coordinates.  Boundary rows therefore carry fewer nonzeros, which is exactly
what makes the threads owning boundary planes finish their share of the
mat-vec early — the paper's "early threads ... potentially due to work
distribution imbalance".

For the 200³ production volume the matrix has 8 × 10⁶ rows; building it is
unnecessary because every count the work model needs is available in closed
form here, in O(nx·ny + nz) time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def _axis_widths(n: int) -> np.ndarray:
    """Stencil width along one axis for every coordinate (2 on the boundary)."""
    if n < 1:
        raise ValueError("axis size must be >= 1")
    if n == 1:
        return np.ones(1)
    widths = np.full(n, 3.0)
    widths[0] = 2.0
    widths[-1] = 2.0
    return widths


@dataclass(frozen=True)
class BrickMesh:
    """An ``nx × ny × nz`` structured node grid in natural (x-fastest) ordering."""

    nx: int
    ny: int
    nz: int

    def __post_init__(self) -> None:
        if min(self.nx, self.ny, self.nz) < 1:
            raise ValueError("mesh dimensions must be >= 1")

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of matrix rows (= mesh nodes)."""
        return self.nx * self.ny * self.nz

    @property
    def rows_per_plane(self) -> int:
        """Rows in one z-plane."""
        return self.nx * self.ny

    @property
    def total_nonzeros(self) -> int:
        """Total stencil nonzeros: ``(3nx−2)(3ny−2)(3nz−2)`` for n ≥ 2 axes."""
        return int(
            _axis_widths(self.nx).sum()
            * _axis_widths(self.ny).sum()
            * _axis_widths(self.nz).sum()
        )

    # ------------------------------------------------------------------
    def node_index(self, x: int, y: int, z: int) -> int:
        """Natural-ordering row index of node ``(x, y, z)``."""
        if not (0 <= x < self.nx and 0 <= y < self.ny and 0 <= z < self.nz):
            raise IndexError(f"node ({x},{y},{z}) outside the mesh")
        return (z * self.ny + y) * self.nx + x

    def node_coords(self, index: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`node_index`."""
        if not 0 <= index < self.n_rows:
            raise IndexError(f"row {index} outside the mesh")
        x = index % self.nx
        y = (index // self.nx) % self.ny
        z = index // (self.nx * self.ny)
        return x, y, z

    def row_nonzeros(self, index: int) -> int:
        """Stencil nonzeros of one row."""
        x, y, z = self.node_coords(index)
        wx = _axis_widths(self.nx)[x]
        wy = _axis_widths(self.ny)[y]
        wz = _axis_widths(self.nz)[z]
        return int(wx * wy * wz)

    # ------------------------------------------------------------------
    def plane_pattern_nonzeros(self) -> np.ndarray:
        """Per-row nonzero pattern of one *interior* z-plane, natural order.

        The actual count of row ``(x, y, z)`` is this pattern value times the
        z-width factor ``w(z)/3``... more precisely the pattern stores
        ``w(x)·w(y)`` so a row's nonzeros are ``pattern · w(z)``.
        """
        wx = _axis_widths(self.nx)
        wy = _axis_widths(self.ny)
        return np.outer(wy, wx).ravel()

    def z_widths(self) -> np.ndarray:
        """The z-axis width factor ``w(z)`` per plane."""
        return _axis_widths(self.nz)

    def pencil_nonzeros(self) -> np.ndarray:
        """Nonzeros of every (z, y) pencil (a contiguous run of ``nx`` rows).

        Returned in pencil order ``z·ny + y`` — the unit the MiniFE work model
        hands to the OpenMP loop schedule (contiguous pencil blocks are
        contiguous row blocks).
        """
        wx_sum = _axis_widths(self.nx).sum()
        wy = _axis_widths(self.ny)
        wz = _axis_widths(self.nz)
        return (np.outer(wz, wy) * wx_sum).ravel()

    def cumulative_nonzeros(self, n_first_rows: int) -> float:
        """Total nonzeros of the first ``n_first_rows`` rows (natural order)."""
        if not 0 <= n_first_rows <= self.n_rows:
            raise ValueError("n_first_rows outside [0, n_rows]")
        pattern = self.plane_pattern_nonzeros()
        pattern_cumsum = np.concatenate(([0.0], np.cumsum(pattern)))
        plane_total = pattern.sum()
        wz = self.z_widths()
        full_planes = n_first_rows // self.rows_per_plane
        remainder = n_first_rows % self.rows_per_plane
        total = float((wz[:full_planes] * plane_total).sum())
        if remainder:
            total += float(wz[full_planes] * pattern_cumsum[remainder])
        return total

    def rowblock_nonzeros(self, n_blocks: int) -> np.ndarray:
        """Nonzeros of each of ``n_blocks`` near-equal contiguous row blocks.

        This is the per-thread work of a ``schedule(static)`` mat-vec.
        """
        if n_blocks < 1:
            raise ValueError("n_blocks must be >= 1")
        base = self.n_rows // n_blocks
        remainder = self.n_rows % n_blocks
        sizes = np.full(n_blocks, base, dtype=np.int64)
        sizes[:remainder] += 1
        boundaries = np.concatenate(([0], np.cumsum(sizes)))
        cumulative = np.array(
            [self.cumulative_nonzeros(int(b)) for b in boundaries]
        )
        return np.diff(cumulative)
