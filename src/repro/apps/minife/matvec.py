"""The timed kernel: sparse matrix-vector product with row-block threading.

``csr_matvec`` is the whole-matrix product; ``threaded_matvec`` computes the
same result one thread-sized row block at a time — the decomposition the
paper instruments — and reports per-block operation counts, which is what ties
the real kernel to the calibrated work model (operations per block →
seconds per thread).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.apps.minife.csr import CSRMatrix


def csr_matvec(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """``y = A @ x`` for a CSR matrix (vectorised with ``reduceat``)."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (matrix.n_rows,):
        raise ValueError(f"x must have shape ({matrix.n_rows},), got {x.shape}")
    products = matrix.data * x[matrix.indices]
    # reduceat needs strictly valid segment starts; rows are never empty for
    # the stencil operator (every row has at least the diagonal).
    if np.any(np.diff(matrix.indptr) == 0):
        raise ValueError("csr_matvec requires a matrix without empty rows")
    return np.add.reduceat(products, matrix.indptr[:-1])


def rowblock_partition(n_rows: int, n_blocks: int) -> List[Tuple[int, int]]:
    """Contiguous near-equal row blocks ``[(start, end), ...]`` (static schedule)."""
    if n_blocks < 1:
        raise ValueError("n_blocks must be >= 1")
    base = n_rows // n_blocks
    remainder = n_rows % n_blocks
    blocks = []
    start = 0
    for b in range(n_blocks):
        size = base + (1 if b < remainder else 0)
        blocks.append((start, start + size))
        start += size
    return blocks


@dataclass(frozen=True)
class ThreadedMatvecResult:
    """Output of :func:`threaded_matvec`."""

    y: np.ndarray
    block_rows: List[Tuple[int, int]]
    block_nonzeros: np.ndarray

    @property
    def total_nonzeros(self) -> int:
        return int(self.block_nonzeros.sum())


def threaded_matvec(matrix: CSRMatrix, x: np.ndarray, n_threads: int) -> ThreadedMatvecResult:
    """Mat-vec computed block-by-block in the thread decomposition.

    The result equals :func:`csr_matvec` exactly; what differs is the
    bookkeeping: each block's nonzero count is returned, mirroring the
    per-thread work the calibrated model charges.
    """
    x = np.asarray(x, dtype=np.float64)
    blocks = rowblock_partition(matrix.n_rows, n_threads)
    y = np.empty(matrix.n_rows, dtype=np.float64)
    nnz = np.zeros(len(blocks), dtype=np.int64)
    for b, (start, end) in enumerate(blocks):
        lo = matrix.indptr[start]
        hi = matrix.indptr[end]
        nnz[b] = hi - lo
        if end > start:
            products = matrix.data[lo:hi] * x[matrix.indices[lo:hi]]
            local_ptr = matrix.indptr[start : end + 1] - lo
            y[start:end] = np.add.reduceat(products, local_ptr[:-1])
    return ThreadedMatvecResult(y=y, block_rows=blocks, block_nonzeros=nnz)
