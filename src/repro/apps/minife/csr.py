"""CSR assembly of the 27-point stencil operator (reduced-scale, real kernel).

This is the matrix MiniFE's timed mat-vec multiplies.  The assembled operator
is the standard symmetric positive-definite stencil Laplacian: off-diagonal
entries −1 for each of the (up to 26) neighbours and a diagonal chosen as
``26 + 1`` so the matrix is strictly diagonally dominant — the conjugate
gradient driver in :mod:`repro.apps.minife.cg` converges on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.apps.minife.mesh import BrickMesh


@dataclass(frozen=True)
class CSRMatrix:
    """A square sparse matrix in compressed-sparse-row form."""

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    n_rows: int

    def __post_init__(self) -> None:
        if len(self.indptr) != self.n_rows + 1:
            raise ValueError("indptr length must be n_rows + 1")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data must have equal length")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("indptr must start at 0 and end at nnz")

    @property
    def nnz(self) -> int:
        return len(self.indices)

    def row_nnz(self) -> np.ndarray:
        """Nonzeros per row."""
        return np.diff(self.indptr)

    def to_dense(self) -> np.ndarray:
        """Dense copy (tests only; guards against accidental huge meshes)."""
        if self.n_rows > 4096:
            raise ValueError("refusing to densify a matrix with > 4096 rows")
        dense = np.zeros((self.n_rows, self.n_rows))
        for row in range(self.n_rows):
            cols = self.indices[self.indptr[row] : self.indptr[row + 1]]
            vals = self.data[self.indptr[row] : self.indptr[row + 1]]
            dense[row, cols] = vals
        return dense


def build_stencil_csr(
    nx: int, ny: int, nz: int, *, diagonal: float = 27.0, off_diagonal: float = -1.0
) -> CSRMatrix:
    """Assemble the 27-point stencil operator on an ``nx × ny × nz`` grid.

    The default coefficients give a symmetric, strictly diagonally dominant
    (hence SPD) matrix.  Intended for reduced-scale kernels (examples, tests);
    the full 200³ production volume is handled analytically by
    :class:`~repro.apps.minife.mesh.BrickMesh`.
    """
    mesh = BrickMesh(nx, ny, nz)
    n_rows = mesh.n_rows
    if n_rows > 2_000_000:
        raise ValueError(
            "build_stencil_csr is the reduced-scale kernel; "
            f"{n_rows} rows would need the analytic work model instead"
        )
    offsets = [
        (dx, dy, dz)
        for dz in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dx in (-1, 0, 1)
    ]
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    indices_parts = []
    data_parts = []
    for z in range(nz):
        for y in range(ny):
            for x in range(nx):
                row = mesh.node_index(x, y, z)
                cols = []
                vals = []
                for dx, dy, dz in offsets:
                    xx, yy, zz = x + dx, y + dy, z + dz
                    if 0 <= xx < nx and 0 <= yy < ny and 0 <= zz < nz:
                        col = mesh.node_index(xx, yy, zz)
                        cols.append(col)
                        vals.append(diagonal if col == row else off_diagonal)
                order = np.argsort(cols)
                indices_parts.append(np.asarray(cols, dtype=np.int64)[order])
                data_parts.append(np.asarray(vals, dtype=np.float64)[order])
                indptr[row + 1] = len(cols)
    indptr = np.cumsum(indptr)
    return CSRMatrix(
        indptr=indptr,
        indices=np.concatenate(indices_parts),
        data=np.concatenate(data_parts),
        n_rows=n_rows,
    )
