"""Common interface of the proxy applications.

A :class:`ProxyApplication` answers two questions for the campaign runner:

* ``item_costs(process, iteration, rng)`` — the pure compute cost of every
  iteration of the *timed loop* (the unit the OpenMP schedule distributes);
  used by the detailed (discrete-event) execution path.
* ``thread_compute_times(...)`` — the per-thread compute time of one
  process-iteration including application-level variability, execution
  jitter and OS noise; used by the vectorised campaign path.

Both paths share the same underlying work decomposition, so they agree in
distribution; the integration tests check that the closed-form path matches
the event-driven path exactly when noise is disabled.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.cluster.noise import OSNoiseModel
from repro.cluster.topology import Core
from repro.openmp.schedule import LoopSchedule, StaticSchedule
from repro.sim.random import maybe_scope


@dataclass
class ApplicationConfig:
    """Run configuration shared by all proxy applications.

    Defaults follow the paper's §3.2: 48 threads per process, 200 iterations.
    """

    n_threads: int = 48
    n_iterations: int = 200
    schedule: LoopSchedule = field(default_factory=StaticSchedule)

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")


class ProxyApplication(ABC):
    """Base class of the instrumented proxy applications."""

    #: canonical lower-case name (``'minife'`` ...)
    name: str = "abstract"
    #: name of the instrumented compute region (e.g. ``'matvec'``)
    region: str = "compute"
    #: whether the app's campaign hooks draw whole shard-major tensors
    #: (``True`` for all built-ins); ``False`` routes the ``"campaign"``
    #: backend through the generic campaign-kernel fallback — per-shard
    #: cost draws, whole-campaign schedule fold — which is correct for
    #: any third-party application that only implements the per-shard API
    campaign_tensor: bool = False

    def __init__(self, config: Optional[ApplicationConfig] = None) -> None:
        self.config = config if config is not None else ApplicationConfig()

    # ------------------------------------------------------------------
    # per-process lifecycle
    # ------------------------------------------------------------------
    def begin_process(self, process: int, rng: np.random.Generator) -> None:
        """Hook invoked once per (trial, process) before its iterations run.

        Applications that carry per-process state across iterations (e.g.
        MiniQMC's walker population, whose composition sets that process's
        mover-time statistics for the whole trial) draw it here.  The default
        is stateless.
        """

    # ------------------------------------------------------------------
    # work decomposition
    # ------------------------------------------------------------------
    @abstractmethod
    def item_costs(
        self, process: int, iteration: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Pure compute cost (seconds) of every item of the timed loop."""

    def base_thread_times(
        self, process: int, iteration: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-thread pure compute time under the configured loop schedule."""
        costs = self.item_costs(process, iteration, rng)
        outcome = self.config.schedule.simulate(costs, self.config.n_threads)
        return outcome.busy_time

    def application_delays(
        self, process: int, iteration: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Application-level per-thread extra delays (seconds).

        Models variability that comes from the application rather than the
        OS: cache/bandwidth contention stragglers in MiniFE, neighbour-list
        warm-up in MiniMD, ...  The default is no extra delay.
        """
        return np.zeros(self.config.n_threads)

    # ------------------------------------------------------------------
    # batched work decomposition (the ``"batched"`` campaign backend)
    # ------------------------------------------------------------------
    def item_costs_batch(
        self, process: int, n_iterations: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Cost matrix ``(n_iterations, n_items)`` of a whole shard's loops.

        The generic fallback stacks per-iteration :meth:`item_costs` calls
        (same draws, same order); applications whose per-iteration
        randomness factors into a single distribution override this with one
        2-D draw so an entire (trial, process) shard costs a handful of
        NumPy calls.  Batched overrides draw in a *different order* than the
        per-iteration path, so the ``"batched"`` backend is statistically —
        not bit- — identical to ``"vectorized"``.
        """
        return np.stack(
            [self.item_costs(process, it, rng) for it in range(n_iterations)]
        )

    def base_thread_times_batch(
        self, process: int, n_iterations: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-thread pure compute times ``(n_iterations, n_threads)`` of a
        shard, folded through the schedule's batch kernel.

        Every built-in schedule vectorises this fold over the whole cost
        matrix — the static clauses closed-form, dynamic/guided through the
        row-vectorised work-queue replay — and each kernel is bit-identical
        per row to its per-iteration ``simulate``, so the batched and
        per-iteration paths diverge only in random draw *order*, never in
        the schedule fold itself."""
        costs = self.item_costs_batch(process, n_iterations, rng)
        return self.config.schedule.simulate_batch(costs, self.config.n_threads)

    def application_delays_batch(
        self, process: int, n_iterations: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Application-level delays ``(n_iterations, n_threads)`` of a shard.

        Generic fallback: stacked per-iteration :meth:`application_delays`.
        """
        return np.stack(
            [self.application_delays(process, it, rng) for it in range(n_iterations)]
        )

    def thread_compute_times_batch(
        self,
        *,
        process: int,
        rng: np.random.Generator,
        noise: Optional[OSNoiseModel] = None,
        n_iterations: Optional[int] = None,
    ) -> np.ndarray:
        """Measured compute times of a whole (trial, process) shard at once.

        The batched analogue of :meth:`thread_compute_times`: returns the
        ``(n_iterations, n_threads)`` matrix with schedule busy times,
        application delays, execution jitter and OS noise all applied as
        whole-matrix operations (one jitter draw, one
        :meth:`~repro.cluster.noise.OSNoiseModel.batch_delays` call).  The
        per-iteration path interleaves its draws iteration by iteration, so
        the two paths agree in distribution, not bit-for-bit.
        """
        n_iter = self.config.n_iterations if n_iterations is None else n_iterations
        if n_iter < 1:
            raise ValueError("n_iterations must be >= 1")
        base = self.base_thread_times_batch(process, n_iter, rng)
        extra = self.application_delays_batch(process, n_iter, rng)
        if extra.shape != base.shape:
            raise ValueError(
                "application_delays_batch must return one value per "
                "(iteration, thread)"
            )
        times = base + extra
        if noise is not None:
            if noise.spec.enabled and noise.spec.jitter_fraction > 0:
                jitter = rng.normal(1.0, noise.spec.jitter_fraction, size=times.shape)
                times = times * np.clip(jitter, 0.5, None)
            times = times + noise.batch_delays(times, rng)
        return times

    # ------------------------------------------------------------------
    # whole-campaign tensor decomposition (the ``"campaign"`` backend)
    # ------------------------------------------------------------------
    def begin_campaign(
        self, shards: Sequence[tuple], rng: np.random.Generator
    ) -> None:
        """Hook invoked once per shard chunk before its campaign draws.

        The tensor analogue of :meth:`begin_process`: applications with
        per-process state draw it here for *all* ``shards`` — a sequence of
        ``(trial, process)`` pairs — in one shard-major vectorised draw.
        Only consulted when :attr:`campaign_tensor` is true; the generic
        fallback calls :meth:`begin_process` per shard instead.
        """

    def item_costs_campaign(
        self, shards: Sequence[tuple], n_iterations: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Cost tensor ``(n_shards, n_iterations, n_items)`` of many shards.

        The generic fallback stacks :meth:`item_costs_batch` planes under an
        absolute per-shard draw scope, so chunking the shard axis cannot
        change the draws.  Tensor applications override this with one 3-D
        shard-major draw.
        """
        planes = []
        for trial, process in shards:
            with maybe_scope(rng, "shard", int(trial), int(process)):
                planes.append(self.item_costs_batch(int(process), n_iterations, rng))
        return np.stack(planes)

    def base_thread_times_campaign(
        self, shards: Sequence[tuple], n_iterations: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Pure compute times ``(n_shards, n_iterations, n_threads)`` of many
        shards, folded through the schedule's whole-campaign kernel — one
        :meth:`~repro.openmp.schedule.LoopSchedule.simulate_campaign` call
        for the entire chunk, each plane bit-identical to the per-shard
        ``simulate_batch`` fold."""
        costs = self.item_costs_campaign(shards, n_iterations, rng)
        return self.config.schedule.simulate_campaign(costs, self.config.n_threads)

    def application_delays_campaign(
        self, shards: Sequence[tuple], n_iterations: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Application delays ``(n_shards, n_iterations, n_threads)``.

        Generic fallback: stacked per-shard :meth:`application_delays_batch`
        under absolute per-shard scopes (chunk-invariant).
        """
        planes = []
        for trial, process in shards:
            with maybe_scope(rng, "shard", int(trial), int(process)):
                planes.append(
                    self.application_delays_batch(int(process), n_iterations, rng)
                )
        return np.stack(planes)

    def _apply_campaign_noise(
        self,
        times: np.ndarray,
        shards: Sequence[tuple],
        rng: np.random.Generator,
        noise: Optional[OSNoiseModel],
    ) -> np.ndarray:
        """Apply execution jitter and OS noise plane by plane.

        Each shard's jitter and noise draws sit under its absolute
        ``("shard", trial, process)`` scope (nested inside the ``"jitter"`` /
        ``"noise"`` stage scopes), so a shard's samples depend only on its
        own identity — the invariant that lets chunks run in any order, in
        any partition, on any worker, and still assemble bit-identically.
        """
        if noise is None:
            return times
        if noise.spec.enabled and noise.spec.jitter_fraction > 0:
            jitter = np.empty_like(times)
            with maybe_scope(rng, "jitter"):
                for index, (trial, process) in enumerate(shards):
                    with maybe_scope(rng, "shard", int(trial), int(process)):
                        jitter[index] = rng.normal(
                            1.0, noise.spec.jitter_fraction, size=times.shape[1:]
                        )
            times = times * np.clip(jitter, 0.5, None)
        delays = np.empty_like(times)
        with maybe_scope(rng, "noise"):
            for index, (trial, process) in enumerate(shards):
                with maybe_scope(rng, "shard", int(trial), int(process)):
                    delays[index] = noise.batch_delays(times[index], rng)
        return times + delays

    def finalize_campaign_times(
        self,
        base: np.ndarray,
        shards: Sequence[tuple],
        n_iterations: int,
        rng: np.random.Generator,
        noise: Optional[OSNoiseModel] = None,
    ) -> np.ndarray:
        """Apply delays, jitter and OS noise to a folded busy-time tensor.

        Split out of :meth:`thread_compute_times_campaign` so grouped
        executions (several compatible configs sharing one schedule fold —
        ``ScenarioMatrix`` sweeps, coalesced service jobs) can hoist the fold
        and still draw each config's delays/jitter/noise under the exact
        scopes a solo run uses, keeping grouped results bit-identical to
        per-config runs.
        """
        with maybe_scope(rng, "delays"):
            extra = self.application_delays_campaign(shards, n_iterations, rng)
        if extra.shape != base.shape:
            raise ValueError(
                "application_delays_campaign must return one value per "
                "(shard, iteration, thread)"
            )
        return self._apply_campaign_noise(base + extra, shards, rng, noise)

    def thread_compute_times_campaign(
        self,
        *,
        shards: Sequence[tuple],
        rng: np.random.Generator,
        noise: Optional[OSNoiseModel] = None,
        n_iterations: Optional[int] = None,
    ) -> np.ndarray:
        """Measured compute times of many (trial, process) shards at once.

        The whole-campaign analogue of :meth:`thread_compute_times_batch`:
        returns the ``(n_shards, n_iterations, n_threads)`` tensor with one
        schedule fold over the entire chunk and per-shard scoped jitter and
        noise draws.  Draws are keyed by absolute purpose (``rng`` is
        normally the campaign backend's
        :class:`~repro.sim.random.PurposeSplitRNG`), so any partition of the
        shard axis — serial or across worker processes — produces
        bit-identical samples.  Applications without
        :attr:`campaign_tensor` fall back to whole per-shard
        :meth:`thread_compute_times_batch` calls under absolute per-shard
        scopes — same chunk-invariance, no 3-D overrides required.
        """
        n_iter = self.config.n_iterations if n_iterations is None else n_iterations
        if n_iter < 1:
            raise ValueError("n_iterations must be >= 1")
        shards = [(int(trial), int(process)) for trial, process in shards]
        if not self.campaign_tensor:
            return self._campaign_fallback(shards, n_iter, rng, noise)
        with maybe_scope(rng, "state"):
            self.begin_campaign(shards, rng)
        with maybe_scope(rng, "costs"):
            base = self.base_thread_times_campaign(shards, n_iter, rng)
        return self.finalize_campaign_times(base, shards, n_iter, rng, noise)

    def _campaign_fallback(
        self,
        shards: Sequence[tuple],
        n_iterations: int,
        rng: np.random.Generator,
        noise: Optional[OSNoiseModel],
    ) -> np.ndarray:
        """Generic 3-D campaign kernel for apps without tensor overrides.

        Only the *draws* remain per shard: each shard's process state, cost
        matrix and application delays are gathered under its absolute
        ``("shard", trial, process)`` scope (so any chunking of the shard
        axis replays identical draws), then the stacked
        ``(n_shards, n_iterations, n_items)`` cost tensor folds through the
        schedule's whole-campaign kernel and jitter/OS noise apply plane by
        plane under the same absolute shard scopes — the same shape of
        work the tensor applications get, without any 3-D overrides.
        Versus running :meth:`thread_compute_times_batch` shard by shard
        the samples agree in distribution (the jitter/noise draw order
        differs), and the schedule fold itself is bit-identical per plane.
        Shards whose item counts differ (rare heterogeneous apps) fall back
        to per-plane ``simulate_batch`` folds — same kernels, same draws.
        """
        costs = []
        extras = []
        for trial, process in shards:
            with maybe_scope(rng, "shard", trial, process):
                self.begin_process(process, rng)
                costs.append(self.item_costs_batch(process, n_iterations, rng))
                extras.append(
                    self.application_delays_batch(process, n_iterations, rng)
                )
        extra = np.stack(extras)
        if len({plane.shape for plane in costs}) == 1:
            base = self.config.schedule.simulate_campaign(
                np.stack(costs), self.config.n_threads
            )
        else:  # ragged item counts across shards: per-plane batch folds
            base = np.stack(
                [
                    self.config.schedule.simulate_batch(plane, self.config.n_threads)
                    for plane in costs
                ]
            )
        if extra.shape != base.shape:
            raise ValueError(
                "application_delays_batch must return one value per "
                "(iteration, thread)"
            )
        return self._apply_campaign_noise(base + extra, shards, rng, noise)

    # ------------------------------------------------------------------
    # sampling (vectorised campaign path)
    # ------------------------------------------------------------------
    def thread_compute_times(
        self,
        *,
        process: int,
        iteration: int,
        rng: np.random.Generator,
        noise: Optional[OSNoiseModel] = None,
        cores: Optional[Sequence[Core]] = None,
        region_start_s: float = 0.0,
    ) -> np.ndarray:
        """Per-thread measured compute time of one process-iteration.

        Combines the schedule's per-thread busy time, application-level
        delays, execution jitter and OS-noise preemptions.
        """
        base = self.base_thread_times(process, iteration, rng)
        extra = self.application_delays(process, iteration, rng)
        if extra.shape != base.shape:
            raise ValueError("application_delays must return one value per thread")
        times = base + extra
        if noise is not None:
            if noise.spec.enabled and noise.spec.jitter_fraction > 0:
                jitter = rng.normal(1.0, noise.spec.jitter_fraction, size=times.shape)
                times = times * np.clip(jitter, 0.5, None)
            if cores is not None:
                # exact per-core noise (event-path parity)
                if len(cores) != len(times):
                    raise ValueError("need exactly one core per thread")
                times = times + np.array(
                    [
                        noise.delay_over(core, region_start_s, float(times[t]))
                        for t, core in enumerate(cores)
                    ]
                )
            else:
                # statistically equivalent vectorised noise (campaign fast path)
                times = times + noise.batch_delays(times, rng)
        return times

    # ------------------------------------------------------------------
    # reference kernel
    # ------------------------------------------------------------------
    @abstractmethod
    def run_reference_kernel(self, rng: np.random.Generator) -> Dict[str, float]:
        """Execute a reduced-scale version of the timed kernel.

        Returns a dictionary of checkable quantities (norms, energies, ...).
        Used by unit tests and by the quickstart example to show that the
        simulated work models correspond to real numerical kernels.
        """

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Human-readable application description for reports."""
        return {
            "name": self.name,
            "region": self.region,
            "n_threads": self.config.n_threads,
            "n_iterations": self.config.n_iterations,
            "schedule": type(self.config.schedule).__name__,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(threads={self.config.n_threads})"
