"""Proxy applications (MiniFE, MiniMD, MiniQMC).

Each application provides three things:

1. **A real (reduced-scale) kernel** — the numerical code the paper times
   (27-point-stencil CSR mat-vec, Lennard-Jones force loop, QMC walker
   moves), runnable directly for examples and validated in unit tests.
2. **A work model** — how the timed loop's iterations map to threads and how
   much compute each costs at the paper's problem sizes (200³ MiniFE mesh,
   128³ MiniMD box, one mover per thread for MiniQMC).  This is what shapes
   the thread-arrival distributions.
3. **A calibrated cost/noise model** — per-unit costs and application-level
   variability tuned so the simulated campaign reproduces the paper's
   measured distribution *shapes* (medians, IQRs, laggard rates, normality
   classes); see DESIGN.md §5 for the calibration targets and mechanisms.

Use :func:`get_application` to construct one by name.
"""

from repro.apps.base import ApplicationConfig, ProxyApplication
from repro.apps.minife.app import MiniFEApp
from repro.apps.minimd.app import MiniMDApp
from repro.apps.miniqmc.app import MiniQMCApp

#: Registry of application constructors by canonical name.
APPLICATIONS = {
    "minife": MiniFEApp,
    "minimd": MiniMDApp,
    "miniqmc": MiniQMCApp,
}


def get_application(name: str, **kwargs) -> ProxyApplication:
    """Construct a proxy application by name (``'minife'``, ``'minimd'``, ``'miniqmc'``)."""
    key = name.strip().lower()
    if key not in APPLICATIONS:
        raise ValueError(
            f"unknown application {name!r}; available: {sorted(APPLICATIONS)}"
        )
    return APPLICATIONS[key](**kwargs)


__all__ = [
    "ProxyApplication",
    "ApplicationConfig",
    "MiniFEApp",
    "MiniMDApp",
    "MiniQMCApp",
    "APPLICATIONS",
    "get_application",
]
