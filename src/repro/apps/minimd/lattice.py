"""FCC lattice initialisation (MiniMD's ``setup`` phase).

MiniMD initialises atoms on a face-centred-cubic lattice at reduced density
ρ* = 0.8442 (the standard Lennard-Jones melt benchmark), with small random
velocity perturbations.  The reduced-scale kernel uses the same setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: Standard LJ melt reduced density used by MiniMD's default input.
DEFAULT_DENSITY = 0.8442


@dataclass(frozen=True)
class LatticeBox:
    """Atoms and box geometry produced by :func:`fcc_lattice`."""

    positions: np.ndarray
    velocities: np.ndarray
    box_length: np.ndarray

    @property
    def n_atoms(self) -> int:
        return self.positions.shape[0]

    @property
    def volume(self) -> float:
        return float(np.prod(self.box_length))

    @property
    def density(self) -> float:
        return self.n_atoms / self.volume


def fcc_lattice(
    cells: Tuple[int, int, int],
    *,
    density: float = DEFAULT_DENSITY,
    temperature: float = 1.44,
    rng: Optional[np.random.Generator] = None,
) -> LatticeBox:
    """Create an FCC lattice of ``4 · cx · cy · cz`` atoms.

    Parameters
    ----------
    cells:
        Number of FCC unit cells per dimension.
    density:
        Reduced number density; sets the lattice constant.
    temperature:
        Reduced temperature of the initial Maxwell velocity distribution.
    rng:
        Source of the velocity perturbations (zero velocities if ``None``).
    """
    cx, cy, cz = cells
    if min(cx, cy, cz) < 1:
        raise ValueError("need at least one unit cell per dimension")
    if density <= 0:
        raise ValueError("density must be positive")
    lattice_constant = (4.0 / density) ** (1.0 / 3.0)
    basis = np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    )
    cells_grid = np.array(
        np.meshgrid(np.arange(cx), np.arange(cy), np.arange(cz), indexing="ij")
    ).reshape(3, -1).T
    positions = (
        (cells_grid[:, None, :] + basis[None, :, :]).reshape(-1, 3) * lattice_constant
    )
    n_atoms = positions.shape[0]
    box_length = np.array([cx, cy, cz], dtype=np.float64) * lattice_constant
    if rng is None:
        velocities = np.zeros_like(positions)
    else:
        velocities = rng.normal(0.0, np.sqrt(temperature), size=positions.shape)
        velocities -= velocities.mean(axis=0)  # zero total momentum
    return LatticeBox(positions=positions, velocities=velocities, box_length=box_length)
