"""The calibrated MiniMD proxy used by the campaign.

Timed region
    The Lennard-Jones forcing function (the most computationally intensive
    section), at the paper's 128³ compute volume distributed over 8 processes.

Work decomposition
    Atoms are statically block-distributed over the 48 threads; per-atom cost
    is (stored neighbours) × (cost per pair).  Because the melt is
    homogeneous every thread gets almost exactly the same work, which is why
    MiniMD's arrival distributions are tight and (per Table 1) mostly normal.

Two-phase behaviour (Figure 6)
    During the first ``warmup_iterations`` (19 in the paper) the timed region
    also absorbs neighbour-list (re)build and data-layout settling costs that
    differ per thread; the work model adds a per-thread uniform component in
    that phase, reproducing the wider, consistent early distribution of
    Figure 7a.  After warm-up only OS-noise interrupts perturb the tight
    distribution, producing the rare (≈ 5 %) high-magnitude laggards of
    Figure 7c.

Calibration
    Cost per pair is set so the median thread spends ≈ 24.74 ms in the
    region; the warm-up spread is ± ≈ 1 ms around a slightly higher median
    (the paper reports medians between 25 and 26 ms with a range just over
    2 ms for the first phase).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.apps.base import ApplicationConfig, ProxyApplication
from repro.apps.minimd.forces import lennard_jones_forces
from repro.apps.minimd.integrate import run_md
from repro.apps.minimd.lattice import DEFAULT_DENSITY, fcc_lattice
from repro.apps.minimd.neighbor import DEFAULT_CUTOFF, build_neighbor_lists, expected_neighbors

#: The paper's mean median arrival time for MiniMD (seconds).
TARGET_MEDIAN_ARRIVAL_S = 24.74e-3
#: Warm-up phase median (paper: "a median of between 25 ms and 26 ms").
TARGET_WARMUP_MEDIAN_S = 25.75e-3


@dataclass
class MiniMDConfig(ApplicationConfig):
    """MiniMD-specific knobs on top of the shared application config."""

    #: production problem: 128³ unit cells across the whole 8-process job
    problem_cells: int = 128
    n_job_processes: int = 8
    density: float = DEFAULT_DENSITY
    cutoff: float = DEFAULT_CUTOFF
    #: seconds per stored pair interaction; ``None`` → calibrated
    time_per_pair_s: Optional[float] = None
    #: number of initial iterations exhibiting the wider warm-up distribution
    warmup_iterations: int = 19
    #: half-width of the warm-up per-thread uniform spread (seconds)
    warmup_spread_s: float = 1.0e-3
    #: atoms-per-thread relative variation (neighbour-count fluctuation)
    work_imbalance_fraction: float = 0.0015
    #: reduced-scale kernel: unit cells per dimension
    kernel_cells: int = 5
    kernel_steps: int = 5

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.problem_cells < 1 or self.n_job_processes < 1:
            raise ValueError("problem_cells and n_job_processes must be >= 1")
        if self.warmup_iterations < 0:
            raise ValueError("warmup_iterations must be non-negative")
        if self.warmup_spread_s < 0 or self.work_imbalance_fraction < 0:
            raise ValueError("spread parameters must be non-negative")


class MiniMDApp(ProxyApplication):
    """MiniMD proxy application (timed region: Lennard-Jones forces)."""

    name = "minimd"
    region = "force_lj"

    def __init__(self, config: Optional[MiniMDConfig] = None) -> None:
        super().__init__(config if config is not None else MiniMDConfig())
        self.config: MiniMDConfig
        cfg = self.config
        total_atoms = 4 * cfg.problem_cells**3
        self.atoms_per_process = total_atoms // cfg.n_job_processes
        self.pairs_per_atom = expected_neighbors(cfg.density, cfg.cutoff)
        self._time_per_pair = self._calibrate_time_per_pair()

    # ------------------------------------------------------------------
    def _calibrate_time_per_pair(self) -> float:
        if self.config.time_per_pair_s is not None:
            if self.config.time_per_pair_s <= 0:
                raise ValueError("time_per_pair_s must be positive")
            return self.config.time_per_pair_s
        atoms_per_thread = self.atoms_per_process / self.config.n_threads
        pairs_per_thread = atoms_per_thread * self.pairs_per_atom
        return TARGET_MEDIAN_ARRIVAL_S / pairs_per_thread

    @property
    def time_per_pair_s(self) -> float:
        """Calibrated (or configured) cost of one pair interaction, in seconds."""
        return self._time_per_pair

    def in_warmup(self, iteration: int) -> bool:
        """Whether ``iteration`` falls in the wider warm-up phase."""
        return iteration < self.config.warmup_iterations

    # ------------------------------------------------------------------
    # work model
    # ------------------------------------------------------------------
    def item_costs(
        self, process: int, iteration: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Cost of every atom block of the force loop.

        Atoms are pre-grouped into ``n_threads`` blocks (the static schedule
        then maps one block per thread); each block's cost fluctuates slightly
        with the realised neighbour counts.
        """
        cfg = self.config
        atoms_per_thread = self.atoms_per_process / cfg.n_threads
        base = atoms_per_thread * self.pairs_per_atom * self._time_per_pair
        fluctuation = rng.normal(1.0, cfg.work_imbalance_fraction, size=cfg.n_threads)
        return base * np.clip(fluctuation, 0.5, None)

    def application_delays(
        self, process: int, iteration: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Warm-up phase: neighbour-list build / layout settling per thread."""
        cfg = self.config
        if not self.in_warmup(iteration):
            return np.zeros(cfg.n_threads)
        centre = TARGET_WARMUP_MEDIAN_S - TARGET_MEDIAN_ARRIVAL_S
        return np.clip(
            centre + rng.uniform(-cfg.warmup_spread_s, cfg.warmup_spread_s, cfg.n_threads),
            0.0,
            None,
        )

    # ------------------------------------------------------------------
    # batched work model (the ``"batched"`` campaign backend)
    # ------------------------------------------------------------------
    def item_costs_batch(
        self, process: int, n_iterations: int, rng: np.random.Generator
    ) -> np.ndarray:
        """A shard's neighbour-count fluctuations as one 2-D normal draw."""
        cfg = self.config
        atoms_per_thread = self.atoms_per_process / cfg.n_threads
        base = atoms_per_thread * self.pairs_per_atom * self._time_per_pair
        fluctuation = rng.normal(
            1.0, cfg.work_imbalance_fraction, size=(n_iterations, cfg.n_threads)
        )
        return base * np.clip(fluctuation, 0.5, None)

    def application_delays_batch(
        self, process: int, n_iterations: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Warm-up settling of the whole shard as one 2-D uniform draw over
        the (at most ``warmup_iterations``) warm-up rows."""
        cfg = self.config
        delays = np.zeros((n_iterations, cfg.n_threads))
        n_warm = min(cfg.warmup_iterations, n_iterations)
        if n_warm:
            centre = TARGET_WARMUP_MEDIAN_S - TARGET_MEDIAN_ARRIVAL_S
            spread = rng.uniform(
                -cfg.warmup_spread_s, cfg.warmup_spread_s, size=(n_warm, cfg.n_threads)
            )
            delays[:n_warm] = np.clip(centre + spread, 0.0, None)
        return delays

    # ------------------------------------------------------------------
    # whole-campaign work model (the ``"campaign"`` backend)
    # ------------------------------------------------------------------
    campaign_tensor = True

    # costs and warm-up delays use the generic per-shard campaign hooks:
    # each shard's 2-D batch draws sit under its absolute
    # ("shard", trial, process) scope, so any chunking or worker assignment
    # replays identical fluctuations and warm-up settling

    # ------------------------------------------------------------------
    # reference kernel
    # ------------------------------------------------------------------
    def run_reference_kernel(self, rng: np.random.Generator) -> Dict[str, float]:
        """Run a short reduced-scale LJ melt; returns verification quantities."""
        cfg = self.config
        cells = (cfg.kernel_cells,) * 3
        box = fcc_lattice(cells, density=cfg.density, rng=rng)
        # zero skin so the measured neighbour count is directly comparable to
        # the analytic expectation used by the production-scale work model
        lists = build_neighbor_lists(box, cutoff=cfg.cutoff, skin=0.0)
        initial = lennard_jones_forces(box, lists)
        final = run_md(box, n_steps=cfg.kernel_steps, cutoff=cfg.cutoff)
        return {
            "atoms": float(box.n_atoms),
            "mean_neighbors": float(lists.counts().mean()),
            "expected_neighbors": self.pairs_per_atom,
            "initial_potential": initial.potential_energy,
            "net_force_magnitude": float(np.abs(initial.forces.sum(axis=0)).max()),
            "final_total_energy": final.total_energy,
        }

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update(
            {
                "atoms_per_process": self.atoms_per_process,
                "pairs_per_atom": self.pairs_per_atom,
                "time_per_pair_ns": self._time_per_pair * 1e9,
                "warmup_iterations": self.config.warmup_iterations,
            }
        )
        return info
