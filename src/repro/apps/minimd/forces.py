"""The timed kernel: Lennard-Jones force computation.

Standard 12-6 Lennard-Jones with a cutoff, computed over half neighbour lists
(forces applied to both atoms of a pair, Newton's third law), exactly the
structure of MiniMD's ``force_lj`` loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.apps.minimd.lattice import LatticeBox
from repro.apps.minimd.neighbor import NeighborLists


@dataclass(frozen=True)
class ForceResult:
    """Forces plus the scalar thermodynamic outputs MiniMD reports."""

    forces: np.ndarray
    potential_energy: float
    virial: float
    pairs_within_cutoff: int


def lennard_jones_forces(
    box: LatticeBox,
    neighbor_lists: NeighborLists,
    *,
    epsilon: float = 1.0,
    sigma: float = 1.0,
) -> ForceResult:
    """Compute LJ forces, potential energy and virial over half lists."""
    if epsilon <= 0 or sigma <= 0:
        raise ValueError("epsilon and sigma must be positive")
    positions = box.positions
    lengths = box.box_length
    cutoff_sq = neighbor_lists.cutoff**2
    forces = np.zeros_like(positions)
    potential = 0.0
    virial = 0.0
    pairs = 0
    sigma6 = sigma**6
    for i, neigh in enumerate(neighbor_lists.neighbors):
        if neigh.size == 0:
            continue
        delta = positions[i] - positions[neigh]
        delta -= lengths * np.round(delta / lengths)
        dist_sq = np.einsum("ij,ij->i", delta, delta)
        mask = dist_sq < cutoff_sq
        if not np.any(mask):
            continue
        pairs += int(mask.sum())
        d2 = dist_sq[mask]
        d = delta[mask]
        inv2 = 1.0 / d2
        inv6 = sigma6 * inv2**3
        # f/r = 24 ε (2 (σ/r)^12 − (σ/r)^6) / r²
        force_over_r = 24.0 * epsilon * inv2 * inv6 * (2.0 * inv6 - 1.0)
        pair_forces = d * force_over_r[:, None]
        forces[i] += pair_forces.sum(axis=0)
        np.add.at(forces, neigh[mask], -pair_forces)
        potential += float(np.sum(4.0 * epsilon * inv6 * (inv6 - 1.0)))
        virial += float(np.sum(force_over_r * d2))
    return ForceResult(
        forces=forces,
        potential_energy=potential,
        virial=virial,
        pairs_within_cutoff=pairs,
    )
