"""Velocity-Verlet time integration (the loop around the timed force region)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.apps.minimd.forces import ForceResult, lennard_jones_forces
from repro.apps.minimd.lattice import LatticeBox
from repro.apps.minimd.neighbor import NeighborLists, build_neighbor_lists


@dataclass
class IntegrationState:
    """Mutable state carried across timesteps."""

    box: LatticeBox
    forces: np.ndarray
    potential_energy: float
    kinetic_energy: float

    @property
    def total_energy(self) -> float:
        return self.potential_energy + self.kinetic_energy


def kinetic_energy(velocities: np.ndarray) -> float:
    """Reduced-units kinetic energy (unit mass)."""
    return 0.5 * float(np.sum(velocities * velocities))


def velocity_verlet_step(
    state: IntegrationState,
    neighbor_lists: NeighborLists,
    *,
    dt: float = 0.005,
    force_fn: Optional[Callable[[LatticeBox, NeighborLists], ForceResult]] = None,
) -> IntegrationState:
    """Advance the system one timestep with velocity Verlet.

    The force evaluation inside this step is the paper's timed compute
    region; the integration bookkeeping around it is what an early-bird
    implementation would overlap with the halo exchange.
    """
    if dt <= 0:
        raise ValueError("dt must be positive")
    evaluate = force_fn if force_fn is not None else lennard_jones_forces
    box = state.box
    velocities = box.velocities + 0.5 * dt * state.forces
    positions = box.positions + dt * velocities
    positions %= box.box_length  # periodic wrap
    moved = LatticeBox(
        positions=positions, velocities=velocities, box_length=box.box_length
    )
    result = evaluate(moved, neighbor_lists)
    velocities = velocities + 0.5 * dt * result.forces
    final = LatticeBox(
        positions=positions, velocities=velocities, box_length=box.box_length
    )
    return IntegrationState(
        box=final,
        forces=result.forces,
        potential_energy=result.potential_energy,
        kinetic_energy=kinetic_energy(velocities),
    )


def run_md(
    box: LatticeBox,
    *,
    n_steps: int = 10,
    dt: float = 0.005,
    rebuild_every: int = 5,
    cutoff: float = 2.5,
) -> IntegrationState:
    """Short MD run for the reference kernel (rebuilds neighbour lists periodically)."""
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    lists = build_neighbor_lists(box, cutoff=cutoff)
    initial = lennard_jones_forces(box, lists)
    state = IntegrationState(
        box=box,
        forces=initial.forces,
        potential_energy=initial.potential_energy,
        kinetic_energy=kinetic_energy(box.velocities),
    )
    for step in range(1, n_steps + 1):
        if rebuild_every and step % rebuild_every == 0:
            lists = build_neighbor_lists(state.box, cutoff=cutoff)
        state = velocity_verlet_step(state, lists, dt=dt)
    return state
