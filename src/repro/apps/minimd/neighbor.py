"""Neighbour lists: cell-list construction plus the analytic count model.

MiniMD rebuilds neighbour lists every few timesteps; between rebuilds the
force kernel iterates over each atom's stored neighbours.  Two things matter
for the work model:

* the **expected neighbour count** per atom, which sets the per-atom force
  cost at production scale (:func:`expected_neighbors`), and
* the **rebuild cost and its variability**, which is what widens the thread
  arrival distribution during the application's first iterations (the paper's
  Figure 6, iterations one through nineteen).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.apps.minimd.lattice import LatticeBox

#: MiniMD's default force cutoff (reduced units).
DEFAULT_CUTOFF = 2.5
#: Default neighbour-list skin distance.
DEFAULT_SKIN = 0.3


def expected_neighbors(
    density: float, cutoff: float = DEFAULT_CUTOFF, *, half_list: bool = True
) -> float:
    """Expected neighbours per atom inside ``cutoff`` at the given density.

    ``(4/3)·π·r³·ρ`` for a full list; MiniMD's default is a half list (each
    pair stored once), so the per-atom count is half that.
    """
    if density <= 0 or cutoff <= 0:
        raise ValueError("density and cutoff must be positive")
    full = 4.0 / 3.0 * np.pi * cutoff**3 * density
    return full / 2.0 if half_list else full


@dataclass
class NeighborLists:
    """Per-atom neighbour lists (half lists: ``j > i`` only)."""

    neighbors: List[np.ndarray]
    cutoff: float

    @property
    def n_atoms(self) -> int:
        return len(self.neighbors)

    def counts(self) -> np.ndarray:
        return np.array([len(n) for n in self.neighbors])

    @property
    def total_pairs(self) -> int:
        return int(self.counts().sum())


def build_neighbor_lists(
    box: LatticeBox, cutoff: float = DEFAULT_CUTOFF, skin: float = DEFAULT_SKIN
) -> NeighborLists:
    """Cell-list neighbour search with periodic boundaries (reduced scale).

    Builds half lists (``j > i``), the storage MiniMD's force kernel expects.
    Cost is O(N) for homogeneous densities; intended for the reference kernel
    (≤ ~10⁵ atoms), not the 128³ production volume.
    """
    if cutoff <= 0 or skin < 0:
        raise ValueError("cutoff must be positive and skin non-negative")
    reach = cutoff + skin
    positions = box.positions
    lengths = box.box_length
    n_atoms = positions.shape[0]
    n_cells = np.maximum((lengths // reach).astype(int), 1)
    cell_size = lengths / n_cells
    cell_of = (positions // cell_size).astype(int) % n_cells
    buckets: Dict[tuple, List[int]] = {}
    for idx, cell in enumerate(map(tuple, cell_of)):
        buckets.setdefault(cell, []).append(idx)

    reach_sq = reach * reach
    neighbors: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * n_atoms
    offsets = [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
    ]
    for idx in range(n_atoms):
        cell = cell_of[idx]
        # deduplicate neighbour cells: with fewer than three cells per
        # dimension the ±1 offsets wrap onto the same cell
        neighbor_cells = {tuple((cell + off) % n_cells) for off in offsets}
        candidates: List[int] = []
        for key in neighbor_cells:
            candidates.extend(buckets.get(key, ()))
        cand = np.array([c for c in candidates if c > idx], dtype=np.int64)
        if cand.size == 0:
            continue
        delta = positions[cand] - positions[idx]
        delta -= lengths * np.round(delta / lengths)  # minimum image
        dist_sq = np.einsum("ij,ij->i", delta, delta)
        neighbors[idx] = cand[dist_sq < reach_sq]
    return NeighborLists(neighbors=neighbors, cutoff=cutoff)
