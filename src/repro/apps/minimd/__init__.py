"""MiniMD: a Lennard-Jones molecular-dynamics proxy (Mantevo, based on LAMMPS).

The paper times MiniMD's Lennard-Jones forcing function — "the most
computationally intensive section of the application" — at a compute volume
of 128³.  This subpackage provides:

* :mod:`~repro.apps.minimd.lattice` — FCC lattice setup (positions,
  velocities, box geometry).
* :mod:`~repro.apps.minimd.neighbor` — cell-list neighbour search plus the
  analytic expected-neighbour-count model used at production scale.
* :mod:`~repro.apps.minimd.forces` — the Lennard-Jones force/energy kernel.
* :mod:`~repro.apps.minimd.integrate` — velocity-Verlet integration (the loop
  the timed region sits inside).
* :mod:`~repro.apps.minimd.app` — :class:`MiniMDApp`, the calibrated proxy
  used by the campaign (including the two-phase warm-up behaviour of
  Figure 6).
"""

from repro.apps.minimd.app import MiniMDApp, MiniMDConfig
from repro.apps.minimd.forces import lennard_jones_forces
from repro.apps.minimd.integrate import velocity_verlet_step
from repro.apps.minimd.lattice import fcc_lattice
from repro.apps.minimd.neighbor import build_neighbor_lists, expected_neighbors

__all__ = [
    "MiniMDApp",
    "MiniMDConfig",
    "fcc_lattice",
    "build_neighbor_lists",
    "expected_neighbors",
    "lennard_jones_forces",
    "velocity_verlet_step",
]
