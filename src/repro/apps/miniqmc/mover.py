"""The timed kernel: VMC movers.

Each mover advances its walker through a sweep of single-electron moves:
propose a Gaussian displacement, evaluate the orbitals at the new position,
accept or reject with a Metropolis-style ratio, and (on acceptance) update the
walker.  The *number of accepted moves varies per walker*, and accepted moves
cost more than rejected ones — this is the physical origin of the wide,
approximately normal spread of per-thread compute times the paper measures
for MiniQMC (Figures 8 and 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.apps.miniqmc.spline import SplineOrbitalModel
from repro.apps.miniqmc.walkers import Walker


@dataclass
class MoverStatistics:
    """Counters a mover accumulates over a sweep."""

    proposed: int = 0
    accepted: int = 0
    orbital_evaluations: int = 0

    @property
    def acceptance_ratio(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0


@dataclass
class VMCMover:
    """A variational Monte Carlo mover bound to one walker.

    Parameters
    ----------
    orbitals:
        The shared single-particle-orbital set.
    timestep:
        Width of the Gaussian move proposals.
    rng:
        The mover's private random stream.
    """

    orbitals: SplineOrbitalModel
    timestep: float = 0.2
    rng: np.random.Generator = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.timestep <= 0:
            raise ValueError("timestep must be positive")
        if self.rng is None:
            self.rng = np.random.default_rng(0)
        self.statistics = MoverStatistics()

    # ------------------------------------------------------------------
    def _log_weight(self, orbital_values: np.ndarray) -> float:
        """A cheap stand-in for the log wavefunction magnitude."""
        return float(np.log1p(np.sum(orbital_values**2)))

    def advance_electron(self, walker: Walker, electron: int) -> bool:
        """Propose and (maybe) accept one electron move; returns acceptance."""
        old_position = walker.electrons[electron].copy()
        old_values = self.orbitals.evaluate(old_position)
        proposal = (old_position + self.rng.normal(0.0, self.timestep, size=3)) % 1.0
        new_values = self.orbitals.evaluate(proposal)
        self.statistics.proposed += 1
        self.statistics.orbital_evaluations += 2
        log_ratio = self._log_weight(new_values) - self._log_weight(old_values)
        if np.log(self.rng.uniform()) < log_ratio:
            walker.electrons[electron] = proposal
            self.statistics.accepted += 1
            return True
        return False

    def sweep(self, walker: Walker, n_sweeps: int = 1) -> MoverStatistics:
        """Advance every electron ``n_sweeps`` times (one timed region body)."""
        if n_sweeps < 1:
            raise ValueError("n_sweeps must be >= 1")
        for _ in range(n_sweeps):
            for electron in range(walker.n_electrons):
                self.advance_electron(walker, electron)
        walker.age += 1
        return self.statistics


def run_mover_sweep(
    n_electrons: int = 8,
    n_sweeps: int = 2,
    *,
    n_orbitals: int = 8,
    seed: int = 0,
) -> Dict[str, float]:
    """Convenience wrapper used by the reference kernel and the quickstart."""
    rng = np.random.default_rng(seed)
    orbitals = SplineOrbitalModel(grid=8, n_orbitals=n_orbitals, rng=rng)
    walker = Walker(electrons=rng.uniform(size=(n_electrons, 3)))
    mover = VMCMover(orbitals=orbitals, rng=rng)
    stats = mover.sweep(walker, n_sweeps=n_sweeps)
    return {
        "proposed": float(stats.proposed),
        "accepted": float(stats.accepted),
        "acceptance_ratio": stats.acceptance_ratio,
        "orbital_evaluations": float(stats.orbital_evaluations),
    }
