"""MiniQMC: a quantum Monte Carlo proxy (based on QMCPACK).

The paper times "the entirety of the computation for the individual threaded
'movers'": each OpenMP thread owns a mover (a walker plus its wavefunction
buffers) and advances it through a sweep of single-particle moves.  This
subpackage provides:

* :mod:`~repro.apps.miniqmc.spline` — a cost/evaluation model of the B-spline
  single-particle orbitals (the dominant kernel inside a move).
* :mod:`~repro.apps.miniqmc.walkers` — walker state (electron positions).
* :mod:`~repro.apps.miniqmc.mover` — the VMC mover kernel: propose, evaluate,
  accept/reject; the per-walker acceptance history is what spreads the
  per-thread compute times.
* :mod:`~repro.apps.miniqmc.app` — :class:`MiniQMCApp`, the calibrated proxy
  used by the campaign.
"""

from repro.apps.miniqmc.app import MiniQMCApp, MiniQMCConfig
from repro.apps.miniqmc.mover import VMCMover, run_mover_sweep
from repro.apps.miniqmc.spline import SplineOrbitalModel
from repro.apps.miniqmc.walkers import Walker, WalkerEnsemble

__all__ = [
    "MiniQMCApp",
    "MiniQMCConfig",
    "SplineOrbitalModel",
    "Walker",
    "WalkerEnsemble",
    "VMCMover",
    "run_mover_sweep",
]
