"""Walker state: electron configurations advanced by the movers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class Walker:
    """One walker: the positions of its electrons in the unit cell ([0,1)³)."""

    electrons: np.ndarray
    weight: float = 1.0
    age: int = 0

    def __post_init__(self) -> None:
        self.electrons = np.asarray(self.electrons, dtype=np.float64)
        if self.electrons.ndim != 2 or self.electrons.shape[1] != 3:
            raise ValueError("electrons must be an (n_electrons, 3) array")

    @property
    def n_electrons(self) -> int:
        return self.electrons.shape[0]


@dataclass
class WalkerEnsemble:
    """The walker population of one process (one walker per mover/thread)."""

    walkers: List[Walker] = field(default_factory=list)

    @classmethod
    def create(
        cls,
        n_walkers: int,
        n_electrons: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "WalkerEnsemble":
        """Random initial configuration of ``n_walkers`` × ``n_electrons``."""
        if n_walkers < 1 or n_electrons < 1:
            raise ValueError("n_walkers and n_electrons must be >= 1")
        gen = rng if rng is not None else np.random.default_rng(0)
        walkers = [
            Walker(electrons=gen.uniform(size=(n_electrons, 3)))
            for _ in range(n_walkers)
        ]
        return cls(walkers=walkers)

    @property
    def n_walkers(self) -> int:
        return len(self.walkers)

    def total_electrons(self) -> int:
        return sum(w.n_electrons for w in self.walkers)
