"""The calibrated MiniQMC proxy used by the campaign.

Timed region
    "The entirety of the computation for the individual threaded movers" —
    each of the 48 threads advances its own walker through a sweep of
    electron moves.

Work decomposition
    Exactly one mover per thread (the loop has 48 items); there is no
    work-sharing imbalance.  What spreads the arrival times is the *walkers
    themselves*: per-sweep cost depends on how many proposed moves are
    accepted (accepted moves pay the wavefunction update) and on the walker's
    configuration, producing a wide, approximately normal per-thread
    distribution (the paper: IQR ≈ 9 ms around a ≈ 61 ms median, ~95 % of
    process-iterations pass the normality tests) with little drift across
    iterations (Figure 8).

Calibration
    The per-move cost is set so the mean per-thread mover time is ≈ 60.91 ms;
    the per-walker relative standard deviation is set so the process-iteration
    IQR is ≈ 9 ms (σ ≈ IQR / 1.349 ≈ 6.7 ms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.apps.base import ApplicationConfig, ProxyApplication
from repro.apps.miniqmc.mover import run_mover_sweep
from repro.sim.random import maybe_scope

#: The paper's mean median arrival time for MiniQMC (seconds).
TARGET_MEDIAN_ARRIVAL_S = 60.91e-3
#: The paper's mean process-iteration IQR (seconds); σ = IQR / 1.349.
TARGET_IQR_S = 9.05e-3


@dataclass
class MiniQMCConfig(ApplicationConfig):
    """MiniQMC-specific knobs on top of the shared application config."""

    #: electrons per walker (NiO-like miniQMC problem sizes are O(100))
    n_electrons: int = 128
    #: electron sweeps per timed region instance
    sweeps_per_iteration: int = 1
    #: mean mover time per thread; ``None`` → the paper's 60.91 ms
    mover_mean_s: Optional[float] = None
    #: relative standard deviation of per-walker mover time;
    #: ``None`` → calibrated from the paper's IQR
    mover_relative_sd: Optional[float] = None
    #: relative standard deviation of the per-process mean mover time
    #: (different walker populations are cheaper or dearer on average)
    process_mean_spread: float = 0.02
    #: half-width of the per-process relative spread of the mover-time
    #: standard deviation (walker populations also differ in variability);
    #: this between-process heterogeneity is what makes the *aggregated*
    #: (application / application-iteration level) distribution reject
    #: normality while individual process-iterations remain normal (§4.1)
    process_sd_spread: float = 0.35
    #: reduced-scale kernel parameters
    kernel_electrons: int = 8
    kernel_orbitals: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_electrons < 1 or self.sweeps_per_iteration < 1:
            raise ValueError("n_electrons and sweeps_per_iteration must be >= 1")


class MiniQMCApp(ProxyApplication):
    """MiniQMC proxy application (timed region: the threaded movers)."""

    name = "miniqmc"
    region = "movers"

    def __init__(self, config: Optional[MiniQMCConfig] = None) -> None:
        super().__init__(config if config is not None else MiniQMCConfig())
        self.config: MiniQMCConfig
        self.mover_mean_s = (
            self.config.mover_mean_s
            if self.config.mover_mean_s is not None
            else TARGET_MEDIAN_ARRIVAL_S
        )
        if self.mover_mean_s <= 0:
            raise ValueError("mover_mean_s must be positive")
        if self.config.mover_relative_sd is not None:
            self.mover_relative_sd = self.config.mover_relative_sd
        else:
            sigma = TARGET_IQR_S / 1.349
            self.mover_relative_sd = sigma / self.mover_mean_s
        if self.mover_relative_sd < 0:
            raise ValueError("mover_relative_sd must be non-negative")
        if not 0.0 <= self.config.process_sd_spread < 1.0:
            raise ValueError("process_sd_spread must be in [0, 1)")
        # neutral per-process walker-population parameters until begin_process
        self._process_mean_scale = 1.0
        self._process_sd_scale = 1.0

    # ------------------------------------------------------------------
    # per-process lifecycle
    # ------------------------------------------------------------------
    def begin_process(self, process: int, rng: np.random.Generator) -> None:
        """Draw the walker-population statistics of this (trial, process).

        A process's walkers keep their character for the whole trial: some
        populations are on average cheaper/dearer to move and some are more
        variable.  Within one process-iteration the mover times stay normal
        (so Table 1's ~95 % pass rate holds), but pooling processes with
        different variances produces the heavier-than-normal aggregate the
        paper observes at the application and application-iteration levels.
        """
        cfg = self.config
        self._process_mean_scale = float(
            np.clip(rng.normal(1.0, cfg.process_mean_spread), 0.5, 1.5)
        )
        self._process_sd_scale = float(
            rng.uniform(1.0 - cfg.process_sd_spread, 1.0 + cfg.process_sd_spread)
        )

    # ------------------------------------------------------------------
    # work model
    # ------------------------------------------------------------------
    def item_costs(
        self, process: int, iteration: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Cost of every mover (one loop item per thread).

        Per-walker times are independent normals around the process's mean;
        the truncation at 20 % of the mean only guards against (astronomically
        unlikely) negative draws and does not measurably distort normality.
        """
        cfg = self.config
        mean = self.mover_mean_s * self._process_mean_scale
        sd = self.mover_mean_s * self.mover_relative_sd * self._process_sd_scale
        draws = rng.normal(mean, sd, size=cfg.n_threads)
        return np.clip(draws, 0.2 * self.mover_mean_s, None) * cfg.sweeps_per_iteration

    def item_costs_batch(
        self, process: int, n_iterations: int, rng: np.random.Generator
    ) -> np.ndarray:
        """A shard's per-walker mover times as one 2-D normal draw (the
        ``"batched"`` campaign backend); same truncation as the
        per-iteration path."""
        cfg = self.config
        mean = self.mover_mean_s * self._process_mean_scale
        sd = self.mover_mean_s * self.mover_relative_sd * self._process_sd_scale
        draws = rng.normal(mean, sd, size=(n_iterations, cfg.n_threads))
        return np.clip(draws, 0.2 * self.mover_mean_s, None) * cfg.sweeps_per_iteration

    # ------------------------------------------------------------------
    # whole-campaign work model (the ``"campaign"`` backend)
    # ------------------------------------------------------------------
    campaign_tensor = True

    def begin_campaign(self, shards, rng) -> None:
        """Walker-population statistics of *all* shards (the tensor analogue
        of :meth:`begin_process`).

        The realized per-process (mean, sd) parameters shape every cost draw
        of a shard, so they are taken from the *same* per-shard ``"work"``
        streams :meth:`begin_process` consumes under the per-shard backends
        — the campaign backend's mixture components are then bit-identical
        to the vectorized/batched ones, and distributional agreement holds
        even for small process ensembles.  Two scalar draws per shard keep
        this chunk-invariant (each shard's stream is touched exactly once,
        whatever the chunking).
        """
        cfg = self.config
        streams = getattr(rng, "root_streams", None)
        if streams is not None:
            means = np.empty(len(shards))
            sds = np.empty(len(shards))
            for index, (trial, process) in enumerate(shards):
                work_rng = streams.get(self.name, "work", int(trial), int(process))
                self.begin_process(int(process), work_rng)
                means[index] = self._process_mean_scale
                sds[index] = self._process_sd_scale
            self._campaign_mean_scales = means
            self._campaign_sd_scales = sds
            return
        # plain-Generator fallback: shard-major tensor draws
        self._campaign_mean_scales = np.clip(
            rng.normal(1.0, cfg.process_mean_spread, size=len(shards)), 0.5, 1.5
        )
        self._campaign_sd_scales = rng.uniform(
            1.0 - cfg.process_sd_spread,
            1.0 + cfg.process_sd_spread,
            size=len(shards),
        )

    def item_costs_campaign(self, shards, n_iterations, rng):
        """All shards' per-walker mover times, one plane draw per shard with
        that shard's realized (mean, sd) parameters.

        Each plane sits under its absolute ``("shard", trial, process)``
        scope, so a shard's mover times depend only on its own identity —
        any chunking or worker assignment replays identical draws.
        """
        cfg = self.config
        planes = np.empty((len(shards), n_iterations, cfg.n_threads))
        for index, (trial, process) in enumerate(shards):
            mean = self.mover_mean_s * self._campaign_mean_scales[index]
            sd = (
                self.mover_mean_s
                * self.mover_relative_sd
                * self._campaign_sd_scales[index]
            )
            with maybe_scope(rng, "shard", int(trial), int(process)):
                planes[index] = rng.normal(
                    mean, sd, size=(n_iterations, cfg.n_threads)
                )
        draws = np.clip(planes, 0.2 * self.mover_mean_s, None)
        return draws * cfg.sweeps_per_iteration

    # ------------------------------------------------------------------
    # reference kernel
    # ------------------------------------------------------------------
    def run_reference_kernel(self, rng: np.random.Generator) -> Dict[str, float]:
        """Run one reduced-scale mover sweep; returns verification quantities."""
        cfg = self.config
        return run_mover_sweep(
            n_electrons=cfg.kernel_electrons,
            n_sweeps=cfg.sweeps_per_iteration,
            n_orbitals=cfg.kernel_orbitals,
            seed=int(rng.integers(0, 2**31 - 1)),
        )

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update(
            {
                "n_electrons": self.config.n_electrons,
                "mover_mean_ms": self.mover_mean_s * 1e3,
                "mover_relative_sd": self.mover_relative_sd,
            }
        )
        return info
