"""B-spline single-particle-orbital evaluation (cost model + small real kernel).

In QMCPACK/miniQMC the dominant per-move cost is evaluating all single
particle orbitals (SPOs) at the proposed electron position via 3-D cubic
B-splines, plus a wavefunction (determinant/Jastrow) update when the move is
accepted.  The real kernel here evaluates genuine cubic B-spline basis
functions on a coefficient grid — small enough to run in tests — while the
cost model exposes the operation counts the calibrated work model charges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


def cubic_bspline_weights(t: float) -> np.ndarray:
    """The four cubic B-spline basis weights for fractional coordinate ``t``."""
    if not 0.0 <= t <= 1.0:
        raise ValueError("fractional coordinate must lie in [0, 1]")
    it = 1.0 - t
    return np.array(
        [
            it * it * it / 6.0,
            (3.0 * t**3 - 6.0 * t**2 + 4.0) / 6.0,
            (-3.0 * t**3 + 3.0 * t**2 + 3.0 * t + 1.0) / 6.0,
            t * t * t / 6.0,
        ]
    )


@dataclass
class SplineOrbitalModel:
    """A periodic 3-D cubic B-spline orbital set.

    Parameters
    ----------
    grid:
        Spline grid points per dimension.
    n_orbitals:
        Number of orbitals evaluated per electron move.
    rng:
        Source of the (random but fixed) spline coefficients.
    """

    grid: int = 8
    n_orbitals: int = 16
    rng: np.random.Generator = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.grid < 4:
            raise ValueError("grid must be >= 4 for cubic splines")
        if self.n_orbitals < 1:
            raise ValueError("n_orbitals must be >= 1")
        rng = self.rng if self.rng is not None else np.random.default_rng(0)
        self.coefficients = rng.standard_normal(
            (self.grid, self.grid, self.grid, self.n_orbitals)
        )

    # ------------------------------------------------------------------
    def evaluate(self, position: np.ndarray) -> np.ndarray:
        """Evaluate all orbitals at a position in [0, 1)³ (periodic)."""
        pos = np.asarray(position, dtype=np.float64) % 1.0
        scaled = pos * self.grid
        base = np.floor(scaled).astype(int)
        frac = scaled - base
        wx = cubic_bspline_weights(float(frac[0]))
        wy = cubic_bspline_weights(float(frac[1]))
        wz = cubic_bspline_weights(float(frac[2]))
        ix = (base[0] + np.arange(-1, 3)) % self.grid
        iy = (base[1] + np.arange(-1, 3)) % self.grid
        iz = (base[2] + np.arange(-1, 3)) % self.grid
        block = self.coefficients[np.ix_(ix, iy, iz)]
        return np.einsum("i,j,k,ijko->o", wx, wy, wz, block)

    # ------------------------------------------------------------------
    def flops_per_evaluation(self) -> int:
        """Approximate floating-point operations of one SPO evaluation.

        4³ spline nodes × n_orbitals multiply-adds plus the weight set-up —
        the quantity the production-scale cost model scales by.
        """
        return 2 * 64 * self.n_orbitals + 3 * 24
