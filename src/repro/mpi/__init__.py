"""Simulated MPI layer.

The paper's early-bird question is ultimately a communication question: given
the measured thread arrival times, how much sooner can message contents be
delivered if each thread initiates transmission of its own partition (MPI 4.0
partitioned communication) instead of waiting for the slowest thread (classic
bulk-synchronous send)?  Answering it quantitatively needs an MPI model:

* :mod:`~repro.mpi.datatypes` — element types and buffer descriptors.
* :mod:`~repro.mpi.network` — a LogGP-style network/NIC model with an
  Omni-Path-like preset (the paper's interconnect).
* :mod:`~repro.mpi.comm` / :mod:`~repro.mpi.p2p` /
  :mod:`~repro.mpi.collectives` — simulated communicators, point-to-point
  messaging and collectives on the discrete-event engine.
* :mod:`~repro.mpi.partitioned` — MPI-4.0-style partitioned transfers
  (``Psend_init`` / ``Pready`` / ``Parrived``), in both an event-driven form
  and the closed-form variant the early-bird feasibility model evaluates.
"""

from repro.mpi.collectives import allreduce_time, barrier_time, bcast_time
from repro.mpi.comm import Communicator, Rank
from repro.mpi.datatypes import BYTE, DOUBLE, FLOAT, INT, Datatype
from repro.mpi.network import NetworkModel, NICModel, omni_path
from repro.mpi.p2p import Message, MessageQueue
from repro.mpi.partitioned import (
    PartitionedRecvRequest,
    PartitionedSendRequest,
    PartitionedTransfer,
    partitioned_completion_times,
)

__all__ = [
    "Datatype",
    "DOUBLE",
    "FLOAT",
    "INT",
    "BYTE",
    "NetworkModel",
    "NICModel",
    "omni_path",
    "Communicator",
    "Rank",
    "Message",
    "MessageQueue",
    "PartitionedSendRequest",
    "PartitionedRecvRequest",
    "PartitionedTransfer",
    "partitioned_completion_times",
    "barrier_time",
    "bcast_time",
    "allreduce_time",
]
