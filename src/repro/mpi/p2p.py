"""Point-to-point messaging for simulated ranks.

A :class:`MessageQueue` implements MPI-style matching (source, tag) with
wildcard support; :class:`repro.mpi.comm.Rank` builds ``send`` / ``recv`` /
``isend`` / ``irecv`` on top of it, using the network model for timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.engine import SimulationEngine
from repro.sim.events import SimEvent

#: Wildcards mirroring ``MPI_ANY_SOURCE`` / ``MPI_ANY_TAG``.
ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Message:
    """An in-flight or delivered message."""

    source: int
    dest: int
    tag: int
    nbytes: int
    payload: Any = None
    send_time: float = 0.0
    arrival_time: float = 0.0

    def matches(self, source: int, tag: int) -> bool:
        """Whether this message satisfies a receive posted for (source, tag)."""
        source_ok = source == ANY_SOURCE or source == self.source
        tag_ok = tag == ANY_TAG or tag == self.tag
        return source_ok and tag_ok


@dataclass
class _PostedReceive:
    source: int
    tag: int
    event: SimEvent


class MessageQueue:
    """Unexpected-message queue plus posted-receive queue of one rank.

    Matching follows MPI ordering rules: messages from the same source are
    matched in arrival order; posted receives are matched in post order.
    """

    def __init__(self, engine: SimulationEngine, rank: int) -> None:
        self.engine = engine
        self.rank = rank
        self._unexpected: List[Message] = []
        self._posted: List[_PostedReceive] = []
        #: Count of messages ever delivered to this queue (for stats/tests).
        self.delivered = 0

    # ------------------------------------------------------------------
    def deliver(self, message: Message) -> None:
        """Called by the network when a message arrives at this rank."""
        self.delivered += 1
        for idx, posted in enumerate(self._posted):
            if message.matches(posted.source, posted.tag):
                self._posted.pop(idx)
                posted.event.trigger(message, time=self.engine.now)
                return
        self._unexpected.append(message)

    def post_receive(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> SimEvent:
        """Post a receive; the returned event triggers with the matched message."""
        event = self.engine.event(f"recv[{self.rank}]<-{source}#{tag}")
        for idx, message in enumerate(self._unexpected):
            if message.matches(source, tag):
                self._unexpected.pop(idx)
                event.trigger(message, time=self.engine.now)
                return event
        self._posted.append(_PostedReceive(source, tag, event))
        return event

    # ------------------------------------------------------------------
    @property
    def pending_unexpected(self) -> int:
        return len(self._unexpected)

    @property
    def pending_receives(self) -> int:
        return len(self._posted)
