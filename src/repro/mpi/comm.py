"""Simulated communicators and ranks.

A :class:`Communicator` owns one :class:`Rank` handle per MPI process,
including that process's NIC injection queue and message-matching queues.
Rank methods come in two flavours:

* generator methods (``send``, ``recv``, ``barrier``) to be used inside
  processes running on the discrete-event engine (``yield from rank.recv()``),
* immediate methods (``isend``) that only enqueue work and return the
  delivery record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Sequence

import numpy as np

from repro.cluster.topology import Cluster
from repro.mpi.network import NetworkModel, NICModel, omni_path
from repro.mpi.p2p import ANY_SOURCE, ANY_TAG, Message, MessageQueue
from repro.sim.engine import SimulationEngine
from repro.sim.events import Delay, SimEvent, WaitEvent


class Communicator:
    """A group of simulated MPI ranks sharing one network.

    Parameters
    ----------
    engine:
        The discrete-event engine the ranks run on.
    size:
        Number of ranks.
    network:
        Message timing parameters (defaults to the Omni-Path preset).
    cluster / placements:
        Optional physical placement; used to derive hop counts between ranks
        (ranks on the same node exchange messages through shared memory at a
        reduced latency).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        size: int,
        *,
        network: Optional[NetworkModel] = None,
        cluster: Optional[Cluster] = None,
        placements: Optional[Sequence[Sequence]] = None,
    ) -> None:
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.engine = engine
        self.size = size
        self.network = network if network is not None else omni_path()
        self.cluster = cluster
        self.placements = list(placements) if placements is not None else None
        self.ranks: List[Rank] = [Rank(self, r) for r in range(size)]
        self._barrier_count = 0
        self._barrier_event: Optional[SimEvent] = None
        self._barrier_arrived = 0

    # ------------------------------------------------------------------
    def rank(self, index: int) -> "Rank":
        if not 0 <= index < self.size:
            raise IndexError(f"rank {index} out of range for size {self.size}")
        return self.ranks[index]

    def hops_between(self, rank_a: int, rank_b: int) -> int:
        """Switch hops between two ranks (0 = same node / shared memory)."""
        if self.cluster is None or self.placements is None:
            return 0 if rank_a == rank_b else 1
        node_a = self.placements[rank_a][0].node_id
        node_b = self.placements[rank_b][0].node_id
        return self.cluster.hops_between(node_a, node_b)

    # ------------------------------------------------------------------
    def _barrier_wait(self) -> Generator:
        """Internal: one rank entering the communicator barrier."""
        if self._barrier_event is None:
            self._barrier_event = self.engine.event(f"comm.barrier{self._barrier_count}")
        event = self._barrier_event
        self._barrier_arrived += 1
        if self._barrier_arrived == self.size:
            self._barrier_arrived = 0
            self._barrier_count += 1
            self._barrier_event = None
            # A real barrier costs roughly a small log(P) latency term.
            cost = self.network.latency_s * max(1, int(np.ceil(np.log2(self.size))))
            release = event
            self.engine.schedule(cost, lambda: release.trigger(None, time=self.engine.now))
        yield WaitEvent(event)


class Rank:
    """One simulated MPI process's communication endpoint."""

    def __init__(self, comm: Communicator, rank: int) -> None:
        self.comm = comm
        self.rank = rank
        self.queue = MessageQueue(comm.engine, rank)
        self.nic = NICModel(comm.network)
        #: messages this rank has fully sent (injection + delivery scheduled)
        self.sent: List[Message] = []

    # ------------------------------------------------------------------
    @property
    def engine(self) -> SimulationEngine:
        return self.comm.engine

    # ------------------------------------------------------------------
    def isend(
        self, dest: int, nbytes: int, *, tag: int = 0, payload: Any = None
    ) -> Message:
        """Post a non-blocking send now; returns the message with its delivery time."""
        hops = self.comm.hops_between(self.rank, dest)
        self.nic.hops = hops
        record = self.nic.submit(nbytes, self.engine.now, label=f"{self.rank}->{dest}#{tag}")
        message = Message(
            source=self.rank,
            dest=dest,
            tag=tag,
            nbytes=nbytes,
            payload=payload,
            send_time=self.engine.now,
            arrival_time=record.delivery_time,
        )
        self.sent.append(message)
        target_queue = self.comm.rank(dest).queue
        delay = max(record.delivery_time - self.engine.now, 0.0)
        self.engine.schedule(delay, lambda: self._deliver(target_queue, message))
        return message

    def _deliver(self, queue: MessageQueue, message: Message) -> None:
        message.arrival_time = self.engine.now
        queue.deliver(message)

    def send(self, dest: int, nbytes: int, *, tag: int = 0, payload: Any = None) -> Generator:
        """Blocking send: returns (via StopIteration value) once injection completes."""
        message = self.isend(dest, nbytes, tag=tag, payload=payload)
        injection_done = self.nic.log[-1].injection_done
        wait = max(injection_done - self.engine.now, 0.0)
        if wait > 0:
            yield Delay(wait)
        return message

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive; the generator's return value is the matched message."""
        event = self.queue.post_receive(source, tag)
        message = yield WaitEvent(event)
        return message

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> SimEvent:
        """Non-blocking receive: returns the completion event."""
        return self.queue.post_receive(source, tag)

    def barrier(self) -> Generator:
        """Communicator-wide barrier."""
        yield from self.comm._barrier_wait()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rank({self.rank}/{self.comm.size})"
