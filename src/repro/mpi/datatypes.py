"""Element datatypes and buffer descriptors for the simulated MPI layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class Datatype:
    """An MPI element datatype: a name and a size in bytes."""

    name: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes < 1:
            raise ValueError("datatype size must be >= 1 byte")

    def extent(self, count: int) -> int:
        """Total bytes of ``count`` elements."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return count * self.size_bytes


#: Common predefined datatypes.
DOUBLE = Datatype("MPI_DOUBLE", 8)
FLOAT = Datatype("MPI_FLOAT", 4)
INT = Datatype("MPI_INT", 4)
BYTE = Datatype("MPI_BYTE", 1)


@dataclass(frozen=True)
class BufferSpec:
    """A (count, datatype) communication buffer description.

    The simulation transfers *sizes*, not payloads; an optional ``array``
    holds real data when examples want to verify end-to-end content delivery.
    """

    count: int
    datatype: Datatype = DOUBLE
    array: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.array is not None and self.array.size != self.count:
            raise ValueError(
                f"array has {self.array.size} elements but count={self.count}"
            )

    @property
    def nbytes(self) -> int:
        return self.datatype.extent(self.count)

    def partition(self, n_partitions: int) -> list["BufferSpec"]:
        """Split into ``n_partitions`` near-equal contiguous pieces.

        Mirrors the paper's model of partitioned communication: "each thread
        is assigned an equal, contiguous portion of the communication buffer".
        Earlier partitions receive the remainder elements.
        """
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        base = self.count // n_partitions
        remainder = self.count % n_partitions
        pieces = []
        offset = 0
        for i in range(n_partitions):
            size = base + (1 if i < remainder else 0)
            chunk = None
            if self.array is not None:
                chunk = self.array[offset : offset + size]
            pieces.append(BufferSpec(size, self.datatype, chunk))
            offset += size
        return pieces
