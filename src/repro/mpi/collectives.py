"""Analytic cost models for common collectives.

The campaign does not need full collective implementations — the paper's
measurements are per-process — but the proxy-application drivers (MiniFE's CG
solver does an allreduce per iteration, MiniMD exchanges halo atoms) account
for the time their communication phases take between compute regions.  These
closed-form models use the standard log-tree / recursive-doubling cost
expressions on top of the :class:`~repro.mpi.network.NetworkModel`.
"""

from __future__ import annotations

import math

from repro.mpi.network import NetworkModel


def _alpha_beta(network: NetworkModel, nbytes: int, hops: int = 1) -> tuple[float, float]:
    """Per-message latency (alpha) and per-byte (beta) terms."""
    alpha = (
        network.o_send_s
        + network.o_recv_s
        + network.wire_latency(hops)
        + network.protocol_overhead(nbytes)
    )
    beta = network.gap_per_byte_s
    return alpha, beta


def barrier_time(network: NetworkModel, n_ranks: int, hops: int = 1) -> float:
    """Dissemination barrier: ``ceil(log2 P)`` rounds of zero-byte messages."""
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if n_ranks == 1:
        return 0.0
    rounds = math.ceil(math.log2(n_ranks))
    alpha, _ = _alpha_beta(network, 0, hops)
    return rounds * alpha


def bcast_time(network: NetworkModel, n_ranks: int, nbytes: int, hops: int = 1) -> float:
    """Binomial-tree broadcast."""
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if n_ranks == 1:
        return 0.0
    rounds = math.ceil(math.log2(n_ranks))
    alpha, beta = _alpha_beta(network, nbytes, hops)
    return rounds * (alpha + nbytes * beta)


def reduce_time(network: NetworkModel, n_ranks: int, nbytes: int, hops: int = 1) -> float:
    """Binomial-tree reduction (compute cost of the reduction op neglected)."""
    return bcast_time(network, n_ranks, nbytes, hops)


def allreduce_time(
    network: NetworkModel, n_ranks: int, nbytes: int, hops: int = 1
) -> float:
    """Recursive-doubling allreduce: ``log2 P`` rounds, full payload each round."""
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if n_ranks == 1:
        return 0.0
    rounds = math.ceil(math.log2(n_ranks))
    alpha, beta = _alpha_beta(network, nbytes, hops)
    return rounds * (alpha + nbytes * beta)


def allgather_time(
    network: NetworkModel, n_ranks: int, nbytes_per_rank: int, hops: int = 1
) -> float:
    """Ring allgather: ``P - 1`` steps of one block each."""
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if n_ranks == 1:
        return 0.0
    alpha, beta = _alpha_beta(network, nbytes_per_rank, hops)
    return (n_ranks - 1) * (alpha + nbytes_per_rank * beta)


def halo_exchange_time(
    network: NetworkModel, nbytes_per_neighbor: int, n_neighbors: int = 6, hops: int = 1
) -> float:
    """Nearest-neighbour halo exchange (MiniMD/MiniFE ghost exchange).

    Sends to all neighbours can be overlapped on the NIC; the model charges
    one latency plus the serialisation of all outgoing halo data.
    """
    if n_neighbors < 0:
        raise ValueError("n_neighbors must be non-negative")
    if n_neighbors == 0:
        return 0.0
    alpha, beta = _alpha_beta(network, nbytes_per_neighbor, hops)
    return alpha + n_neighbors * nbytes_per_neighbor * beta
