"""MPI-4.0-style partitioned communication.

Partitioned communication divides a single logical message into partitions
that can be marked ready (``MPI_Pready``) independently — in the early-bird
model, by the compute thread that produced that partition's data, as soon as
it finishes its share of the loop.

Two forms are provided:

* :class:`PartitionedSendRequest` / :class:`PartitionedRecvRequest` — an
  event-driven persistent-request pair usable by ranks running on the
  discrete-event engine (``Psend_init`` → ``Pready(i)`` → partitions flow →
  receiver's ``Parrived(i)`` events trigger).
* :func:`partitioned_completion_times` — the closed-form variant used by the
  early-bird feasibility analysis: given per-partition ready times and the
  NIC/network model, return per-partition delivery times and the completion
  time of the whole message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.mpi.network import NetworkModel, NICModel
from repro.sim.engine import SimulationEngine
from repro.sim.events import SimEvent


@dataclass
class PartitionRecord:
    """Timing of a single partition's journey."""

    index: int
    nbytes: int
    ready_time: float
    injection_start: float
    injection_done: float
    delivery_time: float


@dataclass
class PartitionedTransfer:
    """Closed-form result of one partitioned message transfer."""

    partitions: List[PartitionRecord]
    total_bytes: int

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def completion_time(self) -> float:
        """Delivery time of the last partition (message fully delivered)."""
        return max(p.delivery_time for p in self.partitions)

    @property
    def first_delivery_time(self) -> float:
        """Delivery time of the earliest partition (first usable data)."""
        return min(p.delivery_time for p in self.partitions)

    def delivery_times(self) -> np.ndarray:
        return np.array([p.delivery_time for p in self.partitions])

    def ready_times(self) -> np.ndarray:
        return np.array([p.ready_time for p in self.partitions])


def partitioned_completion_times(
    ready_times: Sequence[float],
    partition_bytes: Sequence[int] | int,
    network: NetworkModel,
    *,
    hops: int = 1,
    per_partition_overhead_s: Optional[float] = None,
) -> PartitionedTransfer:
    """Closed-form partitioned transfer over a FIFO-injection NIC.

    Parameters
    ----------
    ready_times:
        Time at which each partition is marked ready (``Pready``), e.g. the
        per-thread arrival times from a timing dataset.
    partition_bytes:
        Size of each partition, or a scalar applied to all partitions.
    network:
        Timing parameters.
    hops:
        Network hops between sender and receiver.
    per_partition_overhead_s:
        CPU overhead of each ``Pready`` (defaults to the network's
        ``o_send_s``).

    Returns
    -------
    PartitionedTransfer
    """
    times = np.asarray(ready_times, dtype=np.float64)
    if times.ndim != 1 or times.size == 0:
        raise ValueError("ready_times must be a non-empty 1-D sequence")
    if np.any(times < 0):
        raise ValueError("ready times must be non-negative")
    if np.isscalar(partition_bytes):
        sizes = np.full(times.size, int(partition_bytes), dtype=np.int64)
    else:
        sizes = np.asarray(partition_bytes, dtype=np.int64)
        if sizes.shape != times.shape:
            raise ValueError("partition_bytes must match ready_times in length")
    if np.any(sizes < 0):
        raise ValueError("partition sizes must be non-negative")

    overhead = (
        per_partition_overhead_s if per_partition_overhead_s is not None else network.o_send_s
    )
    nic = NICModel(network, hops=hops)
    order = np.argsort(times, kind="stable")
    records: List[Optional[PartitionRecord]] = [None] * times.size
    for idx in order:
        ready = float(times[idx])
        nbytes = int(sizes[idx])
        post_done = ready + overhead + network.protocol_overhead(nbytes)
        start = max(post_done, nic.busy_until)
        injection_done = start + network.serialization_time(nbytes)
        delivery = injection_done + network.wire_latency(hops) + network.o_recv_s
        nic._free_at = injection_done
        records[idx] = PartitionRecord(
            index=int(idx),
            nbytes=nbytes,
            ready_time=ready,
            injection_start=start,
            injection_done=injection_done,
            delivery_time=delivery,
        )
    return PartitionedTransfer(
        partitions=[rec for rec in records if rec is not None],
        total_bytes=int(sizes.sum()),
    )


# ----------------------------------------------------------------------
# event-driven persistent requests
# ----------------------------------------------------------------------
class PartitionedSendRequest:
    """Sender side of a partitioned persistent request (``MPI_Psend_init``).

    Parameters
    ----------
    engine:
        Discrete-event engine.
    network:
        Timing parameters.
    n_partitions:
        Number of partitions in the message.
    partition_bytes:
        Bytes per partition (scalar or per-partition sequence).
    hops:
        Hops to the destination rank.
    receiver:
        Optional :class:`PartitionedRecvRequest` to notify on delivery.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        network: NetworkModel,
        n_partitions: int,
        partition_bytes: Sequence[int] | int,
        *,
        hops: int = 1,
        receiver: Optional["PartitionedRecvRequest"] = None,
    ) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        self.engine = engine
        self.network = network
        self.n_partitions = n_partitions
        if np.isscalar(partition_bytes):
            self.partition_bytes = [int(partition_bytes)] * n_partitions
        else:
            self.partition_bytes = [int(b) for b in partition_bytes]
            if len(self.partition_bytes) != n_partitions:
                raise ValueError("partition_bytes length must equal n_partitions")
        self.nic = NICModel(network, hops=hops)
        self.receiver = receiver
        self._active = False
        self._ready: List[bool] = [False] * n_partitions
        self.records: Dict[int, PartitionRecord] = {}
        #: triggered when every partition of the current start has been delivered
        self.all_delivered: SimEvent = engine.event("psend.all_delivered")

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin a new transfer instance (``MPI_Start``)."""
        if self._active:
            raise RuntimeError("partitioned send already started")
        self._active = True
        self._ready = [False] * self.n_partitions
        self.records.clear()
        self.nic.reset()
        self.all_delivered = self.engine.event("psend.all_delivered")

    def pready(self, partition: int) -> PartitionRecord:
        """Mark ``partition`` ready now; schedules its transmission."""
        if not self._active:
            raise RuntimeError("Pready before Start")
        if not 0 <= partition < self.n_partitions:
            raise IndexError(f"partition {partition} out of range")
        if self._ready[partition]:
            raise RuntimeError(f"partition {partition} marked ready twice")
        self._ready[partition] = True
        now = self.engine.now
        nbytes = self.partition_bytes[partition]
        transmission = self.nic.submit(nbytes, now, label=f"part{partition}")
        record = PartitionRecord(
            index=partition,
            nbytes=nbytes,
            ready_time=now,
            injection_start=transmission.start_time,
            injection_done=transmission.injection_done,
            delivery_time=transmission.delivery_time,
        )
        self.records[partition] = record
        delay = max(record.delivery_time - now, 0.0)
        self.engine.schedule(delay, lambda: self._delivered(partition))
        return record

    def _delivered(self, partition: int) -> None:
        if self.receiver is not None:
            self.receiver._arrived(partition)
        if len(self.records) == self.n_partitions and all(self._ready):
            if all(
                rec.delivery_time <= self.engine.now + 1e-15
                for rec in self.records.values()
            ) and not self.all_delivered.triggered:
                self._active = False
                self.all_delivered.trigger(
                    self.completion_time(), time=self.engine.now
                )

    def completion_time(self) -> float:
        """Delivery time of the last partition (valid once all are ready)."""
        if len(self.records) < self.n_partitions:
            raise RuntimeError("not all partitions have been marked ready")
        return max(rec.delivery_time for rec in self.records.values())

    def as_transfer(self) -> PartitionedTransfer:
        """Snapshot of the records as a :class:`PartitionedTransfer`."""
        return PartitionedTransfer(
            partitions=[self.records[i] for i in sorted(self.records)],
            total_bytes=sum(self.partition_bytes),
        )


class PartitionedRecvRequest:
    """Receiver side of a partitioned persistent request (``MPI_Precv_init``)."""

    def __init__(self, engine: SimulationEngine, n_partitions: int) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        self.engine = engine
        self.n_partitions = n_partitions
        self.arrival_times: Dict[int, float] = {}
        self._events: Dict[int, SimEvent] = {
            i: engine.event(f"parrived[{i}]") for i in range(n_partitions)
        }
        self.all_arrived: SimEvent = engine.event("precv.all_arrived")

    def _arrived(self, partition: int) -> None:
        if partition in self.arrival_times:
            return
        self.arrival_times[partition] = self.engine.now
        event = self._events[partition]
        if not event.triggered:
            event.trigger(self.engine.now, time=self.engine.now)
        if len(self.arrival_times) == self.n_partitions and not self.all_arrived.triggered:
            self.all_arrived.trigger(self.engine.now, time=self.engine.now)

    def parrived(self, partition: int) -> bool:
        """Non-blocking test: has ``partition`` arrived?"""
        if not 0 <= partition < self.n_partitions:
            raise IndexError(f"partition {partition} out of range")
        return partition in self.arrival_times

    def arrival_event(self, partition: int) -> SimEvent:
        """Event triggered when ``partition`` arrives (for ``yield WaitEvent``)."""
        return self._events[partition]
