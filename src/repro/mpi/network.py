"""LogGP-style network and NIC model.

The model distinguishes, per message:

* ``o_send`` / ``o_recv`` — CPU overhead of posting a send / completing a
  receive (per message, paid by the thread),
* ``L`` — base wire latency plus a per-hop component,
* ``G`` — inverse bandwidth (seconds per byte) on the injection link, which is
  the serialisation bottleneck shared by all partitions a process sends.

:func:`omni_path` provides an Intel Omni-Path-like preset (~100 Gb/s, ~1 µs
MPI latency), matching the paper's test platform; the absolute values only
need to be plausible because our claims are about *relative* strategy
behaviour (early-bird vs bulk), not absolute microseconds.

:class:`NICModel` captures the injection-serialisation behaviour the
early-bird analysis needs: transmissions requested at arbitrary times are
serviced FIFO at link rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point message timing parameters.

    Parameters
    ----------
    latency_s:
        Base end-to-end latency of a minimal message.
    per_hop_latency_s:
        Additional latency per switch hop.
    bandwidth_bytes_per_s:
        Link (injection) bandwidth.
    o_send_s / o_recv_s:
        Per-message CPU overheads.
    eager_threshold_bytes:
        Messages at or below this size use the eager protocol; larger ones pay
        an additional ``rendezvous_overhead_s`` handshake.
    rendezvous_overhead_s:
        Extra latency of the rendezvous handshake.
    """

    latency_s: float = 1.0e-6
    per_hop_latency_s: float = 100.0e-9
    bandwidth_bytes_per_s: float = 12.5e9
    o_send_s: float = 250.0e-9
    o_recv_s: float = 250.0e-9
    eager_threshold_bytes: int = 8192
    rendezvous_overhead_s: float = 2.0e-6

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        for name in ("latency_s", "per_hop_latency_s", "o_send_s", "o_recv_s",
                     "rendezvous_overhead_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # ------------------------------------------------------------------
    @property
    def gap_per_byte_s(self) -> float:
        """LogGP ``G``: seconds per byte on the injection link."""
        return 1.0 / self.bandwidth_bytes_per_s

    def wire_latency(self, hops: int = 1) -> float:
        """Latency component for a message crossing ``hops`` switch hops."""
        return self.latency_s + self.per_hop_latency_s * max(hops, 0)

    def serialization_time(self, nbytes: int) -> float:
        """Time to push ``nbytes`` onto the wire."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes * self.gap_per_byte_s

    def protocol_overhead(self, nbytes: int) -> float:
        """Eager vs rendezvous handshake cost."""
        return 0.0 if nbytes <= self.eager_threshold_bytes else self.rendezvous_overhead_s

    def message_time(self, nbytes: int, hops: int = 1) -> float:
        """End-to-end time of a single message posted on an idle NIC."""
        return (
            self.o_send_s
            + self.protocol_overhead(nbytes)
            + self.serialization_time(nbytes)
            + self.wire_latency(hops)
            + self.o_recv_s
        )

    def effective_bandwidth(self, nbytes: int, hops: int = 1) -> float:
        """Achieved bandwidth of one message (bytes/s), for reporting."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.message_time(nbytes, hops)


def omni_path() -> NetworkModel:
    """An Intel Omni-Path-like preset (100 Gb/s-class fabric, ~1 µs latency)."""
    return NetworkModel(
        latency_s=1.1e-6,
        per_hop_latency_s=100.0e-9,
        bandwidth_bytes_per_s=12.5e9,  # 100 Gb/s
        o_send_s=300.0e-9,
        o_recv_s=300.0e-9,
        eager_threshold_bytes=8192,
        rendezvous_overhead_s=2.0e-6,
    )


@dataclass
class NICTransmission:
    """One transmission serviced by the NIC."""

    label: str
    nbytes: int
    request_time: float
    start_time: float
    injection_done: float
    delivery_time: float


class NICModel:
    """FIFO injection queue of one process's NIC.

    Transmissions requested while an earlier transmission is still being
    injected queue up; each transmission's delivery time adds the wire latency
    after its injection completes.  This is the mechanism that makes
    "all threads `Pready` at once" behave like one big message, while spread
    out arrivals overlap injection with the laggards' compute.
    """

    def __init__(self, network: NetworkModel, hops: int = 1) -> None:
        self.network = network
        self.hops = hops
        self._free_at = 0.0
        self.log: List[NICTransmission] = []

    def reset(self) -> None:
        """Forget all queued work (new iteration)."""
        self._free_at = 0.0
        self.log.clear()

    @property
    def busy_until(self) -> float:
        """Time at which the injection link becomes idle."""
        return self._free_at

    def submit(self, nbytes: int, at_time: float, label: str = "msg") -> NICTransmission:
        """Request transmission of ``nbytes`` at ``at_time``; returns the record."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if at_time < 0:
            raise ValueError("at_time must be non-negative")
        post_done = at_time + self.network.o_send_s + self.network.protocol_overhead(nbytes)
        start = max(post_done, self._free_at)
        injection_done = start + self.network.serialization_time(nbytes)
        delivery = injection_done + self.network.wire_latency(self.hops) + self.network.o_recv_s
        self._free_at = injection_done
        record = NICTransmission(
            label=label,
            nbytes=nbytes,
            request_time=at_time,
            start_time=start,
            injection_done=injection_done,
            delivery_time=delivery,
        )
        self.log.append(record)
        return record

    def submit_many(
        self, sizes: Sequence[int], times: Sequence[float], labels: Optional[Sequence[str]] = None
    ) -> List[NICTransmission]:
        """Submit several transmissions, servicing them in request-time order."""
        if len(sizes) != len(times):
            raise ValueError("sizes and times must have the same length")
        order = np.argsort(np.asarray(times, dtype=np.float64), kind="stable")
        records: List[Optional[NICTransmission]] = [None] * len(sizes)
        for idx in order:
            label = labels[idx] if labels is not None else f"msg{idx}"
            records[idx] = self.submit(int(sizes[idx]), float(times[idx]), label)
        return [rec for rec in records if rec is not None]
