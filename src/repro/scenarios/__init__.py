"""Scenario subsystem: registries for machines, noise models and scenarios.

The paper's campaign originally knew two hardcoded machines and one
hardwired two-source noise model.  This subpackage generalises both into
registries — the same pluggable shape as the campaign-backend registry — and
adds a declarative :class:`Scenario` layer on top:

* :mod:`repro.scenarios.sources` — the :class:`NoiseSource` protocol, the
  ``@register_noise_source`` registry, six built-in populations (periodic
  daemons, Poisson/Pareto interrupts, cron bursts, network storms, silent)
  and named noise profiles composing them into
  :class:`~repro.cluster.noise.NoiseSpec` bundles.
* :mod:`repro.scenarios.machines` — the ``@register_machine`` registry with
  the paper's ``manzano`` platform, the ``laptop`` preset, a 128-core
  ``fatnode`` and a noisy wide-clock ``cloudvm``.
* :mod:`repro.scenarios.scenario` — the :class:`Scenario` dataclass
  (machine × noise × application × schedule), the ``@register_scenario``
  catalog the CLI's ``--scenario``/``--list-scenarios`` flags resolve
  against, and :class:`ScenarioMatrix` for cartesian sweeps that feed
  :class:`~repro.experiments.session.CampaignSession` directly.
"""

from repro.scenarios.machines import (
    available_machines,
    get_machine,
    register_machine,
    unregister_machine,
)
from repro.scenarios.scenario import (
    Scenario,
    ScenarioMatrix,
    available_scenarios,
    get_scenario,
    register_scenario,
    unregister_scenario,
)
from repro.scenarios.sources import (
    NoiseSource,
    available_noise_profiles,
    available_noise_sources,
    build_noise_sources,
    get_noise_source,
    make_noise_source,
    noise_profile,
    register_noise_profile,
    register_noise_source,
    unregister_noise_source,
)

__all__ = [
    "NoiseSource",
    "register_noise_source",
    "unregister_noise_source",
    "available_noise_sources",
    "get_noise_source",
    "make_noise_source",
    "build_noise_sources",
    "noise_profile",
    "register_noise_profile",
    "available_noise_profiles",
    "register_machine",
    "unregister_machine",
    "available_machines",
    "get_machine",
    "Scenario",
    "ScenarioMatrix",
    "register_scenario",
    "unregister_scenario",
    "available_scenarios",
    "get_scenario",
]
