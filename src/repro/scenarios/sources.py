"""Pluggable OS-noise sources.

The seed modelled exactly two noise populations — a periodic daemon tick and
a Poisson interrupt process — hardwired inside
:class:`~repro.cluster.noise.OSNoiseModel`.  This module generalises them to
a :class:`NoiseSource` protocol with a name registry
(:func:`register_noise_source`), mirroring the campaign-backend registry:
new machine personalities (heavy-tailed SMI storms, bursty cron fleets,
virtualised network interrupts, ...) plug into the noise model without
touching the cluster layer.

A source answers the two questions the model asks:

* :meth:`NoiseSource.events_in` — the discrete noise events on one core in a
  window, for the event-driven execution path;
* :meth:`NoiseSource.batch_extra` — statistically equivalent total extra
  delay for a batch of independent compute windows, for the vectorised
  campaign fast path.

The two built-ins ``periodic-daemon`` and ``poisson-interrupts`` reproduce
the seed's populations bit-identically (same draw order, same guards), which
is what keeps the default campaign datasets stable across the refactor.

Named *noise profiles* (:func:`noise_profile`) compose registered sources
into ready-made :class:`~repro.cluster.noise.NoiseSpec` bundles the scenario
catalog refers to by name.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Tuple, Type

import numpy as np

from repro.cluster.noise import NoiseEvent, NoiseSourceSpec, NoiseSpec
from repro.openmp.schedule import segment_sums

CoreKey = Tuple[int, int, int]


class NoiseSource(ABC):
    """One population of OS-noise events on a core.

    Implementations must draw from the passed-in generator *only* (no hidden
    randomness), in a deterministic call order, so that campaigns stay
    reproducible and bit-identical across shard orderings.
    """

    #: registered source kind (set by :func:`register_noise_source`)
    kind: str = "abstract"

    # ------------------------------------------------------------------
    @abstractmethod
    def events_in(
        self, core_key: CoreKey, start_s: float, end_s: float, rng: np.random.Generator
    ) -> List[NoiseEvent]:
        """Noise events of this source on ``core_key`` in ``[start_s, end_s)``."""

    @abstractmethod
    def batch_extra(self, work: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Total extra delay per entry of ``work`` (independent windows)."""

    # ------------------------------------------------------------------
    @property
    def horizon_s(self) -> float:
        """Look-ahead this source needs beyond the compute window."""
        return 0.0

    def params(self) -> Dict[str, float]:
        """The source's constructor parameters (for specs and reports)."""
        return {}

    def spec(self) -> NoiseSourceSpec:
        """Round-trippable declarative description of this source."""
        return NoiseSourceSpec.of(self.kind, **self.params())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params().items()))
        return f"{type(self).__name__}({args})"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_NOISE_SOURCES: Dict[str, Type[NoiseSource]] = {}


def register_noise_source(name=None, *, replace: bool = False):
    """Class decorator registering a :class:`NoiseSource` by kind name.

    Usable bare (``@register_noise_source`` — uses the class's ``kind``) or
    with an explicit name (``@register_noise_source("pareto-interrupts")``).
    Registering a name twice raises unless ``replace=True`` (or the class is
    identical, which makes module re-imports idempotent).
    """

    def decorator(cls: Type[NoiseSource]) -> Type[NoiseSource]:
        if not (isinstance(cls, type) and issubclass(cls, NoiseSource)):
            raise TypeError("register_noise_source expects a NoiseSource subclass")
        key = (name if isinstance(name, str) else cls.kind).strip().lower()
        if not key or key == "abstract":
            raise ValueError("noise source needs a concrete registration name")
        existing = _NOISE_SOURCES.get(key)
        if existing is not None and existing is not cls and not replace:
            raise ValueError(
                f"noise source {key!r} is already registered ({existing.__name__}); "
                "pass replace=True to override"
            )
        cls.kind = key
        _NOISE_SOURCES[key] = cls
        return cls

    if isinstance(name, type):  # bare @register_noise_source
        cls, name = name, None
        return decorator(cls)
    return decorator


def available_noise_sources() -> Tuple[str, ...]:
    """Kinds of all registered noise sources, sorted."""
    return tuple(sorted(_NOISE_SOURCES))


def get_noise_source(kind: str) -> Type[NoiseSource]:
    """The :class:`NoiseSource` class registered under ``kind``."""
    key = str(kind).strip().lower()
    try:
        return _NOISE_SOURCES[key]
    except KeyError:
        raise ValueError(
            f"unknown noise source {kind!r}; registered sources: "
            f"{', '.join(available_noise_sources()) or '(none)'}"
        ) from None


def make_noise_source(kind: str, **params) -> NoiseSource:
    """Instantiate the noise source registered under ``kind``."""
    return get_noise_source(kind)(**params)


def build_noise_sources(specs) -> Tuple[NoiseSource, ...]:
    """Instantiate a sequence of :class:`NoiseSourceSpec` declarations."""
    return tuple(make_noise_source(spec.kind, **spec.as_dict()) for spec in specs)


def unregister_noise_source(kind: str) -> None:
    """Remove a noise source from the registry (primarily for tests)."""
    _NOISE_SOURCES.pop(str(kind).strip().lower(), None)


def _require_non_negative(**values: float) -> None:
    for name, value in values.items():
        if value < 0:
            raise ValueError(f"{name} must be non-negative")


def _sum_per_window(
    durations: np.ndarray, flat_counts: np.ndarray, shape
) -> np.ndarray:
    """Sum ``durations`` into windows sized by ``flat_counts``.

    Fast path: one vectorised ``reduceat``
    (:func:`~repro.openmp.schedule.segment_sums`) instead of the seed's
    per-window ``np.split`` list comprehension — with the batched campaign
    kernel a single call covers an entire ``(n_iterations, n_threads)``
    shard, i.e. thousands of windows.

    Bit-continuity: ``reduceat`` sums strictly left-to-right while
    ``ndarray.sum`` may reorder (SIMD/pairwise accumulation), so the two
    can differ in the last ULP once a window holds 3+ events.  Windows
    with 0-2 events are provably identical either way, and at the shipped
    noise rates expected counts are ≪ 1, so virtually every window rides
    the vectorised path; the rare crowded window is re-summed with the
    seed's exact ``ndarray.sum``, keeping same-seed datasets reproducible
    bit-for-bit against pre-batched recordings.
    """
    flat_counts = np.asarray(flat_counts)
    offsets = np.concatenate(([0], np.cumsum(flat_counts)))
    sums = segment_sums(durations, offsets)
    durations = np.asarray(durations)
    for k in np.flatnonzero(flat_counts >= 3):
        sums[k] = durations[offsets[k] : offsets[k + 1]].sum()
    return sums.reshape(shape)


# ----------------------------------------------------------------------
# built-in sources
# ----------------------------------------------------------------------
@register_noise_source("periodic-daemon")
class PeriodicDaemonSource(NoiseSource):
    """Timer ticks, kernel threads, monitoring agents.

    A fixed period, a fixed (small) duration and a per-core phase drawn
    lazily on first touch — exactly the seed's periodic population.
    """

    def __init__(self, period_s: float = 0.010, duration_s: float = 4.0e-6) -> None:
        _require_non_negative(period_s=period_s, duration_s=duration_s)
        if period_s == 0 and duration_s > 0:
            raise ValueError("duration_s requires a non-zero period_s")
        self.period_s = float(period_s)
        self.duration_s = float(duration_s)
        self._phases: Dict[CoreKey, float] = {}

    def params(self) -> Dict[str, float]:
        return {"period_s": self.period_s, "duration_s": self.duration_s}

    @property
    def horizon_s(self) -> float:
        return self.period_s

    def _phase_for(self, core_key: CoreKey, rng: np.random.Generator) -> float:
        if core_key not in self._phases:
            self._phases[core_key] = (
                float(rng.uniform(0.0, self.period_s)) if self.period_s > 0 else 0.0
            )
        return self._phases[core_key]

    def events_in(
        self, core_key: CoreKey, start_s: float, end_s: float, rng: np.random.Generator
    ) -> List[NoiseEvent]:
        if self.period_s <= 0 or self.duration_s <= 0:
            return []
        phase = self._phase_for(core_key, rng)
        first = np.ceil((start_s - phase) / self.period_s)
        tick = phase + first * self.period_s
        events: List[NoiseEvent] = []
        while tick < end_s:
            events.append(NoiseEvent(tick, self.duration_s))
            tick += self.period_s
        return events

    def batch_extra(self, work: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.period_s <= 0 or self.duration_s <= 0:
            return np.zeros_like(work)
        expected_ticks = work / self.period_s
        ticks = np.floor(expected_ticks) + (
            rng.uniform(size=work.shape) < (expected_ticks - np.floor(expected_ticks))
        )
        return ticks * self.duration_s


@register_noise_source("poisson-interrupts")
class PoissonInterruptSource(NoiseSource):
    """Rare, longer preemptions as a Poisson process (the seed's second
    population): exponentially distributed durations with a hard cap."""

    def __init__(
        self,
        rate_hz: float = 0.3,
        mean_s: float = 0.5e-3,
        max_s: float = 8.0e-3,
    ) -> None:
        _require_non_negative(rate_hz=rate_hz, mean_s=mean_s, max_s=max_s)
        self.rate_hz = float(rate_hz)
        self.mean_s = float(mean_s)
        self.max_s = float(max_s)

    def params(self) -> Dict[str, float]:
        return {"rate_hz": self.rate_hz, "mean_s": self.mean_s, "max_s": self.max_s}

    @property
    def horizon_s(self) -> float:
        return self.max_s

    def events_in(
        self, core_key: CoreKey, start_s: float, end_s: float, rng: np.random.Generator
    ) -> List[NoiseEvent]:
        if self.rate_hz <= 0 or self.mean_s <= 0:
            return []
        window = end_s - start_s
        n = int(rng.poisson(self.rate_hz * window))
        if n == 0:
            return []
        starts = start_s + rng.uniform(0.0, window, size=n)
        durations = np.minimum(rng.exponential(self.mean_s, size=n), self.max_s)
        return [NoiseEvent(float(s), float(d)) for s, d in zip(starts, durations)]

    def batch_extra(self, work: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.rate_hz <= 0 or self.mean_s <= 0:
            return np.zeros_like(work)
        counts = rng.poisson(self.rate_hz * work)
        flat_counts = counts.ravel()
        total = int(flat_counts.sum())
        if total == 0:
            return np.zeros_like(work)
        durations = np.minimum(rng.exponential(self.mean_s, size=total), self.max_s)
        return _sum_per_window(durations, flat_counts, work.shape)


@register_noise_source("pareto-interrupts")
class ParetoInterruptSource(NoiseSource):
    """Heavy-tailed interrupts (SMIs, page-fault storms, reclaim stalls).

    Arrivals are Poisson; durations follow a Pareto (power-law) distribution
    with shape ``alpha`` and scale ``scale_s``, capped at ``max_s``.  Small
    ``alpha`` (< 2) produces the occasional multi-millisecond outlier that an
    exponential model essentially never draws — the regime where laggard
    tails stop looking normal.
    """

    def __init__(
        self,
        rate_hz: float = 0.05,
        scale_s: float = 0.2e-3,
        alpha: float = 1.5,
        max_s: float = 50.0e-3,
    ) -> None:
        _require_non_negative(rate_hz=rate_hz, scale_s=scale_s, max_s=max_s)
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.rate_hz = float(rate_hz)
        self.scale_s = float(scale_s)
        self.alpha = float(alpha)
        self.max_s = float(max_s)

    def params(self) -> Dict[str, float]:
        return {
            "rate_hz": self.rate_hz,
            "scale_s": self.scale_s,
            "alpha": self.alpha,
            "max_s": self.max_s,
        }

    @property
    def horizon_s(self) -> float:
        return self.max_s

    def _durations(self, n: int, rng: np.random.Generator) -> np.ndarray:
        # (1 + Pareto(alpha)) * scale is a Pareto with minimum `scale`
        return np.minimum(self.scale_s * (1.0 + rng.pareto(self.alpha, size=n)), self.max_s)

    def events_in(
        self, core_key: CoreKey, start_s: float, end_s: float, rng: np.random.Generator
    ) -> List[NoiseEvent]:
        if self.rate_hz <= 0 or self.scale_s <= 0:
            return []
        window = end_s - start_s
        n = int(rng.poisson(self.rate_hz * window))
        if n == 0:
            return []
        starts = start_s + rng.uniform(0.0, window, size=n)
        durations = self._durations(n, rng)
        return [NoiseEvent(float(s), float(d)) for s, d in zip(starts, durations)]

    def batch_extra(self, work: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.rate_hz <= 0 or self.scale_s <= 0:
            return np.zeros_like(work)
        counts = rng.poisson(self.rate_hz * work)
        flat_counts = counts.ravel()
        total = int(flat_counts.sum())
        if total == 0:
            return np.zeros_like(work)
        return _sum_per_window(self._durations(total, rng), flat_counts, work.shape)


@register_noise_source("cron-burst")
class CronBurstSource(NoiseSource):
    """Bursty cron-style daemons: long quiet periods, then a volley.

    Fires every ``period_s`` (per-core phase, like the periodic daemon); each
    firing launches a Poisson-sized burst of back-to-back jobs with
    exponentially distributed durations (capped).  Models log rotation,
    telemetry uploads and health-check fleets that wake together.
    """

    def __init__(
        self,
        period_s: float = 1.0,
        burst_mean: float = 4.0,
        duration_s: float = 0.3e-3,
        max_s: float = 10.0e-3,
    ) -> None:
        _require_non_negative(
            period_s=period_s, burst_mean=burst_mean, duration_s=duration_s, max_s=max_s
        )
        if period_s == 0 and burst_mean > 0 and duration_s > 0:
            raise ValueError("a burst population requires a non-zero period_s")
        self.period_s = float(period_s)
        self.burst_mean = float(burst_mean)
        self.duration_s = float(duration_s)
        self.max_s = float(max_s)
        self._phases: Dict[CoreKey, float] = {}

    def params(self) -> Dict[str, float]:
        return {
            "period_s": self.period_s,
            "burst_mean": self.burst_mean,
            "duration_s": self.duration_s,
            "max_s": self.max_s,
        }

    @property
    def horizon_s(self) -> float:
        return self.period_s + self.max_s

    def _phase_for(self, core_key: CoreKey, rng: np.random.Generator) -> float:
        if core_key not in self._phases:
            self._phases[core_key] = (
                float(rng.uniform(0.0, self.period_s)) if self.period_s > 0 else 0.0
            )
        return self._phases[core_key]

    def events_in(
        self, core_key: CoreKey, start_s: float, end_s: float, rng: np.random.Generator
    ) -> List[NoiseEvent]:
        if self.period_s <= 0 or self.burst_mean <= 0 or self.duration_s <= 0:
            return []
        phase = self._phase_for(core_key, rng)
        # start one period early: a burst fired just before the window can
        # still have jobs landing inside it
        first = np.ceil((start_s - phase) / self.period_s) - 1.0
        tick = phase + first * self.period_s
        events: List[NoiseEvent] = []
        while tick < end_s:
            n = int(rng.poisson(self.burst_mean))
            cursor = tick
            for duration in np.minimum(
                rng.exponential(self.duration_s, size=n), self.max_s
            ):
                if cursor >= end_s:
                    break
                if cursor >= start_s:
                    events.append(NoiseEvent(float(cursor), float(duration)))
                cursor += float(duration)
            tick += self.period_s
        return events

    def batch_extra(self, work: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.period_s <= 0 or self.burst_mean <= 0 or self.duration_s <= 0:
            return np.zeros_like(work)
        expected = work / self.period_s
        firings = np.floor(expected) + (
            rng.uniform(size=work.shape) < (expected - np.floor(expected))
        )
        counts = rng.poisson(firings * self.burst_mean)
        flat_counts = counts.ravel()
        total = int(flat_counts.sum())
        if total == 0:
            return np.zeros_like(work)
        durations = np.minimum(rng.exponential(self.duration_s, size=total), self.max_s)
        return _sum_per_window(durations, flat_counts, work.shape)


@register_noise_source("network-storm")
class NetworkStormSource(NoiseSource):
    """Network-interrupt storms: rare arrivals, many tiny preemptions each.

    Storms arrive as a Poisson process; each storm scatters a Poisson-sized
    packet volley of fixed-cost softirq handlers across a ``span_s`` window.
    Typical of virtualised NICs and noisy cloud neighbours.
    """

    def __init__(
        self,
        storm_rate_hz: float = 0.05,
        packets_mean: float = 40.0,
        packet_s: float = 20.0e-6,
        span_s: float = 2.0e-3,
    ) -> None:
        _require_non_negative(
            storm_rate_hz=storm_rate_hz,
            packets_mean=packets_mean,
            packet_s=packet_s,
            span_s=span_s,
        )
        self.storm_rate_hz = float(storm_rate_hz)
        self.packets_mean = float(packets_mean)
        self.packet_s = float(packet_s)
        self.span_s = float(span_s)

    def params(self) -> Dict[str, float]:
        return {
            "storm_rate_hz": self.storm_rate_hz,
            "packets_mean": self.packets_mean,
            "packet_s": self.packet_s,
            "span_s": self.span_s,
        }

    @property
    def horizon_s(self) -> float:
        return self.span_s + self.packet_s

    def events_in(
        self, core_key: CoreKey, start_s: float, end_s: float, rng: np.random.Generator
    ) -> List[NoiseEvent]:
        if self.storm_rate_hz <= 0 or self.packets_mean <= 0 or self.packet_s <= 0:
            return []
        # widen the arrival window by one span so storms that broke just
        # before start_s still contribute their in-window packets; clip every
        # packet to [start_s, end_s) to honour the events_in contract
        window = end_s - start_s + self.span_s
        n_storms = int(rng.poisson(self.storm_rate_hz * window))
        events: List[NoiseEvent] = []
        for _ in range(n_storms):
            storm_start = start_s - self.span_s + float(rng.uniform(0.0, window))
            n_packets = int(rng.poisson(self.packets_mean))
            if n_packets == 0:
                continue
            offsets = np.sort(rng.uniform(0.0, self.span_s, size=n_packets))
            events.extend(
                NoiseEvent(float(t), self.packet_s)
                for t in storm_start + offsets
                if start_s <= t < end_s
            )
        return events

    def batch_extra(self, work: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.storm_rate_hz <= 0 or self.packets_mean <= 0 or self.packet_s <= 0:
            return np.zeros_like(work)
        storms = rng.poisson(self.storm_rate_hz * work)
        packets = rng.poisson(storms * self.packets_mean)
        return packets * self.packet_s


@register_noise_source("silent")
class SilentSource(NoiseSource):
    """A source that never fires — the explicit 'no noise' population."""

    def events_in(
        self, core_key: CoreKey, start_s: float, end_s: float, rng: np.random.Generator
    ) -> List[NoiseEvent]:
        return []

    def batch_extra(self, work: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.zeros_like(work)


# ----------------------------------------------------------------------
# noise profiles: named NoiseSpec compositions
# ----------------------------------------------------------------------
_NOISE_PROFILES: Dict[str, Callable[[], NoiseSpec]] = {}


def register_noise_profile(name: str, factory: Callable[[], NoiseSpec], *, replace: bool = False):
    """Register a named zero-argument :class:`NoiseSpec` factory."""
    key = str(name).strip().lower()
    if not key:
        raise ValueError("noise profile needs a name")
    existing = _NOISE_PROFILES.get(key)
    # equal specs make re-registration idempotent even for distinct lambdas
    if existing is not None and not replace and existing() != factory():
        raise ValueError(
            f"noise profile {key!r} is already registered; "
            "pass replace=True to override"
        )
    _NOISE_PROFILES[key] = factory
    return factory


def available_noise_profiles() -> Tuple[str, ...]:
    """Names of all registered noise profiles, sorted."""
    return tuple(sorted(_NOISE_PROFILES))


def noise_profile(name: str) -> NoiseSpec:
    """The :class:`NoiseSpec` registered under profile ``name``."""
    key = str(name).strip().lower()
    try:
        return _NOISE_PROFILES[key]()
    except KeyError:
        raise ValueError(
            f"unknown noise profile {name!r}; registered profiles: "
            f"{', '.join(available_noise_profiles()) or '(none)'}"
        ) from None


# parameterless specs fall back to the source classes' constructor defaults,
# which are the seed population — no third copy of those numbers here
_DAEMON = NoiseSourceSpec.of("periodic-daemon")
_POISSON = NoiseSourceSpec.of("poisson-interrupts")

register_noise_profile("default", NoiseSpec)
register_noise_profile("none", lambda: NoiseSpec(enabled=False))
register_noise_profile(
    "heavy-tail",
    lambda: NoiseSpec(
        sources=(
            _DAEMON,
            NoiseSourceSpec.of(
                "pareto-interrupts", rate_hz=0.2, scale_s=0.2e-3, alpha=1.5, max_s=50.0e-3
            ),
        )
    ),
)
register_noise_profile(
    "bursty",
    lambda: NoiseSpec(
        sources=(
            _DAEMON,
            NoiseSourceSpec.of(
                "cron-burst", period_s=0.5, burst_mean=6.0, duration_s=0.3e-3, max_s=10.0e-3
            ),
        )
    ),
)
register_noise_profile(
    "storm",
    lambda: NoiseSpec(
        sources=(
            _DAEMON,
            _POISSON,
            NoiseSourceSpec.of(
                "network-storm",
                storm_rate_hz=0.5,
                packets_mean=60.0,
                packet_s=20.0e-6,
                span_s=2.0e-3,
            ),
        )
    ),
)
register_noise_profile(
    "cloud",
    lambda: NoiseSpec(
        jitter_fraction=0.02,
        sources=(
            NoiseSourceSpec.of("periodic-daemon", period_s=0.004, duration_s=12.0e-6),
            NoiseSourceSpec.of(
                "poisson-interrupts", rate_hz=1.5, mean_s=0.8e-3, max_s=12.0e-3
            ),
            NoiseSourceSpec.of(
                "pareto-interrupts", rate_hz=0.1, scale_s=0.3e-3, alpha=1.3, max_s=80.0e-3
            ),
            NoiseSourceSpec.of(
                "network-storm",
                storm_rate_hz=1.0,
                packets_mean=80.0,
                packet_s=25.0e-6,
                span_s=3.0e-3,
            ),
        ),
    ),
)
