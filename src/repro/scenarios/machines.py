"""Machine registry: named :class:`~repro.cluster.config.MachineConfig` presets.

The seed shipped two hardcoded presets (``manzano``, ``laptop``) as module
functions.  They are now *registered entries* — ``@register_machine``
decorates a factory returning a fresh :class:`MachineConfig` — alongside two
new platforms that stretch the paper's claims in opposite directions:

* ``fatnode`` — a 128-core dual-socket node with a synchronised TSC: wide
  teams, deterministic clocks, noise dominated by the interrupt population.
* ``cloudvm`` — a small oversubscribed cloud instance with a wide clock
  spread and the ``cloud`` noise profile (fast ticks, frequent interrupts,
  heavy tails and network storms), the hostile end of the spectrum.

Factories take keyword overrides (``get_machine("manzano", n_nodes=4)``)
which are forwarded verbatim, so presets stay parametric.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.cluster.clock import ClockSpec
from repro.cluster.config import MachineConfig, laptop, manzano

MachineFactory = Callable[..., MachineConfig]

_MACHINES: Dict[str, MachineFactory] = {}


def register_machine(name=None, *, replace: bool = False):
    """Decorator registering a :class:`MachineConfig` factory by name.

    Usable bare (``@register_machine`` — uses the factory's ``__name__``) or
    with an explicit name (``@register_machine("cloudvm")``).  Registering a
    name twice raises unless ``replace=True`` (or the factory is identical,
    which makes module re-imports idempotent).
    """

    def decorator(factory: MachineFactory) -> MachineFactory:
        if not callable(factory):
            raise TypeError("register_machine expects a MachineConfig factory")
        key = (name if isinstance(name, str) else factory.__name__).strip().lower()
        if not key:
            raise ValueError("machine needs a registration name")
        existing = _MACHINES.get(key)
        if existing is not None and existing is not factory and not replace:
            raise ValueError(
                f"machine {key!r} is already registered; pass replace=True to override"
            )
        _MACHINES[key] = factory
        return factory

    if callable(name) and not isinstance(name, str):  # bare @register_machine
        factory, name = name, None
        return decorator(factory)
    return decorator


def available_machines() -> Tuple[str, ...]:
    """Names of all registered machines, sorted."""
    return tuple(sorted(_MACHINES))


def get_machine(name: str, **overrides) -> MachineConfig:
    """Build the machine registered under ``name``.

    Keyword overrides are forwarded to the factory (e.g. ``n_nodes=4``).
    """
    key = str(name).strip().lower()
    try:
        factory = _MACHINES[key]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; registered machines: "
            f"{', '.join(available_machines()) or '(none)'}"
        ) from None
    config = factory(**overrides)
    if not isinstance(config, MachineConfig):
        raise TypeError(
            f"machine factory {key!r} returned {type(config).__name__}, "
            "expected MachineConfig"
        )
    return config


def unregister_machine(name: str) -> None:
    """Remove a machine from the registry (primarily for tests)."""
    _MACHINES.pop(str(name).strip().lower(), None)


# ----------------------------------------------------------------------
# built-in presets
# ----------------------------------------------------------------------
register_machine("manzano")(manzano)
register_machine("laptop")(laptop)


@register_machine("fatnode")
def fatnode(n_nodes: int = 1) -> MachineConfig:
    """A fat 128-core node (two 64-core sockets, synchronised TSC).

    The wide-team counterpoint to Manzano: one node hosts several 48-thread
    processes, per-core clocks are comparable (``tsc_reliable``), and the
    laggard population is carried almost entirely by the interrupt sources.
    """
    return MachineConfig(
        n_nodes=n_nodes,
        sockets_per_node=2,
        cores_per_socket=64,
        frequency_ghz=2.45,
        memory_gb=1024.0,
        clock_spec=ClockSpec(tsc_reliable=True, read_jitter_ns=10.0),
        name="fatnode",
    )


@register_machine("cloudvm")
def cloudvm(n_nodes: int = 1) -> MachineConfig:
    """A noisy oversubscribed cloud VM with a wide clock spread.

    Sixteen vCPUs on one socket, per-core clock offsets up to ~10^7 s with
    40 ppm drift (migrated guests), and the ``cloud`` noise profile: 4 ms
    steal-time ticks, frequent interrupts, Pareto-tailed stalls and
    network-interrupt storms.
    """
    from repro.scenarios.sources import noise_profile

    return MachineConfig(
        n_nodes=n_nodes,
        sockets_per_node=1,
        cores_per_socket=16,
        frequency_ghz=2.5,
        memory_gb=64.0,
        clock_spec=ClockSpec(
            max_offset_s=1.0e7, drift_ppm=40.0, read_jitter_ns=60.0, tsc_reliable=False
        ),
        noise_spec=noise_profile("cloud"),
        name="cloudvm",
    )
