"""Declarative scenarios: machine × noise × application × schedule.

A :class:`Scenario` is a named, serialisable recipe the campaign layer can
execute: which registered machine to build, which noise profile to override
it with (if any), which proxy application to run and under which OpenMP loop
schedule.  :meth:`Scenario.campaign_config` turns the recipe into a regular
:class:`~repro.experiments.config.CampaignConfig` at any scale, so scenarios
feed :class:`~repro.experiments.session.CampaignSession` and the parallel
shard executor directly::

    >>> from repro.scenarios import get_scenario
    >>> result = get_scenario("manzano-default").session(scale="smoke").run()

:class:`ScenarioMatrix` expands cartesian products of registered machines,
noise profiles, applications and schedules into scenario lists — the shape
the CI scenario-matrix job and parameter sweeps consume.  A catalog of
built-in scenarios is registered at import; the CLI exposes it through
``--scenario`` and ``--list-scenarios``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.scenarios.machines import get_machine
from repro.scenarios.sources import noise_profile

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.cluster.config import MachineConfig
    from repro.experiments.config import CampaignConfig
    from repro.experiments.session import CampaignResult, CampaignSession


@dataclass(frozen=True)
class Scenario:
    """One named experimental setting.

    Parameters
    ----------
    name:
        Registry name (e.g. ``"manzano-default"``); used by the CLI and as
        the dataset/artifact label.
    machine:
        Registered machine name (see :mod:`repro.scenarios.machines`).
    application:
        Proxy application name (``"minife"``, ``"minimd"``, ``"miniqmc"``).
    noise:
        Optional noise-profile name overriding the machine's own noise
        population (``None`` keeps the machine default).
    schedule:
        Optional OpenMP schedule clause (``"static"``, ``"dynamic,4"``,
        ``"guided"``); ``None`` keeps each application's default.
    backend:
        Optional campaign-backend name (``"batched"``, ``"event"``, ...)
        pinning the execution strategy; ``None`` keeps the campaign default
        (and an explicit ``backend=`` override to
        :meth:`campaign_config` wins over both).
    machine_args:
        Keyword overrides forwarded to the machine factory.
    description:
        One line for catalogs and reports.
    """

    name: str
    machine: str = "manzano"
    application: str = "minife"
    noise: Optional[str] = None
    schedule: Optional[str] = None
    backend: Optional[str] = None
    machine_args: Tuple[Tuple[str, object], ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise ValueError("Scenario needs a name")
        args = self.machine_args
        if isinstance(args, Mapping):
            args = args.items()
        object.__setattr__(
            self, "machine_args", tuple(sorted((str(k), v) for k, v in args))
        )

    # ------------------------------------------------------------------
    def machine_config(self) -> "MachineConfig":
        """Build this scenario's machine, with its noise override applied."""
        config = get_machine(self.machine, **dict(self.machine_args))
        if self.noise is not None:
            config = config.with_noise(noise_profile(self.noise))
        return config

    def campaign_config(
        self,
        scale: str = "smoke",
        *,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
        max_workers: Optional[int] = None,
        trials: Optional[int] = None,
        processes: Optional[int] = None,
        iterations: Optional[int] = None,
        threads: Optional[int] = None,
    ) -> "CampaignConfig":
        """A :class:`CampaignConfig` realising this scenario at ``scale``.

        ``scale`` picks one of the config presets (``"smoke"``,
        ``"benchmark"``, ``"paper"``); the remaining keywords override
        individual campaign dimensions.
        """
        from repro.experiments.config import CampaignConfig

        factories = {
            "smoke": CampaignConfig.smoke,
            "benchmark": CampaignConfig.benchmark_scale,
            "paper": CampaignConfig.paper_scale,
        }
        try:
            base = factories[scale](application=self.application)
        except KeyError:
            raise ValueError(
                f"unknown scale {scale!r}; expected one of {', '.join(sorted(factories))}"
            ) from None
        base = base.scaled(
            trials=trials, processes=processes, iterations=iterations, threads=threads
        )
        return replace(
            base,
            machine=self.machine_config(),
            schedule=self.schedule,
            scenario=self.name,
            seed=seed if seed is not None else base.seed,
            backend=(
                backend
                if backend is not None
                else (self.backend if self.backend is not None else base.backend)
            ),
            max_workers=max_workers if max_workers is not None else base.max_workers,
        )

    def session(
        self, scale: str = "smoke", *, cache_dir=None, executor_mode: str = "process", **overrides
    ) -> "CampaignSession":
        """A :class:`CampaignSession` ready to run this scenario."""
        from repro.experiments.session import CampaignSession

        return CampaignSession(
            self.campaign_config(scale, **overrides),
            cache_dir=cache_dir,
            executor_mode=executor_mode,
        )

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Catalog row for reports and ``--list-scenarios``."""
        return {
            "name": self.name,
            "machine": self.machine,
            "application": self.application,
            "noise": self.noise or "(machine default)",
            "schedule": self.schedule or "(app default)",
            "backend": self.backend or "(campaign default)",
            "description": self.description,
        }


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Register a :class:`Scenario` under its own name.

    Registering a name twice raises unless ``replace=True`` (or the scenario
    is equal, which makes module re-imports idempotent).
    """
    if not isinstance(scenario, Scenario):
        raise TypeError("register_scenario expects a Scenario instance")
    key = scenario.name.strip().lower()
    existing = _SCENARIOS.get(key)
    if existing is not None and existing != scenario and not replace:
        raise ValueError(
            f"scenario {key!r} is already registered; pass replace=True to override"
        )
    _SCENARIOS[key] = scenario
    return scenario


def available_scenarios() -> Tuple[str, ...]:
    """Names of all registered scenarios, sorted."""
    return tuple(sorted(_SCENARIOS))


def get_scenario(name: str) -> Scenario:
    """The scenario registered under ``name``."""
    key = str(name).strip().lower()
    try:
        return _SCENARIOS[key]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(available_scenarios()) or '(none)'}"
        ) from None


def unregister_scenario(name: str) -> None:
    """Remove a scenario from the registry (primarily for tests)."""
    _SCENARIOS.pop(str(name).strip().lower(), None)


# ----------------------------------------------------------------------
# matrix expansion
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioMatrix:
    """Cartesian sweep over machines × noises × applications × schedules.

    ``None`` entries in ``noises``/``schedules`` mean "keep the machine/app
    default", exactly as in :class:`Scenario`.  Expansion produces
    deterministic, self-describing names like
    ``manzano-minife-heavy-tail-dynamic``; pass ``name_prefix`` to namespace
    a sweep.  The matrix iterates as its expanded scenarios and
    :meth:`run` drives a :class:`CampaignSession` per entry.
    """

    machines: Tuple[str, ...] = ("manzano",)
    applications: Tuple[str, ...] = ("minife",)
    noises: Tuple[Optional[str], ...] = (None,)
    schedules: Tuple[Optional[str], ...] = (None,)
    name_prefix: str = ""

    def __post_init__(self) -> None:
        for attr in ("machines", "applications", "noises", "schedules"):
            object.__setattr__(self, attr, tuple(getattr(self, attr)))
        if not (self.machines and self.applications and self.noises and self.schedules):
            raise ValueError("every matrix axis needs at least one entry")

    # ------------------------------------------------------------------
    def expand(self) -> List[Scenario]:
        """All combinations, as concrete :class:`Scenario` objects."""
        scenarios = []
        for machine, app, noise, schedule in itertools.product(
            self.machines, self.applications, self.noises, self.schedules
        ):
            parts = [self.name_prefix, machine, app, noise, schedule]
            # "dynamic,4" -> "dynamic-c4": keep names shell- and path-safe
            name = "-".join(part.replace(",", "-c") for part in parts if part)
            scenarios.append(
                Scenario(
                    name=name,
                    machine=machine,
                    application=app,
                    noise=noise,
                    schedule=schedule,
                    description="matrix expansion",
                )
            )
        return scenarios

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.expand())

    def __len__(self) -> int:
        return (
            len(self.machines)
            * len(self.applications)
            * len(self.noises)
            * len(self.schedules)
        )

    # ------------------------------------------------------------------
    def configs(self, scale: str = "smoke", **overrides) -> List["CampaignConfig"]:
        """One :class:`CampaignConfig` per expanded scenario."""
        return [s.campaign_config(scale, **overrides) for s in self.expand()]

    def run(
        self,
        scale: str = "smoke",
        *,
        cache_dir=None,
        executor_mode: str = "process",
        use_cache: bool = True,
        **overrides,
    ) -> Dict[str, "CampaignResult"]:
        """Run every expanded scenario through a :class:`CampaignSession`.

        Returns results keyed by scenario name.  ``overrides`` (seed,
        backend, max_workers, dimension overrides) apply to every entry, so
        ``max_workers=8`` fans each campaign's shards across the parallel
        executor.

        Entries resolving to the ``"campaign"`` backend that miss the result
        cache are executed *together*: compatible configs (same application
        geometry and schedule — see
        :func:`~repro.experiments.backends.campaign_group_key`) share one
        whole-campaign tensor pass through
        :meth:`~repro.experiments.backends.CampaignTensorBackend.run_many`,
        and each dataset is cached and registered with its session exactly
        as a solo run would be (the samples are bit-identical either way).
        """
        from repro.experiments.backends import get_backend

        scenarios = self.expand()
        sessions = {
            scenario.name: scenario.session(
                scale, cache_dir=cache_dir, executor_mode=executor_mode, **overrides
            )
            for scenario in scenarios
        }
        results: Dict[str, "CampaignResult"] = {}
        shared: List[Tuple[str, "CampaignSession"]] = []
        for scenario in scenarios:
            session = sessions[scenario.name]
            if session.config.backend == "campaign":
                result = session.cached() if use_cache else None
                if result is not None:
                    results[scenario.name] = result
                else:
                    shared.append((scenario.name, session))
            else:
                results[scenario.name] = session.run(use_cache=use_cache)
        if shared:
            backend = get_backend("campaign")
            datasets = backend.run_many(
                [session.config for _, session in shared], mode=executor_mode
            )
            for (name, session), dataset in zip(shared, datasets):
                results[name] = session.adopt(dataset)
        return {scenario.name: results[scenario.name] for scenario in scenarios}


def run_scenarios(
    names: Sequence[Union[str, Scenario]],
    scale: str = "smoke",
    *,
    cache_dir=None,
    executor_mode: str = "process",
    use_cache: bool = True,
    **overrides,
) -> Dict[str, "CampaignResult"]:
    """Run a list of scenarios (by name or instance) and key results by name."""
    results: Dict[str, "CampaignResult"] = {}
    for entry in names:
        scenario = entry if isinstance(entry, Scenario) else get_scenario(entry)
        session = scenario.session(
            scale, cache_dir=cache_dir, executor_mode=executor_mode, **overrides
        )
        results[scenario.name] = session.run(use_cache=use_cache)
    return results


# ----------------------------------------------------------------------
# built-in catalog
# ----------------------------------------------------------------------
_BUILTIN_SCENARIOS = (
    Scenario(
        name="manzano-default",
        description="The paper's §3.2 platform and noise model (reproduces the "
        "seed campaign bit-identically)",
    ),
    Scenario(
        name="manzano-minimd",
        application="minimd",
        description="MiniMD on the paper platform (two-phase force/neighbor loop)",
    ),
    Scenario(
        name="manzano-miniqmc",
        application="miniqmc",
        description="MiniQMC on the paper platform (walker-population spread)",
    ),
    Scenario(
        name="manzano-quiet",
        noise="none",
        description="Noise-off ablation (A2): pure schedule imbalance and clocks",
    ),
    Scenario(
        name="manzano-heavytail",
        noise="heavy-tail",
        description="Pareto-tailed interrupts: rare multi-ms stalls break "
        "normality at the tails",
    ),
    Scenario(
        name="manzano-storm",
        noise="storm",
        description="Network-interrupt storms layered on the default populations",
    ),
    Scenario(
        name="manzano-dynamic",
        schedule="dynamic",
        description="Dynamic loop schedule: imbalance traded for scheduling churn",
    ),
    Scenario(
        name="manzano-guided",
        schedule="guided",
        description="Guided loop schedule on the paper platform",
    ),
    Scenario(
        name="manzano-dynamic-batched",
        schedule="dynamic,4",
        backend="batched",
        description="Dynamic schedule driven through the batched backend's "
        "row-vectorized work-queue kernel (CI smoke of the batched "
        "dynamic path)",
    ),
    Scenario(
        name="manzano-campaign-batched",
        schedule="dynamic,4",
        backend="campaign",
        description="Dynamic schedule driven through the whole-campaign "
        "tensor backend (CI smoke of the campaign-level fold and its "
        "chunked shard streaming)",
    ),
    Scenario(
        name="laptop-bursty",
        machine="laptop",
        noise="bursty",
        description="Small single-socket machine under cron-style burst daemons",
    ),
    Scenario(
        name="fatnode-default",
        machine="fatnode",
        description="128-core fat node with synchronised TSC (wide-team regime)",
    ),
    Scenario(
        name="cloudvm-default",
        machine="cloudvm",
        description="Noisy oversubscribed cloud VM: wide clock spread, steal "
        "ticks, heavy tails and storms",
    ),
)

for _scenario in _BUILTIN_SCENARIOS:
    register_scenario(_scenario)
del _scenario
