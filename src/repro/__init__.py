"""repro — reproduction of *Measuring Thread Timing to Assess the Feasibility of
Early-bird Message Delivery* (Marts et al., ICPP 2023, arXiv:2304.11122).

The package is organised as a stack of substrates with the paper's
contribution (thread-timing instrumentation and analysis) on top:

``repro.sim``
    Deterministic discrete-event simulation engine.
``repro.cluster``
    Machine model: nodes, sockets, cores, per-core monotonic clocks and an
    OS-noise model (the "Manzano" test platform of the paper is a preset).
``repro.openmp``
    Simulated OpenMP runtime: thread teams, loop schedules, barriers and
    ``parallel for nowait`` regions.
``repro.mpi``
    Simulated MPI layer: communicators, point-to-point, collectives and
    MPI-4.0-style partitioned communication on a LogGP network model.
``repro.stats``
    Batch-vectorised normality tests (D'Agostino K², Shapiro–Wilk,
    Anderson–Darling) and distribution utilities, validated against SciPy.
``repro.core``
    The paper's contribution: region instrumentation, the
    :class:`~repro.core.timing.TimingDataset`, aggregation levels, laggard and
    reclaimable-time analysis, and the early-bird feasibility model.
``repro.apps``
    Proxy applications (MiniFE, MiniMD, MiniQMC) re-implemented as timed
    kernels plus calibrated per-thread work/cost models.
``repro.experiments``
    The campaign execution API — a registry of pluggable execution backends,
    a parallel sharded executor and the :class:`CampaignSession` facade —
    plus per-table/per-figure generators for the paper's evaluation section.

Quickstart
----------

>>> from repro import CampaignConfig, CampaignSession
>>> session = CampaignSession(CampaignConfig.smoke())
>>> report = session.run("minife").analyze().report()
>>> 0.0 <= report.laggard_fraction <= 1.0
True

``CampaignConfig(max_workers=4)`` fans the campaign's (trial, process)
shards out across a worker pool with bit-identical results;
``session.stream()`` iterates shard-by-shard without materialising the dense
dataset; ``repro.experiments.register_backend`` plugs in new execution
strategies alongside the built-in ``vectorized``, ``event`` and ``chunked``
backends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro._version import __version__

__all__ = [
    "__version__",
    "TimingDataset",
    "TimingRecord",
    "TimingShard",
    "ThreadTimingAnalyzer",
    "CampaignConfig",
    "CampaignSession",
    "register_backend",
    "quick_campaign",
    "run_campaign",
]

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.core.analyzer import ThreadTimingAnalyzer
    from repro.core.timing import TimingDataset, TimingRecord, TimingShard
    from repro.experiments.backends import register_backend
    from repro.experiments.campaign import quick_campaign, run_campaign
    from repro.experiments.config import CampaignConfig
    from repro.experiments.session import CampaignSession

_LAZY_EXPORTS = {
    "TimingDataset": ("repro.core.timing", "TimingDataset"),
    "TimingRecord": ("repro.core.timing", "TimingRecord"),
    "TimingShard": ("repro.core.timing", "TimingShard"),
    "ThreadTimingAnalyzer": ("repro.core.analyzer", "ThreadTimingAnalyzer"),
    "CampaignConfig": ("repro.experiments.config", "CampaignConfig"),
    "CampaignSession": ("repro.experiments.session", "CampaignSession"),
    "register_backend": ("repro.experiments.backends", "register_backend"),
    "quick_campaign": ("repro.experiments.campaign", "quick_campaign"),
    "run_campaign": ("repro.experiments.campaign", "run_campaign"),
}


def __getattr__(name: str):
    """Lazily resolve the top-level convenience exports.

    Keeping these imports lazy lets the lightweight substrates
    (``repro.sim``, ``repro.stats``, ...) be imported on their own without
    paying for the full analysis stack.
    """
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
