"""repro — reproduction of *Measuring Thread Timing to Assess the Feasibility of
Early-bird Message Delivery* (Marts et al., ICPP 2023, arXiv:2304.11122).

The package is organised as a stack of substrates with the paper's
contribution (thread-timing instrumentation and analysis) on top:

``repro.sim``
    Deterministic discrete-event simulation engine.
``repro.cluster``
    Machine model: nodes, sockets, cores, per-core monotonic clocks and an
    OS-noise model (the "Manzano" test platform of the paper is a preset).
``repro.openmp``
    Simulated OpenMP runtime: thread teams, loop schedules, barriers and
    ``parallel for nowait`` regions.
``repro.mpi``
    Simulated MPI layer: communicators, point-to-point, collectives and
    MPI-4.0-style partitioned communication on a LogGP network model.
``repro.stats``
    Batch-vectorised normality tests (D'Agostino K², Shapiro–Wilk,
    Anderson–Darling) and distribution utilities, validated against SciPy.
``repro.core``
    The paper's contribution: region instrumentation, the
    :class:`~repro.core.timing.TimingDataset`, aggregation levels, laggard and
    reclaimable-time analysis, and the early-bird feasibility model.
``repro.apps``
    Proxy applications (MiniFE, MiniMD, MiniQMC) re-implemented as timed
    kernels plus calibrated per-thread work/cost models.
``repro.experiments``
    The campaign execution API — a registry of pluggable execution backends,
    a parallel sharded executor and the :class:`CampaignSession` facade —
    plus per-table/per-figure generators for the paper's evaluation section.
``repro.scenarios``
    Registries for machines (``@register_machine``), OS-noise sources
    (``@register_noise_source``) and declarative :class:`Scenario` recipes
    (machine × noise × application × schedule), with
    :class:`ScenarioMatrix` expansion for sweeps.
``repro.analysis``
    The streaming analysis engine: registered shard-mergeable analysis
    passes (``@register_analysis``) that fold campaign shards through a
    ``prepare → accumulate → merge → finalize`` lifecycle, so §4 analyses
    run in one parallel pass without materialising the merged dataset.

Quickstart
----------

>>> from repro import CampaignConfig, CampaignSession
>>> session = CampaignSession(CampaignConfig.smoke())
>>> report = session.run("minife").analyze().report()
>>> 0.0 <= report.laggard_fraction <= 1.0
True

``CampaignConfig(max_workers=4)`` fans the campaign's (trial, process)
shards out across a worker pool with bit-identical results;
``session.stream()`` iterates shard-by-shard without materialising the dense
dataset; ``repro.experiments.register_backend`` plugs in new execution
strategies alongside the built-in ``vectorized``, ``batched``, ``event`` and ``chunked``
backends.

Scenarios name full experimental settings and feed the same session::

>>> from repro import get_scenario
>>> result = get_scenario("manzano-quiet").session(scale="smoke").run()
>>> result.dataset.metadata["noise_enabled"]
False

Campaign-scale analysis streams shards through registered analysis passes
instead of merging them first::

>>> results = session.analyze(analyses=["percentiles", "laggards",
...                                     "reclaimable", "normality"])
>>> report = results.report(include_earlybird=False)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro._version import __version__

__all__ = [
    "__version__",
    "TimingDataset",
    "TimingRecord",
    "TimingShard",
    "ThreadTimingAnalyzer",
    "CampaignConfig",
    "CampaignSession",
    "register_backend",
    "quick_campaign",
    "run_campaign",
    "Scenario",
    "ScenarioMatrix",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
    "register_machine",
    "get_machine",
    "available_machines",
    "register_noise_source",
    "make_noise_source",
    "available_noise_sources",
    "noise_profile",
    "AnalysisPass",
    "register_analysis",
    "get_analysis",
    "available_analyses",
    "run_analyses",
]

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.analysis import (
        AnalysisPass,
        available_analyses,
        get_analysis,
        register_analysis,
        run_analyses,
    )
    from repro.core.analyzer import ThreadTimingAnalyzer
    from repro.core.timing import TimingDataset, TimingRecord, TimingShard
    from repro.experiments.backends import register_backend
    from repro.experiments.campaign import quick_campaign, run_campaign
    from repro.experiments.config import CampaignConfig
    from repro.experiments.session import CampaignSession
    from repro.scenarios.machines import (
        available_machines,
        get_machine,
        register_machine,
    )
    from repro.scenarios.scenario import (
        Scenario,
        ScenarioMatrix,
        available_scenarios,
        get_scenario,
        register_scenario,
    )
    from repro.scenarios.sources import (
        available_noise_sources,
        make_noise_source,
        noise_profile,
        register_noise_source,
    )

_LAZY_EXPORTS = {
    "TimingDataset": ("repro.core.timing", "TimingDataset"),
    "TimingRecord": ("repro.core.timing", "TimingRecord"),
    "TimingShard": ("repro.core.timing", "TimingShard"),
    "ThreadTimingAnalyzer": ("repro.core.analyzer", "ThreadTimingAnalyzer"),
    "CampaignConfig": ("repro.experiments.config", "CampaignConfig"),
    "CampaignSession": ("repro.experiments.session", "CampaignSession"),
    "register_backend": ("repro.experiments.backends", "register_backend"),
    "quick_campaign": ("repro.experiments.campaign", "quick_campaign"),
    "run_campaign": ("repro.experiments.campaign", "run_campaign"),
    "Scenario": ("repro.scenarios.scenario", "Scenario"),
    "ScenarioMatrix": ("repro.scenarios.scenario", "ScenarioMatrix"),
    "register_scenario": ("repro.scenarios.scenario", "register_scenario"),
    "get_scenario": ("repro.scenarios.scenario", "get_scenario"),
    "available_scenarios": ("repro.scenarios.scenario", "available_scenarios"),
    "register_machine": ("repro.scenarios.machines", "register_machine"),
    "get_machine": ("repro.scenarios.machines", "get_machine"),
    "available_machines": ("repro.scenarios.machines", "available_machines"),
    "register_noise_source": ("repro.scenarios.sources", "register_noise_source"),
    "make_noise_source": ("repro.scenarios.sources", "make_noise_source"),
    "available_noise_sources": ("repro.scenarios.sources", "available_noise_sources"),
    "noise_profile": ("repro.scenarios.sources", "noise_profile"),
    "AnalysisPass": ("repro.analysis", "AnalysisPass"),
    "register_analysis": ("repro.analysis", "register_analysis"),
    "get_analysis": ("repro.analysis", "get_analysis"),
    "available_analyses": ("repro.analysis", "available_analyses"),
    "run_analyses": ("repro.analysis", "run_analyses"),
}


def __getattr__(name: str):
    """Lazily resolve the top-level convenience exports.

    Keeping these imports lazy lets the lightweight substrates
    (``repro.sim``, ``repro.stats``, ...) be imported on their own without
    paying for the full analysis stack.
    """
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
