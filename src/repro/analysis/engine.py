"""The streaming analysis engine: fold campaign shards through passes.

Two drivers are provided:

* :func:`run_analyses` — fold an existing shard iterable (e.g.
  ``CampaignSession.stream()`` or an in-memory list) through a set of
  passes serially.
* :func:`run_campaign_analyses` — execute a campaign *and* analyse it in
  one parallel pass: each executor worker runs its shard and immediately
  folds it into fresh per-pass accumulator states, returning only the
  partials to the parent; the merged dataset is never materialised.  Note
  that in exact mode the ``percentiles``/``normality`` partials carry the
  shard's sample values (exact order statistics need them), so truly
  bounded memory requires ``exact=False``.

Both drivers build the same reduction: one partial state per shard, merged
in the serial (trial-major) shard order.  Because partials are merged in a
deterministic order — and the exact-mode accumulators key their segments by
shard position anyway — the analysis results are bit-identical whether the
campaign ran serially, on a thread pool or on a process pool.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.base import (
    AnalysisContext,
    AnalysisPass,
    resolve_analyses,
)
from repro.analysis.report import assemble_feasibility_report
from repro.core.timing import TimingShard

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.core.report import FeasibilityReport
    from repro.experiments.backends import CampaignBackend
    from repro.experiments.config import CampaignConfig
    from repro.experiments.executor import ShardExecutor


class AnalysisResults(Mapping):
    """Finalized products of one streaming analysis run, keyed by pass name.

    >>> results = session.analyze("minife", analyses=["percentiles", "laggards"])
    >>> results["percentiles"].mean_median()
    >>> results.report(include_earlybird=False)   # needs the report passes
    """

    def __init__(
        self, products: Dict[str, Any], context: AnalysisContext
    ) -> None:
        self._products = dict(products)
        self.context = context

    def __getitem__(self, name: str) -> Any:
        return self._products[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._products)

    def __len__(self) -> int:
        return len(self._products)

    @property
    def application(self) -> str:
        return self.context.application

    def report(self, include_earlybird: bool = True) -> "FeasibilityReport":
        """Assemble the per-application feasibility report from the products."""
        return assemble_feasibility_report(
            self, self.context, include_earlybird=include_earlybird
        )

    def as_payload(self) -> Dict[str, Any]:
        """JSON-friendly view of every product, keyed by pass name.

        The shape the CLI writes to ``analyses_<app>.json`` and the service
        serves from ``GET /jobs/<id>/analyses``.
        """
        return {
            name: product_payload(self._products[name])
            for name in sorted(self._products)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AnalysisResults({self.application!r}, "
            f"passes={sorted(self._products)})"
        )


def product_payload(product: Any) -> Any:
    """JSON-friendly view of one analysis-pass product.

    Products expose ``to_dict``/``as_dict`` (preferred), are plain dicts
    already, or fall back to their ``repr``.
    """
    for attr in ("to_dict", "as_dict"):
        method = getattr(product, attr, None)
        if callable(method):
            return method()
    if isinstance(product, dict):
        return product
    return repr(product)


class ShardAnalyzer:
    """Picklable per-shard mapper: fold one shard into fresh pass states.

    Instances travel to executor workers (passes hold only parameters, the
    context is a frozen dataclass), so the reduction's map step runs where
    the shard was produced.
    """

    def __init__(
        self, passes: Sequence[AnalysisPass], context: AnalysisContext
    ) -> None:
        self.passes = tuple(passes)
        self.context = context

    def __call__(self, shard: TimingShard) -> Dict[str, Any]:
        from repro.core.aggregation import release_shard_groups

        try:
            return {
                p.name: p.accumulate(p.prepare(self.context), shard, self.context)
                for p in self.passes
            }
        finally:
            # every pass has folded this shard — drop its grouping memo now
            # rather than waiting for the shard itself to be collected (the
            # session may keep its shards cached)
            release_shard_groups(shard)


class ColumnarAnalyzer:
    """Picklable block mapper: per-shard partials from one column block.

    The columnar analogue of :class:`ShardAnalyzer`: instead of folding one
    shard at a time it hands each pass a whole multi-shard column block
    (``columns`` plus one :class:`~repro.core.aggregation.ShardSlice` per
    shard) and transposes the per-pass split results into one
    ``{pass_name: state}`` partial per shard.  Those partials feed the same
    merge fold as the shard-streaming path — the structural guarantee behind
    the bit-identity contract.
    """

    def __init__(
        self, passes: Sequence[AnalysisPass], context: AnalysisContext
    ) -> None:
        self.passes = tuple(passes)
        self.context = context

    def __call__(self, columns, slices) -> list:
        split = {
            p.name: p.accumulate_columns_split(columns, slices, self.context)
            for p in self.passes
        }
        return [
            {name: states[k] for name, states in split.items()}
            for k in range(len(slices))
        ]


def run_columnar_analyses(
    blocks: Iterable[Tuple[Mapping[str, Any], Sequence[Any]]],
    analyses: Union[None, str, Iterable[Union[str, AnalysisPass]]],
    context: AnalysisContext,
) -> AnalysisResults:
    """Fold an iterable of ``(columns, slices)`` blocks through passes.

    Blocks must arrive in serial (trial-major) shard order, like the shard
    iterables of :func:`run_analyses` — the per-shard partials of each block
    then merge in exactly the order the shard-streaming path would have
    produced, keeping sketch states identical as well.
    """
    passes = resolve_analyses(analyses)
    mapper = ColumnarAnalyzer(passes, context)
    partials = (partial for block in blocks for partial in mapper(*block))
    return _reduce_partials(passes, partials, context)


def _reduce_partials(
    passes: Sequence[AnalysisPass],
    partials: Iterable[Dict[str, Any]],
    context: AnalysisContext,
) -> AnalysisResults:
    """Merge per-shard partial states (in the given order) and finalize."""
    merged: Optional[Dict[str, Any]] = None
    for partial in partials:
        if merged is None:
            merged = partial
        else:
            for p in passes:
                merged[p.name] = p.merge(merged[p.name], partial[p.name])
    if merged is None:
        raise ValueError("no shards to analyze")
    products = {p.name: p.finalize(merged[p.name], context) for p in passes}
    return AnalysisResults(products, context)


def run_analyses(
    shards: Iterable[TimingShard],
    analyses: Union[None, str, Iterable[Union[str, AnalysisPass]]],
    context: AnalysisContext,
) -> AnalysisResults:
    """Fold an iterable of shards through the requested passes (serial)."""
    passes = resolve_analyses(analyses)
    mapper = ShardAnalyzer(passes, context)
    return _reduce_partials(passes, (mapper(shard) for shard in shards), context)


def run_campaign_analyses(
    backend: "CampaignBackend",
    config: "CampaignConfig",
    analyses: Union[None, str, Iterable[Union[str, AnalysisPass]]],
    *,
    context: Optional[AnalysisContext] = None,
    executor: Optional["ShardExecutor"] = None,
    exact: bool = True,
) -> AnalysisResults:
    """Execute a campaign and stream its shards through analysis passes.

    Backends with a chunk-block path (the campaign tensor backend) take the
    fused columnar route: each chunk's column block folds into per-pass
    partials right where it was produced —
    :meth:`~repro.experiments.executor.ShardExecutor.map_blocks` — so with
    ``config.max_workers > 1`` only partials cross the process boundary and
    no shards are ever assembled.  Everything else goes through
    :meth:`~repro.experiments.executor.ShardExecutor.map_shards`, which
    likewise accumulates worker-side.  Both routes reduce one partial per
    shard in serial order, so their results are bit-identical.
    """
    from repro.experiments.executor import ShardExecutor

    passes = resolve_analyses(analyses)
    if context is None:
        context = AnalysisContext.from_config(
            config, exact=exact, metadata=backend.metadata(config)
        )
    if executor is None:
        executor = ShardExecutor()
    blocks = None
    if hasattr(executor, "map_blocks"):
        blocks = executor.map_blocks(
            backend, config, ColumnarAnalyzer(passes, context)
        )
    if blocks is not None:
        partials = (partial for chunk in blocks for partial in chunk)
        return _reduce_partials(passes, partials, context)
    mapper = ShardAnalyzer(passes, context)
    partials = (
        partial for _, partial in executor.map_shards(backend, config, mapper)
    )
    return _reduce_partials(passes, partials, context)
