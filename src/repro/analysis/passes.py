"""The built-in analysis passes: every §4 product, shard-mergeable.

Each pass ports one :class:`~repro.core.analyzer.ThreadTimingAnalyzer`
product onto the ``prepare → accumulate(shard) → merge → finalize``
lifecycle of :class:`~repro.analysis.base.AnalysisPass`:

============  ====================================================  =========
name          product                                               paper
============  ====================================================  =========
percentiles   :class:`~repro.stats.percentiles.PercentileSeries`    Fig 4/6/8
histogram     :class:`~repro.stats.histogram.FixedWidthHistogram`   Fig 3
normality     :class:`NormalityResult`                              §4.1/Tab 1
laggards      :class:`LaggardsResult`                               §4.2
reclaimable   :class:`~repro.core.reclaimable.ReclaimableSummary`   §4.2
earlybird     dict of mean early-bird gains                         Fig 1/2
============  ====================================================  =========

Exactness contract (checked by the pinned-digest integration tests): with
``context.exact`` (the default) every pass produces results *bit-identical*
to the in-memory analyzer, for any shard decomposition and any shard order.
The trick is that accumulators never merge floating-point partials — they
keep exact per-shard segments keyed by the shard's serial sort position and
re-assemble the dense-order arrays at finalize.  With ``exact=False`` the
passes switch to bounded accumulators (:class:`~repro.stats.sketch.PercentileSketch`,
:class:`~repro.stats.streaming.StreamingMoments`, lattice histograms) whose
memory is independent of the shard count; sketched percentiles then agree
within the sketch's documented rank tolerance (≈ ``1 / capacity``).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.base import AnalysisContext, AnalysisPass, register_analysis
from repro.core.aggregation import (
    AggregationLevel,
    aggregate_shard,
    campaign_block_groups,
)
from repro.core.earlybird import EarlyBirdModel
from repro.core.laggard import (
    DEFAULT_LAGGARD_THRESHOLD_S,
    DEFAULT_WIDE_IQR_S,
    IterationClass,
    LaggardAnalysis,
    group_laggard_codes,
    group_laggard_metrics,
)
from repro.core.normality import stratified_subsample
from repro.core.reclaimable import ReclaimableSummary, idle_ratio, reclaimable_time
from repro.core.timing import TimingShard
from repro.stats.battery import TEST_NAMES, NormalityBattery
from repro.stats.histogram import FixedWidthHistogram
from repro.stats.percentiles import DEFAULT_PERCENTILES, PercentileSeries, percentile_table
from repro.stats.sketch import BoundedTopK, PercentileSketch
from repro.stats.streaming import StreamingHistogram, StreamingMoments

#: default bounded-mode sketch capacity (per accumulator)
DEFAULT_SKETCH_CAPACITY = 4096

#: default size of the early-bird pass's deterministic strided group subset
DEFAULT_EARLYBIRD_MAX_GROUPS = 200


def _sorted_segments(segments: List[Tuple[Tuple[int, int], Any]]) -> List[Any]:
    """Segment payloads ordered by the shards' serial (trial-major) position."""
    return [payload for _, payload in sorted(segments, key=lambda item: item[0])]


# ----------------------------------------------------------------------
@register_analysis("percentiles")
class PercentilesPass(AnalysisPass):
    """Per-application-iteration percentile trajectories (Figures 4/6/8)."""

    title = "per-iteration percentile trajectories (Figures 4/6/8)"

    def __init__(
        self,
        percentiles: Tuple[float, ...] = DEFAULT_PERCENTILES,
        *,
        sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
    ) -> None:
        self.percentiles = tuple(percentiles)
        self.sketch_capacity = int(sketch_capacity)

    def prepare(self, context: AnalysisContext) -> Dict[int, Any]:
        # iteration id -> list of (sort_key, samples) segments (exact) or a
        # PercentileSketch (bounded)
        return {}

    def accumulate(self, state, shard: TimingShard, context: AnalysisContext):
        grouped = aggregate_shard(shard, AggregationLevel.APPLICATION_ITERATION)
        for key, row in zip(grouped.keys, grouped.values):
            iteration = int(key[0])
            if context.exact:
                state.setdefault(iteration, []).append((shard.sort_key, row))
            else:
                sketch = state.get(iteration)
                if sketch is None:
                    sketch = state[iteration] = PercentileSketch(self.sketch_capacity)
                sketch.update(row)
        return state

    def accumulate_columns_split(self, columns, slices, context):
        block = campaign_block_groups(columns, slices)
        if block is None:
            return super().accumulate_columns_split(columns, slices, context)
        matrix, iterations = block
        iters = [int(i) for i in iterations]
        states = []
        for s, sl in enumerate(slices):
            key = sl.sort_key
            rows = matrix[s]
            if context.exact:
                state = {
                    iteration: [(key, rows[i])]
                    for i, iteration in enumerate(iters)
                }
            else:
                state = self.prepare(context)
                for i, iteration in enumerate(iters):
                    sketch = state[iteration] = PercentileSketch(self.sketch_capacity)
                    sketch.update(rows[i])
            states.append(state)
        return states

    def merge(self, state, other):
        for iteration, payload in other.items():
            mine = state.get(iteration)
            if mine is None:
                state[iteration] = payload
            elif isinstance(payload, list):
                mine.extend(payload)
            else:
                state[iteration] = mine.merge(payload)
        return state

    def finalize(self, state, context: AnalysisContext) -> PercentileSeries:
        iterations = sorted(state)
        if not iterations:
            raise ValueError("percentiles pass saw no shards")
        levels = list(self.percentiles)
        values = np.empty((len(levels), len(iterations)))
        payloads = [state[iteration] for iteration in iterations]
        if all(isinstance(payload, list) for payload in payloads):
            # exact: shard segments re-assembled in serial order give the
            # dense path's per-iteration rows, bit for bit; regular campaigns
            # (equal-size iteration groups) take one vectorized percentile
            # call over the stacked matrix instead of one call per iteration
            rows = [
                np.concatenate(_sorted_segments(payload)) * 1.0e3
                for payload in payloads
            ]
            if len({len(row) for row in rows}) == 1:
                values[:] = percentile_table(np.stack(rows), levels, axis=-1)
            else:
                for col, row_ms in enumerate(rows):
                    values[:, col] = percentile_table(row_ms, levels, axis=-1)
        else:
            for col, payload in enumerate(payloads):
                if isinstance(payload, list):
                    row_ms = np.concatenate(_sorted_segments(payload)) * 1.0e3
                    values[:, col] = percentile_table(row_ms, levels, axis=-1)
                else:
                    values[:, col] = payload.quantile(levels) * 1.0e3
        return PercentileSeries(
            iterations=np.arange(len(iterations)),
            percentiles=tuple(levels),
            values=values,
            unit="ms",
        )


# ----------------------------------------------------------------------
@register_analysis("histogram")
class HistogramPass(AnalysisPass):
    """Application-level arrival histogram (Figure 3; 10 µs bins)."""

    title = "application-level arrival histogram (Figure 3)"

    def __init__(self, bin_width_s: float = 10.0e-6) -> None:
        if bin_width_s <= 0:
            raise ValueError("bin_width_s must be positive")
        self.bin_width_s = float(bin_width_s)

    def prepare(self, context: AnalysisContext) -> StreamingHistogram:
        return StreamingHistogram(self.bin_width_s, unit="s")

    def accumulate(self, state, shard: TimingShard, context: AnalysisContext):
        return state.update(np.asarray(shard.columns["compute_time_s"]))

    def accumulate_columns_split(self, columns, slices, context):
        # one lattice update per shard slice; needs no dense-layout check
        # because the histogram only consumes the flat sample column
        values = np.asarray(columns["compute_time_s"])
        return [
            self.prepare(context).update(values[sl.start : sl.stop])
            for sl in slices
        ]

    def merge(self, state, other):
        return state.merge(other)

    def finalize(self, state, context: AnalysisContext) -> FixedWidthHistogram:
        return state.finalize()


# ----------------------------------------------------------------------
@dataclasses.dataclass
class NormalityResult:
    """Streaming normality-study product (all three §4.1 levels).

    ``application_iteration_pass_counts`` is the §4.1 middle level (how many
    application iterations pass each test — the Section 4.1 table's
    "app-iterations passing D'Agostino" column).  It pools samples *across*
    shards per iteration, which only the exact accumulators can reassemble
    bit-identically; in sketch mode (or when the pass was built with
    ``application_iteration=False``) it is ``None``.
    """

    alpha: float
    application_rejected: bool
    application_pass_rates: Dict[str, float]
    process_iteration_pass_rates: Dict[str, float]
    n_groups: int
    group_size: int
    application_iteration_pass_counts: Optional[Dict[str, int]] = None
    n_iterations: int = 0

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "alpha": self.alpha,
            "application_rejected": self.application_rejected,
            "n_groups": self.n_groups,
            "group_size": self.group_size,
        }
        for name, rate in self.process_iteration_pass_rates.items():
            payload[f"pass_rate_{name}"] = rate
        if self.application_iteration_pass_counts is not None:
            payload["n_iterations"] = self.n_iterations
            for name, count in self.application_iteration_pass_counts.items():
                payload[f"app_iteration_passes_{name}"] = count
        return payload


@register_analysis("normality")
class NormalityPass(AnalysisPass):
    """§4.1 normality battery at the application and process-iteration levels."""

    title = "normality battery (Table 1 pass rates, application-level verdict)"

    def __init__(
        self,
        alpha: float = 0.05,
        *,
        max_application_samples: int = 5000,
        sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
        application_iteration: bool = True,
    ) -> None:
        self.alpha = float(alpha)
        self.max_application_samples = int(max_application_samples)
        self.sketch_capacity = int(sketch_capacity)
        #: exact mode only: also run the battery at the application-iteration
        #: level (pooled across shards per iteration; the §4.1 table's
        #: "iterations passing" counts)
        self.application_iteration = bool(application_iteration)

    def prepare(self, context: AnalysisContext) -> Dict[str, Any]:
        return {
            "segments": [] if context.exact else PercentileSketch(self.sketch_capacity),
            # iteration id -> (sort_key, values) segments; exact mode only
            "iteration_segments": {},
            "pass_counts": {name: 0 for name in TEST_NAMES},
            "n_groups": 0,
            "group_size": 0,
        }

    def accumulate(self, state, shard: TimingShard, context: AnalysisContext):
        battery = NormalityBattery(alpha=self.alpha)
        grouped = aggregate_shard(shard, AggregationLevel.PROCESS_ITERATION)
        report = battery.run(grouped.values)
        for name in TEST_NAMES:
            state["pass_counts"][name] += int(np.sum(report.outcomes[name].passed))
        state["n_groups"] += grouped.n_groups
        state["group_size"] = grouped.group_size
        app_row = aggregate_shard(shard, AggregationLevel.APPLICATION).values[0]
        if context.exact:
            state["segments"].append((shard.sort_key, app_row))
            if self.application_iteration:
                by_iter = aggregate_shard(
                    shard, AggregationLevel.APPLICATION_ITERATION
                )
                for key, row in zip(by_iter.keys, by_iter.values):
                    state["iteration_segments"].setdefault(int(key[0]), []).append(
                        (shard.sort_key, row)
                    )
        else:
            state["segments"].update(app_row)
        return state

    def accumulate_columns_split(self, columns, slices, context):
        block = campaign_block_groups(columns, slices)
        if block is None:
            return super().accumulate_columns_split(columns, slices, context)
        matrix, iterations = block
        n_shards, n_iterations, n_threads = matrix.shape
        # one fused battery over every group of every shard in the block —
        # per-row outcomes are bit-identical to the per-shard battery.run
        battery = NormalityBattery(alpha=self.alpha)
        report = battery.run_fused(matrix.reshape(n_shards * n_iterations, n_threads))
        passed = {name: report.outcomes[name].passed for name in TEST_NAMES}
        values = np.asarray(columns["compute_time_s"], dtype=np.float64)
        iters = [int(i) for i in iterations]
        states = []
        for s, sl in enumerate(slices):
            state = self.prepare(context)
            rows = slice(s * n_iterations, (s + 1) * n_iterations)
            for name in TEST_NAMES:
                state["pass_counts"][name] = int(np.sum(passed[name][rows]))
            state["n_groups"] = n_iterations
            state["group_size"] = n_threads
            # dense-ordered rows: the shard's application-level vector is its
            # raw sample slice, and its per-iteration vectors are matrix rows
            app_row = values[sl.start : sl.stop]
            if context.exact:
                state["segments"].append((sl.sort_key, app_row))
                if self.application_iteration:
                    for i, iteration in enumerate(iters):
                        state["iteration_segments"][iteration] = [
                            (sl.sort_key, matrix[s, i])
                        ]
            else:
                state["segments"].update(app_row)
            states.append(state)
        return states

    def merge(self, state, other):
        if isinstance(state["segments"], list):
            state["segments"].extend(other["segments"])
        else:
            state["segments"] = state["segments"].merge(other["segments"])
        for iteration, payload in other["iteration_segments"].items():
            state["iteration_segments"].setdefault(iteration, []).extend(payload)
        for name in TEST_NAMES:
            state["pass_counts"][name] += other["pass_counts"][name]
        state["n_groups"] += other["n_groups"]
        state["group_size"] = max(state["group_size"], other["group_size"])
        return state

    def _iteration_counts(
        self, battery: NormalityBattery, segments: Dict[int, List]
    ) -> Tuple[Dict[str, int], int]:
        """Battery pass counts at the application-iteration level.

        Each iteration's row is its shard segments re-assembled in serial
        order — the dense path's pooled per-iteration vector, bit for bit —
        so the counts match
        :meth:`NormalityStudy.application_iteration_pass_counts` exactly.
        """
        rows = np.stack(
            [
                np.concatenate(_sorted_segments(segments[iteration]))
                for iteration in sorted(segments)
            ]
        )
        report = battery.run(rows)
        counts = {
            name: int(np.sum(report.outcomes[name].passed)) for name in TEST_NAMES
        }
        return counts, len(rows)

    def finalize(self, state, context: AnalysisContext) -> NormalityResult:
        if state["n_groups"] == 0:
            raise ValueError("normality pass saw no shards")
        battery = NormalityBattery(alpha=self.alpha)
        if isinstance(state["segments"], list):
            app_row = np.concatenate(_sorted_segments(state["segments"]))
        else:
            app_row = state["segments"].support
        subsampled = stratified_subsample(
            app_row[np.newaxis, :], self.max_application_samples
        )
        app_report = battery.run(subsampled)
        rates = {
            name: state["pass_counts"][name] / state["n_groups"] for name in TEST_NAMES
        }
        iteration_counts: Optional[Dict[str, int]] = None
        n_iterations = 0
        if state["iteration_segments"]:
            iteration_counts, n_iterations = self._iteration_counts(
                battery, state["iteration_segments"]
            )
        return NormalityResult(
            alpha=self.alpha,
            application_rejected=app_report.rejected_all(),
            application_pass_rates=app_report.pass_rates(),
            process_iteration_pass_rates=rates,
            n_groups=state["n_groups"],
            group_size=state["group_size"],
            application_iteration_pass_counts=iteration_counts,
            n_iterations=n_iterations,
        )


# ----------------------------------------------------------------------
@dataclasses.dataclass
class LaggardsResult:
    """Streaming laggard-analysis product.

    Scalar fractions are exact in both accumulation modes (they are integer
    tallies); the gap/IQR summary statistics are exact in ``exact`` mode and
    running-moment approximations otherwise.  ``analysis`` carries the full
    per-group :class:`~repro.core.laggard.LaggardAnalysis` in exact mode
    (``None`` in bounded mode, which keeps memory independent of campaign
    size).  In bounded mode, ``candidates`` carries one
    :class:`~repro.stats.sketch.BoundedTopK` pool of ``(gap, key)``
    exemplar candidates per iteration class, so :meth:`exemplar` — the
    selection behind Figures 5/7/9 — still answers with bounded memory.
    """

    n_groups: int
    laggard_count: int
    class_counts: Dict[str, int]
    threshold_s: float
    wide_iqr_s: float
    mean_gap_s: float
    max_gap_s: float
    mean_iqr_s: float
    max_iqr_s: float
    mean_median_s: float
    analysis: Optional[LaggardAnalysis] = None
    candidates: Optional[Dict[str, "BoundedTopK"]] = None

    @property
    def laggard_fraction(self) -> float:
        return self.laggard_count / self.n_groups if self.n_groups else 0.0

    def exemplar(self, iteration_class: IterationClass) -> Optional[Tuple[int, ...]]:
        """Key of the most typical group of a class (median gap within class).

        Exact mode delegates to the per-group analysis (bit-identical to the
        dense path); bounded mode answers from the class's candidate pool —
        the retained candidate whose gap is closest to the pool's median, at
        most one quantile spacing away from the exact choice.
        """
        if self.analysis is not None:
            return self.analysis.exemplar(iteration_class)
        if not self.candidates:
            return None
        pool = self.candidates.get(iteration_class.value)
        if pool is None or len(pool) == 0:
            return None
        return pool.nearest(float(pool.quantile(50.0)))

    def class_fraction(self, iteration_class: IterationClass) -> float:
        if not self.n_groups:
            return 0.0
        return self.class_counts.get(iteration_class.value, 0) / self.n_groups

    @property
    def class_fractions(self) -> Dict[str, float]:
        return {cls.value: self.class_fraction(cls) for cls in IterationClass}

    def as_dict(self) -> Dict[str, float]:
        payload = {
            "laggard_fraction": self.laggard_fraction,
            "mean_gap_ms": self.mean_gap_s * 1e3,
            "max_gap_ms": self.max_gap_s * 1e3,
            "mean_iqr_ms": self.mean_iqr_s * 1e3,
            "max_iqr_ms": self.max_iqr_s * 1e3,
            "mean_median_ms": self.mean_median_s * 1e3,
            "threshold_ms": self.threshold_s * 1e3,
            "n_groups": float(self.n_groups),
        }
        payload.update(
            {f"class_{name}": value for name, value in self.class_fractions.items()}
        )
        return payload


@register_analysis("laggards")
class LaggardsPass(AnalysisPass):
    """§4.2 laggard detection and iteration classification."""

    title = "laggard fractions and iteration classes (§4.2, Figures 5/7)"

    #: bounded-mode exemplar candidates retained per iteration class
    DEFAULT_CANDIDATE_CAPACITY = 256

    def __init__(
        self,
        threshold_s: float = DEFAULT_LAGGARD_THRESHOLD_S,
        wide_iqr_s: float = DEFAULT_WIDE_IQR_S,
        *,
        candidate_capacity: int = DEFAULT_CANDIDATE_CAPACITY,
    ) -> None:
        if threshold_s <= 0:
            raise ValueError("threshold_s must be positive")
        self.threshold_s = float(threshold_s)
        self.wide_iqr_s = float(wide_iqr_s)
        self.candidate_capacity = int(candidate_capacity)

    def prepare(self, context: AnalysisContext) -> Dict[str, Any]:
        return {
            "segments": [],  # exact mode only
            "n_groups": 0,
            "laggard_count": 0,
            "class_counts": {cls.value: 0 for cls in IterationClass},
            "gap": StreamingMoments(),
            "iqr": StreamingMoments(),
            "median": StreamingMoments(),
            # bounded mode only: per-class (gap, key) exemplar candidates
            "candidates": {
                cls.value: BoundedTopK(self.candidate_capacity)
                for cls in IterationClass
            },
        }

    def accumulate(self, state, shard: TimingShard, context: AnalysisContext):
        grouped = aggregate_shard(shard, AggregationLevel.PROCESS_ITERATION)
        median, maximum, gap, iqr, has_laggard, classes = group_laggard_metrics(
            grouped.values, threshold_s=self.threshold_s, wide_iqr_s=self.wide_iqr_s
        )
        state["n_groups"] += grouped.n_groups
        state["laggard_count"] += int(np.sum(has_laggard))
        for cls in classes:
            state["class_counts"][cls.value] += 1
        if context.exact:
            members = list(IterationClass)
            codes = np.array([members.index(cls) for cls in classes], dtype=np.int8)
            state["segments"].append(
                (
                    shard.sort_key,
                    (grouped.keys, median, maximum, gap, iqr, has_laggard, codes),
                )
            )
        else:
            # bounded mode: running moments instead of per-group segments,
            # plus a bounded pool of exemplar candidates per class so the
            # figure generators can still pick representative groups
            state["gap"].update(gap)
            state["iqr"].update(iqr)
            state["median"].update(median)
            keys = [tuple(int(part) for part in key) for key in grouped.keys]
            for cls in IterationClass:
                mask = [c is cls for c in classes]
                if any(mask):
                    state["candidates"][cls.value].update(
                        gap[mask], [k for k, m in zip(keys, mask) if m]
                    )
        return state

    def accumulate_columns_split(self, columns, slices, context):
        block = campaign_block_groups(columns, slices)
        if block is None:
            return super().accumulate_columns_split(columns, slices, context)
        matrix, iterations = block
        n_shards, n_iterations, n_threads = matrix.shape
        flat = matrix.reshape(n_shards * n_iterations, n_threads)
        # the same per-group operations group_laggard_metrics applies, over
        # the whole block at once (codes instead of a per-group enum list)
        median = np.median(flat, axis=-1)
        maximum = np.max(flat, axis=-1)
        gap = maximum - median
        q75, q25 = np.percentile(flat, [75.0, 25.0], axis=-1)
        iqr = q75 - q25
        has_laggard = gap > self.threshold_s
        codes = group_laggard_codes(iqr, has_laggard, wide_iqr_s=self.wide_iqr_s)
        iters = [int(i) for i in iterations]
        states = []
        for s, sl in enumerate(slices):
            state = self.prepare(context)
            rows = slice(s * n_iterations, (s + 1) * n_iterations)
            counts = np.bincount(codes[rows], minlength=len(IterationClass))
            for k, cls in enumerate(IterationClass):
                state["class_counts"][cls.value] = int(counts[k])
            state["n_groups"] = n_iterations
            state["laggard_count"] = int(np.sum(has_laggard[rows]))
            keys = [(sl.trial, sl.process, it) for it in iters]
            if context.exact:
                state["segments"].append(
                    (
                        sl.sort_key,
                        (
                            keys,
                            median[rows],
                            maximum[rows],
                            gap[rows],
                            iqr[rows],
                            has_laggard[rows],
                            codes[rows],
                        ),
                    )
                )
            else:
                state["gap"].update(gap[rows])
                state["iqr"].update(iqr[rows])
                state["median"].update(median[rows])
                for k, cls in enumerate(IterationClass):
                    mask = codes[rows] == k
                    if mask.any():
                        state["candidates"][cls.value].update(
                            gap[rows][mask],
                            [key for key, m in zip(keys, mask) if m],
                        )
            states.append(state)
        return states

    def merge(self, state, other):
        state["segments"].extend(other["segments"])
        state["n_groups"] += other["n_groups"]
        state["laggard_count"] += other["laggard_count"]
        for name, count in other["class_counts"].items():
            state["class_counts"][name] += count
        for key in ("gap", "iqr", "median"):
            state[key] = state[key].merge(other[key])
        for name, pool in other["candidates"].items():
            state["candidates"][name] = state["candidates"][name].merge(pool)
        return state

    def finalize(self, state, context: AnalysisContext) -> LaggardsResult:
        if state["n_groups"] == 0:
            raise ValueError("laggards pass saw no shards")
        analysis: Optional[LaggardAnalysis] = None
        if state["segments"]:
            parts = _sorted_segments(state["segments"])
            keys: List[Tuple[int, ...]] = []
            for part in parts:
                keys.extend(part[0])
            members = list(IterationClass)
            analysis = LaggardAnalysis(
                keys=keys,
                median_s=np.concatenate([p[1] for p in parts]),
                max_s=np.concatenate([p[2] for p in parts]),
                gap_s=np.concatenate([p[3] for p in parts]),
                iqr_s=np.concatenate([p[4] for p in parts]),
                has_laggard=np.concatenate([p[5] for p in parts]),
                classes=[members[c] for p in parts for c in p[6]],
                threshold_s=self.threshold_s,
                wide_iqr_s=self.wide_iqr_s,
            )
        if analysis is not None:
            # exact summary statistics from the re-assembled dense arrays
            mean_gap = float(np.mean(analysis.gap_s))
            max_gap = float(np.max(analysis.gap_s))
            mean_iqr = float(np.mean(analysis.iqr_s))
            max_iqr = float(np.max(analysis.iqr_s))
            mean_median = float(np.mean(analysis.median_s))
        else:
            mean_gap, max_gap = state["gap"].mean, state["gap"].maximum
            mean_iqr, max_iqr = state["iqr"].mean, state["iqr"].maximum
            mean_median = state["median"].mean
        return LaggardsResult(
            n_groups=state["n_groups"],
            laggard_count=state["laggard_count"],
            class_counts=dict(state["class_counts"]),
            threshold_s=self.threshold_s,
            wide_iqr_s=self.wide_iqr_s,
            mean_gap_s=mean_gap,
            max_gap_s=max_gap,
            mean_iqr_s=mean_iqr,
            max_iqr_s=max_iqr,
            mean_median_s=mean_median,
            analysis=analysis,
            candidates=None if analysis is not None else dict(state["candidates"]),
        )


# ----------------------------------------------------------------------
@register_analysis("reclaimable")
class ReclaimablePass(AnalysisPass):
    """§4.2 reclaimable time and idle-ratio summary."""

    title = "reclaimable time and idle ratio (§4.2)"

    def __init__(self, *, sketch_capacity: int = DEFAULT_SKETCH_CAPACITY) -> None:
        self.sketch_capacity = int(sketch_capacity)

    def prepare(self, context: AnalysisContext) -> Dict[str, Any]:
        return {
            "segments": [],  # exact mode only
            "reclaim": StreamingMoments(),
            "ratio": StreamingMoments(),
            "median_sketch": PercentileSketch(self.sketch_capacity),
            "n_threads": 0,
        }

    def accumulate(self, state, shard: TimingShard, context: AnalysisContext):
        grouped = aggregate_shard(shard, AggregationLevel.PROCESS_ITERATION)
        reclaim = reclaimable_time(grouped.values)
        ratios = idle_ratio(grouped.values)
        state["n_threads"] = grouped.group_size
        if context.exact:
            state["segments"].append((shard.sort_key, (reclaim, ratios)))
        else:
            # bounded mode: running moments and a median sketch instead of
            # per-group segments
            state["reclaim"].update(reclaim)
            state["ratio"].update(ratios)
            state["median_sketch"].update(reclaim)
        return state

    def accumulate_columns_split(self, columns, slices, context):
        block = campaign_block_groups(columns, slices)
        if block is None:
            return super().accumulate_columns_split(columns, slices, context)
        matrix, _ = block
        n_shards, n_iterations, n_threads = matrix.shape
        flat = matrix.reshape(n_shards * n_iterations, n_threads)
        # both metrics reduce along the thread axis only, so the block-level
        # call gives every shard's per-group values bit for bit
        reclaim = reclaimable_time(flat)
        ratios = idle_ratio(flat)
        states = []
        for s, sl in enumerate(slices):
            state = self.prepare(context)
            rows = slice(s * n_iterations, (s + 1) * n_iterations)
            state["n_threads"] = n_threads
            if context.exact:
                state["segments"].append((sl.sort_key, (reclaim[rows], ratios[rows])))
            else:
                state["reclaim"].update(reclaim[rows])
                state["ratio"].update(ratios[rows])
                state["median_sketch"].update(reclaim[rows])
            states.append(state)
        return states

    def merge(self, state, other):
        state["segments"].extend(other["segments"])
        state["reclaim"] = state["reclaim"].merge(other["reclaim"])
        state["ratio"] = state["ratio"].merge(other["ratio"])
        state["median_sketch"] = state["median_sketch"].merge(other["median_sketch"])
        state["n_threads"] = max(state["n_threads"], other["n_threads"])
        return state

    def finalize(self, state, context: AnalysisContext) -> ReclaimableSummary:
        if not state["segments"] and state["reclaim"].count == 0:
            raise ValueError("reclaimable pass saw no shards")
        n_threads = state["n_threads"]
        if state["segments"]:
            parts = _sorted_segments(state["segments"])
            reclaim = np.concatenate([p[0] for p in parts])
            ratios = np.concatenate([p[1] for p in parts])
            return ReclaimableSummary(
                mean_reclaimable_s=float(np.mean(reclaim)),
                median_reclaimable_s=float(np.median(reclaim)),
                max_reclaimable_s=float(np.max(reclaim)),
                mean_idle_ratio=float(np.mean(ratios)),
                mean_per_thread_idle_s=float(np.mean(reclaim) / n_threads),
                n_groups=len(reclaim),
                n_threads=n_threads,
            )
        return ReclaimableSummary(
            mean_reclaimable_s=state["reclaim"].mean,
            median_reclaimable_s=float(state["median_sketch"].quantile(50.0)),
            max_reclaimable_s=state["reclaim"].maximum,
            mean_idle_ratio=state["ratio"].mean,
            mean_per_thread_idle_s=state["reclaim"].mean / n_threads,
            n_groups=state["reclaim"].count,
            n_threads=n_threads,
        )


# ----------------------------------------------------------------------
@register_analysis("earlybird")
class EarlybirdPass(AnalysisPass):
    """Early-bird gain quantification over the deterministic strided subset.

    Reproduces :meth:`ThreadTimingAnalyzer.earlybird` exactly: the global
    group index of each shard group (via the context) determines whether it
    lies on the evaluation stride, so the evaluated subset — and therefore
    every mean — is identical to the in-memory path regardless of sharding.
    Memory is bounded by ``max_groups`` in both accumulation modes.
    """

    title = "mean early-bird delivery gains (Figures 1/2 quantified)"

    def __init__(
        self,
        model: Optional[EarlyBirdModel] = None,
        *,
        max_groups: int = DEFAULT_EARLYBIRD_MAX_GROUPS,
    ) -> None:
        if max_groups < 1:
            raise ValueError("max_groups must be >= 1")
        self.model = model if model is not None else EarlyBirdModel()
        self.max_groups = int(max_groups)

    def prepare(self, context: AnalysisContext) -> Dict[int, Tuple[float, ...]]:
        return {}

    def _stride(self, context: AnalysisContext) -> int:
        return max(context.n_groups // self.max_groups, 1)

    def accumulate(self, state, shard: TimingShard, context: AnalysisContext):
        grouped = aggregate_shard(shard, AggregationLevel.PROCESS_ITERATION)
        indices = context.group_indices(grouped.keys)
        stride = self._stride(context)
        selected = np.flatnonzero(indices % stride == 0)
        if len(selected):
            results = self.model.evaluate_groups(grouped.values[selected])
            state.update(self._result_rows(indices[selected], results))
        return state

    @staticmethod
    def _result_rows(indices: np.ndarray, results: Dict[str, np.ndarray]):
        """Pairs of (global group index, metrics 4-tuple) from batch results."""
        rows = np.column_stack(
            [
                results["improvement_s"],
                results["speedup"],
                results["hidden_s"],
                results["potential_overlap_s"],
            ]
        ).tolist()
        return zip((int(g) for g in indices.tolist()), (tuple(r) for r in rows))

    def accumulate_columns_split(self, columns, slices, context):
        block = campaign_block_groups(columns, slices)
        if block is None:
            return super().accumulate_columns_split(columns, slices, context)
        matrix, iterations = block
        n_shards, n_iterations, n_threads = matrix.shape
        iters = [int(i) for i in iterations]
        keys = [(sl.trial, sl.process, it) for sl in slices for it in iters]
        indices = context.group_indices(keys)
        stride = self._stride(context)
        selected = np.flatnonzero(indices % stride == 0)
        states = [self.prepare(context) for _ in slices]
        if len(selected):
            flat = matrix.reshape(n_shards * n_iterations, n_threads)
            results = self.model.evaluate_groups(flat[selected])
            shard_of = (selected // n_iterations).tolist()
            for s, (idx, row) in zip(
                shard_of, self._result_rows(indices[selected], results)
            ):
                states[s][idx] = row
        return states

    def merge(self, state, other):
        state.update(other)
        return state

    def finalize(self, state, context: AnalysisContext) -> Dict[str, float]:
        if not state:
            raise ValueError("earlybird pass saw no shards")
        rows = np.array([state[idx] for idx in sorted(state)])
        return {
            "mean_improvement_s": float(np.mean(rows[:, 0])),
            "mean_speedup": float(np.mean(rows[:, 1])),
            "mean_hidden_s": float(np.mean(rows[:, 2])),
            "mean_potential_overlap_s": float(np.mean(rows[:, 3])),
            "groups_evaluated": float(len(rows)),
            "buffer_bytes": float(self.model.buffer_bytes),
        }
