"""Assemble a :class:`~repro.core.report.FeasibilityReport` from pass outputs.

The report used to be built inside :class:`~repro.core.analyzer.ThreadTimingAnalyzer`
from in-memory components; with the streaming engine the same report is
assembled from the finalized products of the ``percentiles``, ``laggards``,
``reclaimable``, ``normality`` and (optionally) ``earlybird`` passes — the
analyzer facade and :meth:`CampaignSession.analyze(analyses=...)` both end
up here, which is what makes the two paths field-for-field identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.analysis.base import AnalysisContext
from repro.core.laggard import IterationClass
from repro.core.report import FeasibilityReport

if TYPE_CHECKING:  # pragma: no cover - static typing only
    pass

#: passes the feasibility report is assembled from (earlybird is optional)
REPORT_ANALYSES = ("percentiles", "laggards", "reclaimable", "normality")


def assemble_feasibility_report(
    products: Mapping[str, object],
    context: AnalysisContext,
    *,
    include_earlybird: bool = True,
) -> FeasibilityReport:
    """Build the per-application feasibility report from pass products.

    ``products`` must contain the :data:`REPORT_ANALYSES` outputs; the
    early-bird block is filled when ``include_earlybird`` and an
    ``earlybird`` product is present, and zeroed otherwise (matching the
    legacy ``report(include_earlybird=False)`` behaviour).
    """
    missing = [name for name in REPORT_ANALYSES if name not in products]
    if missing:
        raise ValueError(
            f"feasibility report needs the {missing} analyses; run them "
            f"alongside the others (got {sorted(products)})"
        )
    series = products["percentiles"]
    laggards = products["laggards"]
    reclaimable = products["reclaimable"]
    normality = products["normality"]
    iqr_stats = series.iqr_summary()
    earlybird = products.get("earlybird") if include_earlybird else None
    return FeasibilityReport(
        application=context.application,
        n_samples=context.n_samples,
        n_trials=context.n_trials,
        n_processes=context.n_processes,
        n_iterations=context.n_iterations,
        n_threads=context.n_threads,
        mean_median_arrival_ms=series.mean_median(),
        mean_iqr_ms=iqr_stats["mean"],
        max_iqr_ms=iqr_stats["max"],
        skew_direction=series.skew_direction(),
        laggard_fraction=laggards.laggard_fraction,
        laggard_threshold_ms=laggards.threshold_s * 1e3,
        class_fractions={
            cls.value: laggards.class_fraction(cls) for cls in IterationClass
        },
        mean_reclaimable_ms=reclaimable.mean_reclaimable_s * 1e3,
        mean_idle_ratio=reclaimable.mean_idle_ratio,
        application_level_rejected=normality.application_rejected,
        process_iteration_pass_rates=dict(normality.process_iteration_pass_rates),
        earlybird_mean_improvement_us=(
            earlybird["mean_improvement_s"] * 1e6 if earlybird else 0.0
        ),
        earlybird_mean_speedup=(
            earlybird["mean_speedup"] if earlybird else 1.0
        ),
        earlybird_buffer_bytes=(
            int(earlybird["buffer_bytes"]) if earlybird else 0
        ),
        extras={"metadata": dict(context.metadata)},
    )
