"""Streaming analysis engine: pluggable, shard-mergeable analysis passes.

The §4 analyses used to require the entire merged
:class:`~repro.core.timing.TimingDataset` in memory.  This subpackage
refactors them into a registry of :class:`AnalysisPass` objects following a
``prepare → accumulate(shard) → merge → finalize`` lifecycle, so a
campaign's :class:`~repro.core.timing.TimingShard` stream — serial or
parallel — is analysed in one pass without materialising the merged
dataset (and, in sketch mode, with accumulator memory independent of the
shard count):

>>> from repro.experiments import CampaignConfig, CampaignSession
>>> session = CampaignSession(CampaignConfig.smoke())
>>> results = session.analyze(analyses=["percentiles", "laggards",
...                                     "reclaimable", "normality"])
>>> results.report(include_earlybird=False)

Built-in passes (``available_analyses()``): ``percentiles``, ``histogram``,
``normality``, ``laggards``, ``reclaimable``, ``earlybird``.  Custom passes
subclass :class:`AnalysisPass` and register with :func:`register_analysis`
— the third registry of the campaign layer, after execution backends and
scenarios.

In ``exact`` mode (default) every pass is bit-identical to the legacy
in-memory :class:`~repro.core.analyzer.ThreadTimingAnalyzer`; with
``exact=False`` the passes switch to bounded sketches whose memory is
independent of the shard count (documented tolerance on sketched
percentiles).
"""

from repro.analysis.base import (
    AnalysisContext,
    AnalysisPass,
    analysis_title,
    available_analyses,
    get_analysis,
    register_analysis,
    resolve_analyses,
    unregister_analysis,
)
from repro.analysis.engine import (
    AnalysisResults,
    ColumnarAnalyzer,
    ShardAnalyzer,
    product_payload,
    run_analyses,
    run_campaign_analyses,
    run_columnar_analyses,
)
from repro.analysis.passes import (
    DEFAULT_EARLYBIRD_MAX_GROUPS,
    DEFAULT_SKETCH_CAPACITY,
    EarlybirdPass,
    HistogramPass,
    LaggardsPass,
    LaggardsResult,
    NormalityPass,
    NormalityResult,
    PercentilesPass,
    ReclaimablePass,
)
from repro.analysis.report import REPORT_ANALYSES, assemble_feasibility_report

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisResults",
    "ColumnarAnalyzer",
    "ShardAnalyzer",
    "analysis_title",
    "available_analyses",
    "get_analysis",
    "register_analysis",
    "resolve_analyses",
    "unregister_analysis",
    "product_payload",
    "run_analyses",
    "run_campaign_analyses",
    "run_columnar_analyses",
    "assemble_feasibility_report",
    "REPORT_ANALYSES",
    "DEFAULT_SKETCH_CAPACITY",
    "DEFAULT_EARLYBIRD_MAX_GROUPS",
    "PercentilesPass",
    "HistogramPass",
    "NormalityPass",
    "NormalityResult",
    "LaggardsPass",
    "LaggardsResult",
    "ReclaimablePass",
    "EarlybirdPass",
]
