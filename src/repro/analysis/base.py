"""The analysis-pass protocol, context and registry.

An :class:`AnalysisPass` is a shard-mergeable analysis: instead of requiring
the whole merged :class:`~repro.core.timing.TimingDataset` in memory, it
follows the map-reduce-style lifecycle

``prepare → accumulate(shard) → merge → finalize``

* :meth:`AnalysisPass.prepare` creates an empty accumulator *state* for one
  campaign (a plain picklable object — states travel between executor
  workers).
* :meth:`AnalysisPass.accumulate` folds one
  :class:`~repro.core.timing.TimingShard` into a state.
* :meth:`AnalysisPass.merge` combines two states (any grouping of shards,
  any order — the built-in passes are written so the finalised product does
  not depend on how the shards were batched).
* :meth:`AnalysisPass.finalize` turns the merged state into the pass's
  product (a :class:`~repro.stats.percentiles.PercentileSeries`, a
  histogram, a laggard summary, ...).

Passes register by name with :func:`register_analysis` — the third registry
of the campaign layer, next to the execution backends and the scenario
catalog — and the engine (:mod:`repro.analysis.engine`), the campaign
session and the CLI resolve them with :func:`get_analysis` /
:func:`available_analyses`.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

import numpy as np

from repro.core.aggregation import ShardSlice, release_shard_groups
from repro.core.timing import TimingDataset, TimingShard

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.experiments.config import CampaignConfig


@dataclasses.dataclass(frozen=True)
class AnalysisContext:
    """Campaign-level facts every pass may rely on while streaming.

    Shards carry only their own rows; the context supplies the global frame
    (the full trial/process/iteration index sets, thread count, application
    label and dataset metadata) so passes can place per-shard partials —
    e.g. the early-bird pass needs each group's *global* index to reproduce
    the deterministic strided subset of the in-memory path.

    ``exact`` selects the bit-identical accumulation mode: passes keep exact
    per-group (never per-sample-merged) vectors and produce results
    bit-identical to the legacy in-memory analyzer.  With ``exact=False``
    the passes switch to bounded-memory accumulators (sketches and running
    tallies) whose outputs agree within documented tolerances.
    """

    application: str = "unknown"
    trials: Tuple[int, ...] = ()
    processes: Tuple[int, ...] = ()
    iterations: Tuple[int, ...] = ()
    n_threads: int = 0
    exact: bool = True
    metadata: Mapping[str, object] = dataclasses.field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def n_processes(self) -> int:
        return len(self.processes)

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    @property
    def n_groups(self) -> int:
        """Process-iteration group count (the Table-1 granularity)."""
        return self.n_trials * self.n_processes * self.n_iterations

    @property
    def n_samples(self) -> int:
        return self.n_groups * self.n_threads

    # ------------------------------------------------------------------
    @classmethod
    def from_config(
        cls,
        config: "CampaignConfig",
        *,
        exact: bool = True,
        metadata: Optional[Mapping[str, object]] = None,
    ) -> "AnalysisContext":
        """Context of a campaign described by its configuration."""
        return cls(
            application=config.application,
            trials=tuple(range(config.trials)),
            processes=tuple(range(config.processes)),
            iterations=tuple(range(config.iterations)),
            n_threads=config.threads,
            exact=exact,
            metadata=dict(metadata or {}),
        )

    @classmethod
    def from_dataset(
        cls, dataset: TimingDataset, *, exact: bool = True
    ) -> "AnalysisContext":
        """Context of an already-materialised dataset (facade path)."""
        return cls(
            application=dataset.application,
            trials=tuple(int(t) for t in dataset.trials),
            processes=tuple(int(p) for p in dataset.processes),
            iterations=tuple(int(i) for i in dataset.iterations),
            n_threads=dataset.n_threads,
            exact=exact,
            metadata=dict(dataset.metadata),
        )

    # ------------------------------------------------------------------
    def group_indices(self, keys: Sequence[Tuple[int, int, int]]) -> np.ndarray:
        """Global process-iteration group index of each (trial, process,
        iteration) key, matching the dense aggregation's row order."""
        if len(keys) == 0:
            return np.empty(0, dtype=np.int64)
        arr = np.asarray(keys, dtype=np.int64)
        t = np.searchsorted(np.asarray(self.trials), arr[:, 0])
        p = np.searchsorted(np.asarray(self.processes), arr[:, 1])
        i = np.searchsorted(np.asarray(self.iterations), arr[:, 2])
        return (t * self.n_processes + p) * self.n_iterations + i


class AnalysisPass(ABC):
    """One shard-mergeable analysis (see the module docstring).

    Subclasses hold only their *parameters* (thresholds, bin widths, ...) —
    all accumulation state lives in the objects returned by
    :meth:`prepare` — so one pass instance can be shared across campaigns
    and pickled to executor workers.
    """

    #: registered pass name (set by :func:`register_analysis`)
    name: str = "abstract"
    #: one-line description shown by ``--list-analyses``
    title: str = ""

    # ------------------------------------------------------------------
    def prepare(self, context: AnalysisContext) -> Any:
        """A fresh, empty accumulator state for one campaign."""
        return {}

    @abstractmethod
    def accumulate(self, state: Any, shard: TimingShard, context: AnalysisContext) -> Any:
        """Fold one shard into ``state`` (may mutate and return it)."""

    @abstractmethod
    def merge(self, state: Any, other: Any) -> Any:
        """Combine two accumulator states."""

    @abstractmethod
    def finalize(self, state: Any, context: AnalysisContext) -> Any:
        """Turn the merged state into the pass's product."""

    # ------------------------------------------------------------------
    # columnar fast path
    # ------------------------------------------------------------------
    def accumulate_columns_split(
        self,
        columns: Mapping[str, np.ndarray],
        slices: Sequence[ShardSlice],
        context: AnalysisContext,
    ) -> list:
        """Per-shard partial states from one multi-shard column block.

        A *column block* is the flat timing columns of several shards
        concatenated in serial shard order, addressed by one
        :class:`~repro.core.aggregation.ShardSlice` per shard.  The
        contract: element ``k`` of the returned list must equal the state
        ``accumulate(prepare(context), shard_k, context)`` would produce
        for the corresponding shard — the engine reduces columnar partials
        with the same merge fold as the shard-streaming path, which is
        what keeps the two paths bit-identical (exact mode) /
        identical-state (sketch mode) for any chunking.

        This generic fallback slices the block into shards and replays the
        per-shard protocol; the built-in passes override it with a single
        vectorised group-by over the whole block.
        """
        states = []
        for sl in slices:
            shard = TimingShard(
                trial=sl.trial,
                process=sl.process,
                columns={
                    name: arr[sl.start : sl.stop] for name, arr in columns.items()
                },
            )
            try:
                states.append(self.accumulate(self.prepare(context), shard, context))
            finally:
                release_shard_groups(shard)
        return states

    def accumulate_columns(
        self,
        state: Any,
        columns: Mapping[str, np.ndarray],
        slices: Sequence[ShardSlice],
        context: AnalysisContext,
    ) -> Any:
        """Fold a whole column block into ``state``.

        Merge-of-splits convenience over
        :meth:`accumulate_columns_split`; drivers that must preserve
        per-shard partial granularity (the engine's reducers) call the
        split form directly.
        """
        for partial in self.accumulate_columns_split(columns, slices, context):
            state = self.merge(state, partial)
        return state

    # ------------------------------------------------------------------
    def run(
        self, shards: Iterable[TimingShard], context: AnalysisContext
    ) -> Any:
        """Convenience serial driver: fold all shards, finalize."""
        state = self.prepare(context)
        for shard in shards:
            state = self.accumulate(state, shard, context)
        return self.finalize(state, context)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_ANALYSES: Dict[str, Type[AnalysisPass]] = {}


def register_analysis(name=None, *, replace: bool = False):
    """Class decorator registering an :class:`AnalysisPass` by name.

    Usable bare (``@register_analysis`` — uses the class's ``name``) or with
    an explicit name (``@register_analysis("percentiles")``).  Registering a
    name twice raises unless ``replace=True`` (or the class is identical,
    which makes module re-imports idempotent).
    """

    def decorator(cls: Type[AnalysisPass]) -> Type[AnalysisPass]:
        if not (isinstance(cls, type) and issubclass(cls, AnalysisPass)):
            raise TypeError("register_analysis expects an AnalysisPass subclass")
        key = (name if isinstance(name, str) else cls.name).strip().lower()
        if not key or key == "abstract":
            raise ValueError("analysis pass needs a concrete registration name")
        existing = _ANALYSES.get(key)
        if existing is not None and existing is not cls and not replace:
            raise ValueError(
                f"analysis {key!r} is already registered ({existing.__name__}); "
                "pass replace=True to override"
            )
        cls.name = key
        _ANALYSES[key] = cls
        return cls

    if isinstance(name, type):  # bare @register_analysis
        cls, name = name, None
        return decorator(cls)
    return decorator


def available_analyses() -> Tuple[str, ...]:
    """Names of all registered analysis passes, sorted."""
    return tuple(sorted(_ANALYSES))


def get_analysis(name: str) -> AnalysisPass:
    """Instantiate the pass registered under ``name`` (default parameters)."""
    key = str(name).strip().lower()
    try:
        cls = _ANALYSES[key]
    except KeyError:
        raise ValueError(
            f"unknown analysis {name!r}; registered analyses: "
            f"{', '.join(available_analyses()) or '(none)'}"
        ) from None
    return cls()


def analysis_title(name: str) -> str:
    """The one-line description of a registered pass."""
    key = str(name).strip().lower()
    cls = _ANALYSES.get(key)
    return cls.title if cls is not None else ""


def unregister_analysis(name: str) -> None:
    """Remove a pass from the registry (primarily for tests)."""
    _ANALYSES.pop(str(name).strip().lower(), None)


def resolve_analyses(
    analyses: Union[None, str, AnalysisPass, Iterable[Union[str, AnalysisPass]]],
) -> Tuple[AnalysisPass, ...]:
    """Normalise an ``analyses=`` argument into pass instances.

    ``None`` or ``"all"`` resolves to every registered pass; otherwise a
    name, a pass instance, or any mix of the two in an iterable.
    """
    if analyses is None or analyses == "all":
        return tuple(get_analysis(name) for name in available_analyses())
    if isinstance(analyses, (str, AnalysisPass)):
        analyses = [analyses]
    resolved = []
    for item in analyses:
        resolved.append(item if isinstance(item, AnalysisPass) else get_analysis(item))
    names = [p.name for p in resolved]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate analyses requested: {names}")
    return tuple(resolved)
