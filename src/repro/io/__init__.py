"""Dataset persistence (NumPy ``.npz`` + JSON metadata, CSV export)."""

from repro.io.dataset_io import (
    dataset_to_csv,
    load_dataset,
    save_dataset,
)
from repro.io.schema import DATASET_FORMAT_VERSION, validate_columns

__all__ = [
    "save_dataset",
    "load_dataset",
    "dataset_to_csv",
    "DATASET_FORMAT_VERSION",
    "validate_columns",
]
