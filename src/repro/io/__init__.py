"""Dataset and shard persistence (NumPy ``.npz`` + JSON metadata, CSV export)."""

from repro.io.dataset_io import (
    dataset_to_csv,
    load_dataset,
    load_shards,
    save_dataset,
    save_shards,
)
from repro.io.schema import DATASET_FORMAT_VERSION, validate_columns

__all__ = [
    "save_dataset",
    "load_dataset",
    "save_shards",
    "load_shards",
    "dataset_to_csv",
    "DATASET_FORMAT_VERSION",
    "validate_columns",
]
