"""Dataset and shard persistence.

NumPy ``.npz`` + JSON metadata round-trips (:mod:`repro.io.dataset_io`,
always written atomically), CSV export, the spillable memory-mapped
:class:`~repro.io.shard_store.ShardStore` for out-of-core campaigns, and
the size-bounded LRU :class:`~repro.io.cache_tier.CacheTier` managing the
shared cache directory.
"""

from repro.io.cache_tier import CacheTier
from repro.io.dataset_io import (
    dataset_to_csv,
    load_dataset,
    load_shards,
    save_dataset,
    save_shards,
    try_load_dataset,
)
from repro.io.schema import DATASET_FORMAT_VERSION, validate_columns
from repro.io.shard_store import (
    DEFAULT_SPILL_THRESHOLD_BYTES,
    ShardStore,
    publish_store,
)

__all__ = [
    "save_dataset",
    "load_dataset",
    "try_load_dataset",
    "save_shards",
    "load_shards",
    "dataset_to_csv",
    "DATASET_FORMAT_VERSION",
    "validate_columns",
    "ShardStore",
    "publish_store",
    "DEFAULT_SPILL_THRESHOLD_BYTES",
    "CacheTier",
]
