"""The spillable, memory-mapped campaign shard store.

:class:`ShardStore` is the out-of-core backbone of the campaign layer: a
columnar on-disk format that lets a campaign far larger than RAM stream
through execution, analysis passes and the figure generators with only a
bounded working set resident.

Layout — one *directory* per store::

    campaign.store/
        manifest.json        # format version, metadata, group index
        group-00000.bin      # raw little-endian column blobs of group 0
        group-00001.bin      # ...

``append(shard)`` buffers shards in memory until their column bytes exceed
:attr:`~ShardStore.spill_threshold_bytes`, then flushes them as one *group
file*: per column, the group's shard arrays concatenated into a single raw
blob (16-byte magic header, then column blobs back to back).  The manifest
records every group's shard addresses (``trial``/``process``/sample count)
and per-column ``dtype``/``offset``, so reading needs no file parsing at
all — ``iter_shards()`` opens one ``np.memmap`` per column per group and
slices **zero-copy views** out of it, one :class:`~repro.core.timing.TimingShard`
at a time.  Because the views chain back to the group's mappings, advancing
the iterator releases each group's pages as soon as its last shard is
dropped: a full-store scan keeps roughly one group resident, which is what
bounds the peak RSS of an out-of-core campaign.

Durability and sharing:

* group files and the manifest are written to a sibling ``*.tmp-<pid>`` and
  published with :func:`os.replace`, so a crashed writer can never leave a
  half-written group visible — readers only ever see a consistent manifest;
* ``iter_shards()`` on a read-only store re-reads the manifest per call
  (snapshot semantics: iteration sees every group flushed before the call
  and is unaffected by concurrent ``append``/``flush``);
* round-trips are **bit-identical**: columns are stored as raw bytes of the
  arrays that were appended, so a stored-and-reloaded campaign merges into
  the same dataset — and the same digest — as the in-memory run (pinned in
  the test suite).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.timing import TimingDataset, TimingShard
from repro.io.schema import validate_columns

PathLike = Union[str, Path]

#: on-disk format version of the store directory (manifest + group files)
STORE_FORMAT_VERSION = 1

#: group files start with this magic; column offsets account for it
GROUP_MAGIC = b"REPRO-SHARD-GRP1"

#: default in-memory buffer bound before shards spill to a group file (64 MiB)
DEFAULT_SPILL_THRESHOLD_BYTES = 64 * 1024 * 1024

MANIFEST_NAME = "manifest.json"

_MODES = ("w", "a", "r")


def _shard_nbytes(shard: TimingShard) -> int:
    return int(sum(np.asarray(values).nbytes for values in shard.columns.values()))


def write_group_payload(
    path: PathLike, shards: Sequence[TimingShard]
) -> Dict[str, object]:
    """Write one group file's bytes at ``path``; return its manifest entry.

    Exactly the format :meth:`ShardStore.flush` spills (16-byte magic, then
    per sorted column name the shards' arrays concatenated into one raw
    blob), minus the manifest bookkeeping — so a parallel chunk worker can
    serialise its shards straight into the store's on-disk layout and the
    parent merely adopts the finished file
    (:meth:`ShardStore.adopt_group`) instead of round-tripping the arrays.
    The entry's ``"file"`` field is left empty for the adopter to fill.
    """
    shards = list(shards)
    if not shards:
        raise ValueError("cannot write an empty group")
    names = sorted(shards[0].columns)
    for shard in shards[1:]:
        if sorted(shard.columns) != names:
            raise ValueError(
                "all shards in a group must share the same column set; "
                f"expected {names}, got {sorted(shard.columns)}"
            )
    columns_meta: List[Dict[str, object]] = []
    shards_meta = [
        {
            "trial": int(shard.trial),
            "process": None if shard.process is None else int(shard.process),
            "n_samples": int(shard.n_samples),
        }
        for shard in shards
    ]
    with open(path, "wb") as handle:
        handle.write(GROUP_MAGIC)
        offset = len(GROUP_MAGIC)
        for name in names:
            parts = [
                np.ascontiguousarray(np.asarray(shard.columns[name]))
                for shard in shards
            ]
            dtype = parts[0].dtype
            for part in parts[1:]:
                if part.dtype != dtype:
                    raise ValueError(
                        f"column {name!r} mixes dtypes across shards "
                        f"({dtype} vs {part.dtype})"
                    )
            nbytes = 0
            for part in parts:
                part.tofile(handle)
                nbytes += part.nbytes
            columns_meta.append({"name": name, "dtype": dtype.str, "offset": offset})
            offset += nbytes
        handle.flush()
        os.fsync(handle.fileno())
    return {
        "file": "",
        "n_samples": int(sum(s["n_samples"] for s in shards_meta)),
        "shards": shards_meta,
        "columns": columns_meta,
    }


class ShardStore:
    """Columnar spill-to-disk store of campaign shards.

    Parameters
    ----------
    path:
        Store directory (created for writable modes).
    mode:
        ``"w"`` starts a fresh store (fails if one already exists at
        ``path``), ``"a"`` opens-or-creates for appending, ``"r"`` opens an
        existing store read-only.
    spill_threshold_bytes:
        In-memory buffer bound: ``append`` flushes the buffered shards into
        a new group file once their column bytes reach this threshold.
        This is the RAM-budget knob of an out-of-core campaign — together
        with group-at-a-time reads it caps the store's working set at
        roughly one group on each side.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        mode: str = "a",
        spill_threshold_bytes: int = DEFAULT_SPILL_THRESHOLD_BYTES,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if spill_threshold_bytes < 1:
            raise ValueError("spill_threshold_bytes must be >= 1")
        self.path = Path(path)
        self.mode = mode
        self.spill_threshold_bytes = int(spill_threshold_bytes)
        self._buffer: List[TimingShard] = []
        self._buffered_bytes = 0
        manifest_path = self.path / MANIFEST_NAME
        if mode == "r":
            if not manifest_path.exists():
                raise FileNotFoundError(f"no shard store at {self.path}")
            self._manifest = self._read_manifest()
        elif mode == "w":
            if manifest_path.exists():
                raise FileExistsError(f"shard store already exists at {self.path}")
            self.path.mkdir(parents=True, exist_ok=True)
            self._manifest = self._empty_manifest()
            self._write_manifest()
        else:  # append
            self.path.mkdir(parents=True, exist_ok=True)
            self._manifest = (
                self._read_manifest()
                if manifest_path.exists()
                else self._empty_manifest()
            )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: PathLike,
        *,
        spill_threshold_bytes: int = DEFAULT_SPILL_THRESHOLD_BYTES,
    ) -> "ShardStore":
        """Start a fresh store at ``path`` (must not already exist)."""
        return cls(path, mode="w", spill_threshold_bytes=spill_threshold_bytes)

    @classmethod
    def open(cls, path: PathLike) -> "ShardStore":
        """Open an existing store read-only."""
        return cls(path, mode="r")

    # ------------------------------------------------------------------
    # manifest plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _empty_manifest() -> Dict[str, object]:
        return {
            "format_version": STORE_FORMAT_VERSION,
            "complete": False,
            "metadata": {},
            "total_samples": 0,
            "groups": [],
        }

    def _read_manifest(self) -> Dict[str, object]:
        manifest = json.loads((self.path / MANIFEST_NAME).read_text())
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported shard-store format version {version!r} "
                f"(expected {STORE_FORMAT_VERSION})"
            )
        return manifest

    def _write_manifest(self) -> None:
        # tmp + replace: readers never observe a torn manifest
        tmp = self.path / f"{MANIFEST_NAME}.tmp-{os.getpid()}"
        try:
            tmp.write_text(json.dumps(self._manifest, sort_keys=True))
            os.replace(tmp, self.path / MANIFEST_NAME)
        finally:
            tmp.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _check_writable(self) -> None:
        if self.mode == "r":
            raise ValueError("store is read-only")
        if self._manifest["complete"]:
            raise ValueError("store is finalized; no further appends allowed")

    def append(self, shard: TimingShard) -> None:
        """Buffer one shard, spilling a group once the threshold is hit."""
        self._check_writable()
        validate_columns(dict(shard.columns))
        self._buffer.append(shard)
        self._buffered_bytes += _shard_nbytes(shard)
        if self._buffered_bytes >= self.spill_threshold_bytes:
            self.flush()

    def extend(self, shards: Sequence[TimingShard]) -> None:
        """Append several shards (e.g. one campaign-backend chunk)."""
        for shard in shards:
            self.append(shard)

    def flush(self) -> None:
        """Spill the buffered shards into a new on-disk group (if any)."""
        if self.mode == "r":
            raise ValueError("store is read-only")
        if not self._buffer:
            return
        groups: List[dict] = self._manifest["groups"]  # type: ignore[assignment]
        file_name = f"group-{len(groups):05d}.bin"
        tmp = self.path / f"{file_name}.tmp-{os.getpid()}"
        try:
            entry = write_group_payload(tmp, self._buffer)
            os.replace(tmp, self.path / file_name)
        finally:
            tmp.unlink(missing_ok=True)
        entry["file"] = file_name
        groups.append(entry)
        self._manifest["total_samples"] = int(
            self._manifest["total_samples"]  # type: ignore[operator]
        ) + int(entry["n_samples"])  # type: ignore[arg-type]
        self._buffer = []
        self._buffered_bytes = 0
        self._write_manifest()

    def adopt_group(
        self, payload: PathLike, entry: Dict[str, object]
    ) -> Dict[str, object]:
        """Adopt a finished group payload file without copying its bytes.

        ``payload`` must have been written with :func:`write_group_payload`
        (a parallel chunk worker spills its chunk this way, into the store
        directory so the rename stays on one filesystem) and ``entry`` is
        the manifest entry that call returned.  Any buffered shards flush
        first so append order is preserved, then the payload is renamed
        into place as the next group file and its entry joins the manifest
        — the same tmp-then-publish protocol :meth:`flush` uses, so readers
        never observe a half-adopted group.  Returns the adopted entry
        (pass it to :meth:`iter_group` for the group's mmap shard views).
        """
        self._check_writable()
        self.flush()
        groups: List[dict] = self._manifest["groups"]  # type: ignore[assignment]
        file_name = f"group-{len(groups):05d}.bin"
        os.replace(Path(payload), self.path / file_name)
        adopted = dict(entry)
        adopted["file"] = file_name
        groups.append(adopted)
        self._manifest["total_samples"] = int(
            self._manifest["total_samples"]  # type: ignore[operator]
        ) + int(adopted["n_samples"])  # type: ignore[arg-type]
        self._write_manifest()
        return adopted

    def finalize(self, metadata: Optional[Dict[str, object]] = None) -> "ShardStore":
        """Flush, stamp ``metadata`` and mark the store complete."""
        self._check_writable()
        self.flush()
        if metadata is not None:
            merged = dict(self._manifest.get("metadata") or {})
            merged.update(metadata)
            self._manifest["metadata"] = merged
        self._manifest["complete"] = True
        self._write_manifest()
        return self

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def group_columns(self, group: dict):
        """One group's full columns as zero-copy mmap views, plus its shard
        addressing.

        Returns ``(columns, slices)``: ``columns`` maps each column name to
        one :class:`numpy.memmap` view covering the whole group (all shards
        concatenated, exactly the bytes on disk) and ``slices`` is one
        :class:`~repro.core.aggregation.ShardSlice` per stored shard, in
        append order.  This is the store-side producer of the columnar
        analysis fast path: a group *is already* a column block, so analyses
        can fold it through
        :meth:`~repro.analysis.base.AnalysisPass.accumulate_columns_split`
        without ever assembling per-shard objects.  The views are file
        backed (clean pages, evictable), so streaming group blocks keeps the
        same bounded working set as :meth:`iter_shards`.
        """
        from repro.core.aggregation import ShardSlice

        path = self.path / group["file"]
        length = int(group["n_samples"])
        with open(path, "rb") as handle:
            if handle.read(len(GROUP_MAGIC)) != GROUP_MAGIC:
                raise ValueError(f"{path} is not a shard-store group file")
            columns = {
                column["name"]: np.memmap(
                    handle,
                    dtype=np.dtype(column["dtype"]),
                    mode="r",
                    offset=int(column["offset"]),
                    shape=(length,),
                )
                for column in group["columns"]
            }
        slices = []
        start = 0
        for entry in group["shards"]:
            stop = start + int(entry["n_samples"])
            slices.append(
                ShardSlice(
                    trial=int(entry["trial"]),
                    process=(
                        None if entry["process"] is None else int(entry["process"])
                    ),
                    start=start,
                    stop=stop,
                )
            )
            start = stop
        return columns, slices

    def _iter_group(self, group: dict) -> Iterator[TimingShard]:
        columns, slices = self.group_columns(group)
        for sl in slices:
            yield TimingShard(
                trial=sl.trial,
                process=sl.process,
                columns={
                    name: array[sl.start : sl.stop]
                    for name, array in columns.items()
                },
            )

    def iter_group(self, entry: Dict[str, object]) -> Iterator[TimingShard]:
        """Zero-copy mmap shard views of one group (``entry`` as stored in
        the manifest or returned by :meth:`adopt_group`)."""
        return self._iter_group(entry)

    def iter_column_blocks(self):
        """Stream the store group by group as ``(columns, slices)`` blocks.

        The columnar dual of :meth:`iter_shards`: each stored group is
        yielded once, as the zero-copy mmap column views plus shard slices
        of :meth:`group_columns`, in manifest (serial shard) order.  Feed
        the blocks to
        :func:`~repro.analysis.engine.run_columnar_analyses` to analyse an
        out-of-core campaign without materialising shards; the same
        snapshot/flush semantics as :meth:`iter_shards` apply, and roughly
        one group's pages are hot at a time.
        """
        if self.mode == "r":
            manifest = self._read_manifest()
            self._manifest = manifest
        else:
            self.flush()
            manifest = self._manifest
        for group in list(manifest["groups"]):  # type: ignore[index]
            yield self.group_columns(group)

    def iter_shards(self) -> Iterator[TimingShard]:
        """Stream every stored shard as zero-copy memory-mapped views.

        Writable stores flush their buffer first, so the iteration always
        covers everything appended so far and every yielded shard is a mmap
        view.  Read-only stores re-read the manifest, snapshotting whatever
        groups a concurrent writer has published by now; groups appearing
        later are picked up by the next ``iter_shards()`` call.  Each
        group's mappings are released as the consumer advances past it —
        hold on to all yielded shards and the whole store stays mapped;
        stream them and roughly one group is resident at a time.
        """
        if self.mode == "r":
            manifest = self._read_manifest()
            self._manifest = manifest
        else:
            self.flush()
            manifest = self._manifest
        for group in list(manifest["groups"]):  # type: ignore[index]
            yield from self._iter_group(group)

    def __iter__(self) -> Iterator[TimingShard]:
        return self.iter_shards()

    def dataset(
        self, metadata: Optional[Dict[str, object]] = None
    ) -> TimingDataset:
        """Merge the stored shards into a dense dataset (materialises!)."""
        merged_metadata = dict(self.metadata)
        if metadata is not None:
            merged_metadata.update(metadata)
        return TimingDataset.merge(self.iter_shards(), metadata=merged_metadata)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        """Whether :meth:`finalize` ran (the campaign fully landed)."""
        if self.mode == "r":
            self._manifest = self._read_manifest()
        return bool(self._manifest["complete"])

    @property
    def metadata(self) -> Dict[str, object]:
        return dict(self._manifest.get("metadata") or {})

    @property
    def n_groups(self) -> int:
        return len(self._manifest["groups"])  # type: ignore[arg-type]

    @property
    def n_shards(self) -> int:
        stored = sum(
            len(group["shards"]) for group in self._manifest["groups"]  # type: ignore[index]
        )
        return stored + len(self._buffer)

    @property
    def n_samples(self) -> int:
        return int(self._manifest["total_samples"]) + sum(  # type: ignore[arg-type]
            shard.n_samples for shard in self._buffer
        )

    @property
    def nbytes(self) -> int:
        """On-disk bytes of the store's group files."""
        total = 0
        for group in self._manifest["groups"]:  # type: ignore[index]
            try:
                total += (self.path / group["file"]).stat().st_size
            except OSError:
                pass
        return total

    def shard_index(self) -> List[Tuple[int, Optional[int]]]:
        """Stored ``(trial, process)`` addresses in append order."""
        addresses: List[Tuple[int, Optional[int]]] = []
        for group in self._manifest["groups"]:  # type: ignore[index]
            for entry in group["shards"]:
                addresses.append(
                    (
                        int(entry["trial"]),
                        None if entry["process"] is None else int(entry["process"]),
                    )
                )
        addresses.extend((shard.trial, shard.process) for shard in self._buffer)
        return addresses

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardStore":
        return self

    def __exit__(self, *exc_info) -> None:
        if self.mode != "r" and not self._manifest["complete"]:
            self.flush()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardStore({str(self.path)!r}, mode={self.mode!r}, "
            f"groups={self.n_groups}, shards={self.n_shards}, "
            f"samples={self.n_samples})"
        )


def publish_store(staged: PathLike, final: PathLike) -> Path:
    """Atomically move a fully-built store directory into its shared place.

    The shared-cache write protocol: build the store in a sibling temp
    directory, :meth:`~ShardStore.finalize` it, then ``publish_store``.
    ``os.rename`` makes the publication atomic; if another tenant won the
    race (``final`` already exists), the staged copy is discarded and the
    winner's store is used — both are bit-identical by construction, so
    dropping the loser is safe.
    """
    import shutil

    staged_path, final_path = Path(staged), Path(final)
    final_path.parent.mkdir(parents=True, exist_ok=True)
    try:
        os.rename(staged_path, final_path)
    except OSError:
        if not (final_path / MANIFEST_NAME).exists():
            raise
        shutil.rmtree(staged_path, ignore_errors=True)
    return final_path


__all__ = [
    "ShardStore",
    "publish_store",
    "write_group_payload",
    "STORE_FORMAT_VERSION",
    "DEFAULT_SPILL_THRESHOLD_BYTES",
]
