"""Save / load / export timing datasets and campaign shards.

Datasets are stored as a single compressed ``.npz`` holding the columns plus
a JSON-encoded metadata string, so a full paper-scale campaign (768 000 rows
per application) stays a few megabytes and round-trips exactly.  Campaign
shards (:class:`~repro.core.timing.TimingShard`, the unit of the sharded
execution backends) round-trip through the same container with per-shard
prefixed columns and a shard index, via :func:`save_shards` /
:func:`load_shards`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.timing import TimingDataset, TimingShard
from repro.io.schema import DATASET_FORMAT_VERSION, OPTIONAL_COLUMNS, REQUIRED_COLUMNS, validate_columns

PathLike = Union[str, Path]


def _atomic_savez(target: Path, payload: dict) -> None:
    """Write an ``.npz`` via a sibling temp file + :func:`os.replace`.

    Shared-cache safety: a writer crashing mid-write leaves only a
    ``*.tmp-<pid>`` sibling (swept by the cache tier once stale), never a
    truncated archive at the final path — concurrent readers either see the
    old complete file or the new complete file.
    """
    tmp = target.with_name(f"{target.name}.tmp-{os.getpid()}")
    try:
        # savez_compressed on a file *object*: passing the tmp path would
        # make numpy append another .npz suffix
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **payload)
        os.replace(tmp, target)
    finally:
        tmp.unlink(missing_ok=True)


def save_dataset(dataset: TimingDataset, path: PathLike) -> Path:
    """Write ``dataset`` to ``path`` (``.npz`` appended if absent).

    The write is atomic (temp file + rename), so a crashed writer cannot
    poison shared cache entries with a truncated archive.
    """
    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_suffix(".npz")
    target.parent.mkdir(parents=True, exist_ok=True)
    columns = {name: dataset.column(name) for name in dataset.columns}
    validate_columns(columns)
    payload = dict(columns)
    payload["__metadata__"] = np.array(
        json.dumps(
            {"format_version": DATASET_FORMAT_VERSION, "metadata": dataset.metadata}
        )
    )
    _atomic_savez(target, payload)
    return target


def load_dataset(path: PathLike) -> TimingDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    source = Path(path)
    if not source.exists():
        raise FileNotFoundError(source)
    with np.load(source, allow_pickle=False) as archive:
        names = [name for name in archive.files if name != "__metadata__"]
        columns = {name: archive[name] for name in names}
        metadata = {}
        if "__metadata__" in archive.files:
            decoded = json.loads(str(archive["__metadata__"]))
            version = decoded.get("format_version")
            if version != DATASET_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported dataset format version {version!r} "
                    f"(expected {DATASET_FORMAT_VERSION})"
                )
            metadata = decoded.get("metadata", {})
    validate_columns(columns)
    return TimingDataset(columns, metadata)


def try_load_dataset(path: PathLike) -> Optional[TimingDataset]:
    """Corruption-tolerant :func:`load_dataset` for cache entries.

    Returns ``None`` when the entry is missing — or unreadable: a truncated
    archive a pre-atomic-write crash left behind, a bad zip, a format-version
    mismatch.  Unreadable entries are removed so they cannot poison later
    cache hits; the caller simply recomputes and overwrites.
    """
    source = Path(path)
    if not source.exists():
        return None
    try:
        return load_dataset(source)
    except Exception:
        try:
            source.unlink()
        except OSError:
            pass
        return None


def save_shards(shards: Sequence[TimingShard], path: PathLike) -> Path:
    """Write campaign shards to one ``.npz`` (``.npz`` appended if absent).

    Each shard's columns are stored under a ``shard<i>__`` prefix; a JSON
    shard index records every shard's (trial, process) address so
    :func:`load_shards` restores them exactly.
    """
    shards = list(shards)
    if not shards:
        raise ValueError("cannot save zero shards")
    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_suffix(".npz")
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {}
    index = []
    for i, shard in enumerate(shards):
        validate_columns(dict(shard.columns))
        for name, values in shard.columns.items():
            payload[f"shard{i}__{name}"] = np.asarray(values)
        index.append(
            {
                "trial": int(shard.trial),
                "process": None if shard.process is None else int(shard.process),
                "columns": sorted(shard.columns),
            }
        )
    payload["__shards__"] = np.array(
        json.dumps({"format_version": DATASET_FORMAT_VERSION, "shards": index})
    )
    _atomic_savez(target, payload)
    return target


def load_shards(path: PathLike) -> List[TimingShard]:
    """Load campaign shards previously written by :func:`save_shards`."""
    source = Path(path)
    if not source.exists():
        raise FileNotFoundError(source)
    with np.load(source, allow_pickle=False) as archive:
        if "__shards__" not in archive.files:
            raise ValueError(f"{source} is not a shard archive (no shard index)")
        decoded = json.loads(str(archive["__shards__"]))
        version = decoded.get("format_version")
        if version != DATASET_FORMAT_VERSION:
            raise ValueError(
                f"unsupported shard format version {version!r} "
                f"(expected {DATASET_FORMAT_VERSION})"
            )
        shards = []
        for i, entry in enumerate(decoded["shards"]):
            columns = {name: archive[f"shard{i}__{name}"] for name in entry["columns"]}
            validate_columns(columns)
            shards.append(
                TimingShard(
                    trial=int(entry["trial"]),
                    process=None if entry["process"] is None else int(entry["process"]),
                    columns=columns,
                )
            )
    return shards


def dataset_to_csv(dataset: TimingDataset, path: PathLike, *, unit: str = "ms") -> Path:
    """Export a dataset to CSV (one row per thread sample).

    Parameters
    ----------
    dataset:
        The dataset to export.
    path:
        Output file.
    unit:
        Unit of the exported compute-time column (``"ms"``, ``"us"`` or ``"s"``).
    """
    scale = {"s": 1.0, "ms": 1.0e3, "us": 1.0e6}.get(unit)
    if scale is None:
        raise ValueError(f"unsupported unit {unit!r}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    header = f"trial,process,iteration,thread,compute_time_{unit}"
    rows = np.column_stack(
        [
            dataset.column("trial"),
            dataset.column("process"),
            dataset.column("iteration"),
            dataset.column("thread"),
            dataset.compute_times_s * scale,
        ]
    )
    np.savetxt(
        target,
        rows,
        delimiter=",",
        header=header,
        comments="",
        fmt=["%d", "%d", "%d", "%d", "%.6f"],
    )
    return target
