"""Save / load / export timing datasets.

Datasets are stored as a single compressed ``.npz`` holding the columns plus
a JSON-encoded metadata string, so a full paper-scale campaign (768 000 rows
per application) stays a few megabytes and round-trips exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.timing import TimingDataset
from repro.io.schema import DATASET_FORMAT_VERSION, OPTIONAL_COLUMNS, REQUIRED_COLUMNS, validate_columns

PathLike = Union[str, Path]


def save_dataset(dataset: TimingDataset, path: PathLike) -> Path:
    """Write ``dataset`` to ``path`` (``.npz`` appended if absent)."""
    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_suffix(".npz")
    target.parent.mkdir(parents=True, exist_ok=True)
    columns = {name: dataset.column(name) for name in dataset.columns}
    validate_columns(columns)
    payload = dict(columns)
    payload["__metadata__"] = np.array(
        json.dumps(
            {"format_version": DATASET_FORMAT_VERSION, "metadata": dataset.metadata}
        )
    )
    np.savez_compressed(target, **payload)
    return target


def load_dataset(path: PathLike) -> TimingDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    source = Path(path)
    if not source.exists():
        raise FileNotFoundError(source)
    with np.load(source, allow_pickle=False) as archive:
        names = [name for name in archive.files if name != "__metadata__"]
        columns = {name: archive[name] for name in names}
        metadata = {}
        if "__metadata__" in archive.files:
            decoded = json.loads(str(archive["__metadata__"]))
            version = decoded.get("format_version")
            if version != DATASET_FORMAT_VERSION:
                raise ValueError(
                    f"unsupported dataset format version {version!r} "
                    f"(expected {DATASET_FORMAT_VERSION})"
                )
            metadata = decoded.get("metadata", {})
    validate_columns(columns)
    return TimingDataset(columns, metadata)


def dataset_to_csv(dataset: TimingDataset, path: PathLike, *, unit: str = "ms") -> Path:
    """Export a dataset to CSV (one row per thread sample).

    Parameters
    ----------
    dataset:
        The dataset to export.
    path:
        Output file.
    unit:
        Unit of the exported compute-time column (``"ms"``, ``"us"`` or ``"s"``).
    """
    scale = {"s": 1.0, "ms": 1.0e3, "us": 1.0e6}.get(unit)
    if scale is None:
        raise ValueError(f"unsupported unit {unit!r}")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    header = f"trial,process,iteration,thread,compute_time_{unit}"
    rows = np.column_stack(
        [
            dataset.column("trial"),
            dataset.column("process"),
            dataset.column("iteration"),
            dataset.column("thread"),
            dataset.compute_times_s * scale,
        ]
    )
    np.savetxt(
        target,
        rows,
        delimiter=",",
        header=header,
        comments="",
        fmt=["%d", "%d", "%d", "%d", "%.6f"],
    )
    return target
