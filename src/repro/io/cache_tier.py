"""Size-bounded, LRU-evicted management of the shared campaign cache.

The ``cache_dir`` the session and the service share holds three artifact
kinds — campaign ``.npz`` datasets (``campaign_*``), pickled analysis-pass
products (``analysis_*``) and spilled shard stores (``*.store``
directories).  :class:`CacheTier` promotes that directory into a real
storage tier:

* **recency tracking** — every cache hit bumps the entry's mtime
  (:meth:`touch`), so the modification time *is* the LRU clock;
* **size-bounded eviction** — :meth:`prune` removes least-recently-used
  entries until the tier fits ``max_bytes`` (a ``.store`` directory is one
  evictable unit); :meth:`admit` runs it after every write;
* **crash tolerance** — in-flight ``*.tmp-*`` entries are never counted or
  evicted while fresh, but stale ones (an interrupted writer's leftovers)
  are swept once older than ``stale_after_s``; the same staleness rule
  breaks an abandoned tier lock, so one crashed pruner cannot wedge every
  tenant (the writes themselves are atomic renames, so eviction racing a
  writer or reader is safe — open mmaps keep evicted data alive until
  released).

``python -m repro cache --stats`` / ``--prune`` expose the tier on the
command line; the ``REPRO_CACHE_MAX_BYTES`` environment variable supplies a
default budget where no explicit knob is set.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import shutil
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

PathLike = Union[str, Path]

#: environment variable supplying a default tier budget (bytes)
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: lock file guarding prune against concurrent pruners
LOCK_NAME = ".tier.lock"

#: age after which tmp leftovers and locks count as crashed-writer debris
DEFAULT_STALE_AFTER_S = 3600.0


@dataclasses.dataclass
class CacheEntry:
    """One evictable unit of the tier (a file, or a store directory)."""

    path: Path
    kind: str
    nbytes: int
    mtime: float


def _tree_bytes(path: Path) -> int:
    total = 0
    for root, _, files in os.walk(path):
        for name in files:
            try:
                total += (Path(root) / name).stat().st_size
            except OSError:
                pass
    return total


class CacheTier:
    """LRU manager of one shared cache directory.

    Parameters
    ----------
    root:
        The cache directory (created if missing).
    max_bytes:
        Tier budget; ``None`` falls back to ``REPRO_CACHE_MAX_BYTES`` and,
        failing that, disables automatic eviction (``prune`` then needs an
        explicit budget).
    stale_after_s:
        Age beyond which ``*.tmp-*`` leftovers and the tier lock are treated
        as debris of a crashed writer and swept/stolen.
    """

    def __init__(
        self,
        root: PathLike,
        *,
        max_bytes: Optional[int] = None,
        stale_after_s: float = DEFAULT_STALE_AFTER_S,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is None:
            env = os.environ.get(CACHE_MAX_BYTES_ENV)
            if env:
                max_bytes = int(env)
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_bytes = max_bytes
        self.stale_after_s = float(stale_after_s)

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    @staticmethod
    def _kind(path: Path) -> str:
        name = path.name
        if name.endswith(".store") and path.is_dir():
            return "store"
        if name.startswith("campaign_"):
            return "campaign"
        if name.startswith("analysis_"):
            return "analysis"
        return "other"

    def entries(self) -> List[CacheEntry]:
        """Evictable entries, least recently used first."""
        found: List[CacheEntry] = []
        try:
            children = sorted(self.root.iterdir())
        except FileNotFoundError:
            return []
        for child in children:
            if child.name == LOCK_NAME or ".tmp-" in child.name:
                continue  # the lock and in-flight writes are not entries
            try:
                stat = child.stat()
                nbytes = _tree_bytes(child) if child.is_dir() else stat.st_size
            except OSError:
                continue  # raced a concurrent eviction
            found.append(
                CacheEntry(
                    path=child,
                    kind=self._kind(child),
                    nbytes=nbytes,
                    mtime=stat.st_mtime,
                )
            )
        found.sort(key=lambda entry: (entry.mtime, entry.path.name))
        return found

    @property
    def total_bytes(self) -> int:
        return sum(entry.nbytes for entry in self.entries())

    def stats(self) -> Dict[str, object]:
        """Tier inventory (the ``cache --stats`` / service payload)."""
        entries = self.entries()
        by_kind: Dict[str, Dict[str, int]] = {}
        for entry in entries:
            bucket = by_kind.setdefault(entry.kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += entry.nbytes
        return {
            "root": str(self.root),
            "max_bytes": self.max_bytes,
            "entries": len(entries),
            "total_bytes": sum(entry.nbytes for entry in entries),
            "by_kind": by_kind,
        }

    # ------------------------------------------------------------------
    # recency + admission
    # ------------------------------------------------------------------
    def touch(self, path: Optional[PathLike]) -> None:
        """Bump an entry's LRU clock (cache hit).  Missing paths are fine."""
        if path is None:
            return
        try:
            os.utime(path, None)
        except OSError:
            pass

    def admit(self, path: Optional[PathLike]) -> List[Path]:
        """Record a fresh write and evict over-budget LRU entries.

        The admitted entry itself is never chosen for eviction (an entry
        larger than the whole budget would otherwise delete itself the
        moment it landed), so the tier can transiently exceed the budget by
        one entry until something newer displaces it.
        """
        self.touch(path)
        if self.max_bytes is None:
            return []
        return self.prune(protect=path)

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _remove(self, path: Path) -> None:
        if path.is_dir():
            shutil.rmtree(path, ignore_errors=True)
        else:
            try:
                path.unlink()
            except OSError:
                pass

    def _sweep_stale_tmp(self) -> None:
        """Drop ``*.tmp-*`` leftovers a crashed writer abandoned."""
        deadline = time.time() - self.stale_after_s
        try:
            children = list(self.root.iterdir())
        except FileNotFoundError:
            return
        for child in children:
            if ".tmp-" not in child.name:
                continue
            try:
                if child.stat().st_mtime < deadline:
                    self._remove(child)
            except OSError:
                pass

    @contextmanager
    def _lock(self, timeout_s: float = 5.0) -> Iterator[bool]:
        """Best-effort exclusive tier lock with stale-lock takeover.

        Yields ``True`` when held.  A lock older than ``stale_after_s``
        (crashed pruner) is broken and re-acquired; an actively contended
        lock times out and yields ``False`` — callers then skip pruning
        rather than wedge, since eviction is advisory.
        """
        lock_path = self.root / LOCK_NAME
        deadline = time.monotonic() + timeout_s
        fd: Optional[int] = None
        while True:
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, f"{os.getpid()} {time.time()}\n".encode())
                break
            except FileExistsError:
                try:
                    if lock_path.stat().st_mtime < time.time() - self.stale_after_s:
                        lock_path.unlink(missing_ok=True)  # stale-lock takeover
                        continue
                except OSError:
                    continue
                if time.monotonic() >= deadline:
                    yield False
                    return
                time.sleep(0.05)
        try:
            yield True
        finally:
            if fd is not None:
                os.close(fd)
            lock_path.unlink(missing_ok=True)

    def prune(
        self,
        max_bytes: Optional[int] = None,
        *,
        protect: Optional[PathLike] = None,
    ) -> List[Path]:
        """Evict least-recently-used entries until the tier fits the budget.

        Returns the evicted paths.  ``protect`` (if given) is exempt — see
        :meth:`admit`.  With neither ``max_bytes`` here nor a tier budget
        configured, only stale tmp debris is swept.
        """
        budget = self.max_bytes if max_bytes is None else int(max_bytes)
        protected = Path(protect).resolve() if protect is not None else None
        evicted: List[Path] = []
        with self._lock() as held:
            if not held:
                return evicted
            self._sweep_stale_tmp()
            if budget is None:
                return evicted
            entries = self.entries()
            total = sum(entry.nbytes for entry in entries)
            for entry in entries:
                if total <= budget:
                    break
                if protected is not None and entry.path.resolve() == protected:
                    continue
                self._remove(entry.path)
                total -= entry.nbytes
                evicted.append(entry.path)
        return evicted


def format_stats(stats: Dict[str, object]) -> str:
    """Human-readable ``cache --stats`` rendering."""
    lines = [
        f"cache tier: {stats['root']}",
        f"  entries:     {stats['entries']}",
        f"  total bytes: {stats['total_bytes']:,}"
        f" ({stats['total_bytes'] / 2**20:.1f} MiB)",  # type: ignore[operator]
        "  max bytes:   "
        + (
            f"{stats['max_bytes']:,}"  # type: ignore[str-bytes-safe]
            if stats["max_bytes"] is not None
            else "unbounded"
        ),
    ]
    for kind, bucket in sorted(stats["by_kind"].items()):  # type: ignore[union-attr]
        lines.append(
            f"  {kind:10s} {bucket['entries']:4d} entr"
            f"{'y' if bucket['entries'] == 1 else 'ies'}, "
            f"{bucket['bytes']:,} bytes"
        )
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign cache",
        description="Inspect or prune the shared campaign cache tier.",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        required=True,
        help="the cache directory to manage",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the tier inventory (default action)",
    )
    parser.add_argument(
        "--prune",
        action="store_true",
        help="evict least-recently-used entries down to the budget",
    )
    parser.add_argument(
        "--max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="tier budget in MiB (default: $REPRO_CACHE_MAX_BYTES)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro cache``."""
    args = build_parser().parse_args(argv)
    max_bytes = int(args.max_mb * 2**20) if args.max_mb is not None else None
    tier = CacheTier(args.cache_dir, max_bytes=max_bytes)
    if args.prune:
        if tier.max_bytes is None:
            print(
                "[repro-cache] no budget: pass --max-mb or set "
                f"${CACHE_MAX_BYTES_ENV} (only sweeping stale tmp files)"
            )
        evicted = tier.prune()
        for path in evicted:
            print(f"[repro-cache] evicted {path.name}")
        print(f"[repro-cache] evicted {len(evicted)} entr"
              f"{'y' if len(evicted) == 1 else 'ies'}")
    print(format_stats(tier.stats()))
    return 0


__all__ = [
    "CacheTier",
    "CacheEntry",
    "format_stats",
    "main",
    "CACHE_MAX_BYTES_ENV",
]
