"""On-disk schema of timing datasets."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

#: Version stamp written into every saved dataset; bump on breaking changes.
DATASET_FORMAT_VERSION = 1

#: Columns every stored dataset must contain.
REQUIRED_COLUMNS = ("trial", "process", "iteration", "thread", "compute_time_s")

#: Optional raw-timestamp columns.
OPTIONAL_COLUMNS = ("start_ns", "end_ns")


def validate_columns(columns: Dict[str, np.ndarray]) -> None:
    """Raise ``ValueError`` if a column set does not satisfy the schema."""
    missing = set(REQUIRED_COLUMNS) - set(columns)
    if missing:
        raise ValueError(f"dataset is missing required columns: {sorted(missing)}")
    unknown = set(columns) - set(REQUIRED_COLUMNS) - set(OPTIONAL_COLUMNS)
    if unknown:
        raise ValueError(f"dataset contains unknown columns: {sorted(unknown)}")
    lengths = {name: len(values) for name, values in columns.items()}
    if len(set(lengths.values())) != 1:
        raise ValueError(f"dataset columns have mismatched lengths: {lengths}")
