"""Request coalescing: one in-flight computation per distinct config.

Concurrent submissions whose configurations hash to the same
:func:`~repro.experiments.session.config_cache_key` are the same work —
same samples, bit for bit — so the service executes them once.  The
coalescer maps cache keys to their in-flight :class:`~repro.service.jobs.Job`;
a matching submission attaches a new handle to the existing job (and, via
the job's shard replay in :meth:`Job.subscribe
<repro.service.jobs.Job.subscribe>`, still observes the full shard
stream).  Jobs unregister themselves the moment they reach a terminal
state — *completed* identical requests are not coalesced, they are served
from the session's ``.npz`` dataset cache instead (counted separately by
the service).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.service.jobs import Job


class RequestCoalescer:
    """Tracks in-flight jobs by config cache key.

    Counters: ``hits`` counts submissions that attached to an existing
    in-flight job, ``misses`` counts submissions that started a fresh
    execution.  ``hits / (hits + misses)`` is the coalescing rate the load
    benchmark and ``GET /stats`` report.
    """

    def __init__(self) -> None:
        self._inflight: Dict[str, Job] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Number of distinct computations currently in flight."""
        return len(self._inflight)

    def lookup(self, cache_key: str) -> Optional[Job]:
        """The in-flight job for ``cache_key``, counting a hit if found."""
        job = self._inflight.get(cache_key)
        if job is None or job.finished:
            return None
        self.hits += 1
        return job

    def register(self, job: Job) -> None:
        """Track a fresh job (counted as a miss) until it finishes."""
        self.misses += 1
        self._inflight[job.cache_key] = job
        job.add_done_callback(self._release)

    # ------------------------------------------------------------------
    def _release(self, job: Job) -> None:
        if self._inflight.get(job.cache_key) is job:
            del self._inflight[job.cache_key]

    def stats(self) -> Dict[str, int]:
        return {
            "coalesce_hits": self.hits,
            "coalesce_misses": self.misses,
            "inflight": self.inflight,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestCoalescer(inflight={self.inflight}, hits={self.hits}, "
            f"misses={self.misses})"
        )
