"""Stdlib-only HTTP front end for the campaign service.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, no dependencies — exposing :class:`~repro.service.api.CampaignService`
to remote clients:

========================  ====================================================
``POST /jobs``            submit ``{"scenario": ..., "scale": ...,
                          "priority": ..., ...}``; responds ``202`` with the
                          job status (``429`` when admission control rejects)
``GET /jobs/<id>``        current job status (state, progress, digest)
``GET /jobs/<id>/result`` block until terminal, then the final status
``GET /jobs/<id>/stream`` newline-delimited JSON: one ``shard`` event per
                          produced shard as it lands, then a ``done`` event
``GET /jobs/<id>/analyses`` block until terminal, then every finalized
                          analysis-pass product as JSON (computed once per
                          job via the columnar fast path; ``409`` for
                          failed or cancelled jobs)
``POST /jobs/<id>/cancel``request cooperative cancellation
``GET /stats``            service counters (queue depth, coalescing, caches)
========================  ====================================================

Every response carries ``Connection: close`` — one request per connection
keeps the parser honest and the streaming endpoint trivially correct.  The
stream endpoint is the HTTP face of ``async for shard in handle.stream()``:
shards are serialised as summaries (trial, process, sample count, shard
digest) rather than raw arrays, which is what the CLI progress printer and
the CI smoke check consume; the full dataset digest arrives with the
``done`` event and is compared against the pinned scenario-matrix digests.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.service.api import CampaignService
from repro.service.jobs import _END, Job, JobState, shard_digest
from repro.service.queue import RejectedError

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: request bodies larger than this are rejected (submissions are tiny)
MAX_BODY_BYTES = 1 << 20


class _BadRequest(Exception):
    """Maps to a 400 response with the message as the error field."""


class CampaignHTTPServer:
    """HTTP face of a :class:`CampaignService`.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` to discover it (the tests and the smoke check do).
    """

    def __init__(
        self,
        service: CampaignService,
        *,
        host: str = "127.0.0.1",
        port: int = 8642,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._server is not None

    async def start(self) -> None:
        """Start the service (if needed) and begin accepting connections."""
        if self._server is not None:
            return
        if not self.service.started:
            await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # resolve the actual port when an ephemeral one was requested
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_forever(self) -> None:
        """Run until cancelled (the ``python -m repro serve`` main loop)."""
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def __aenter__(self) -> "CampaignHTTPServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, body = await self._read_request(reader)
            await self._route(writer, method, path, body)
        except _BadRequest as error:
            await self._send_json(writer, 400, {"error": str(error)})
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        except Exception as error:  # defensive: keep the server alive
            try:
                await self._send_json(writer, 500, {"error": repr(error)})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line: {request_line!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _BadRequest(f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, body

    async def _route(
        self, writer: asyncio.StreamWriter, method: str, path: str, body: bytes
    ) -> None:
        if path == "/jobs":
            if method != "POST":
                await self._send_json(writer, 405, {"error": "use POST /jobs"})
                return
            await self._submit(writer, body)
            return
        if path == "/stats":
            await self._send_json(writer, 200, self.service.stats())
            return
        if path == "/healthz":
            await self._send_json(writer, 200, {"status": "ok"})
            return
        if path.startswith("/jobs/"):
            segments = path[len("/jobs/"):].split("/")
            job = self.service.get_job(segments[0])
            if job is None:
                await self._send_json(
                    writer, 404, {"error": f"unknown job {segments[0]!r}"}
                )
                return
            action = segments[1] if len(segments) > 1 else None
            if action is None and method == "GET":
                await self._send_json(writer, 200, job.status())
            elif action == "result" and method == "GET":
                await job.wait()
                await self._send_json(writer, 200, job.status())
            elif action == "stream" and method == "GET":
                await self._stream(writer, job)
            elif action == "analyses" and method == "GET":
                await self._analyses(writer, job)
            elif action == "cancel" and method == "POST":
                cancelled = job.cancel()
                await self._send_json(
                    writer, 200, {"cancelled": cancelled, **job.status()}
                )
            else:
                await self._send_json(
                    writer, 405, {"error": f"unsupported {method} {path}"}
                )
            return
        await self._send_json(writer, 404, {"error": f"no route for {path}"})

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    async def _submit(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise _BadRequest("body must be a JSON object")
        scenario = payload.get("scenario")
        if not isinstance(scenario, str) or not scenario:
            raise _BadRequest('"scenario" (string) is required')
        overrides = payload.get("overrides", {})
        if not isinstance(overrides, dict):
            raise _BadRequest('"overrides" must be a JSON object')
        try:
            handle = await self.service.submit(
                scenario,
                scale=payload.get("scale"),
                priority=int(payload.get("priority", 0)),
                use_cache=bool(payload.get("use_cache", True)),
                coalesce=bool(payload.get("coalesce", True)),
                **overrides,
            )
        except RejectedError as error:
            await self._send_json(
                writer,
                429,
                {
                    "error": str(error),
                    "depth": error.depth,
                    "max_depth": error.max_depth,
                },
            )
            return
        except (KeyError, TypeError, ValueError) as error:
            raise _BadRequest(str(error)) from error
        await self._send_json(
            writer, 202, {"coalesced": handle.coalesced, **handle.status()}
        )

    async def _stream(self, writer: asyncio.StreamWriter, job: Job) -> None:
        """Newline-delimited JSON shard stream (one event per line)."""
        await self._send_headers(
            writer, 200, content_type="application/x-ndjson"
        )
        index = 0

        async def emit(event: Dict[str, object]) -> None:
            writer.write(json.dumps(event).encode("utf-8") + b"\n")
            await writer.drain()

        try:
            queue = job.subscribe()
            while True:
                shard = await queue.get()
                if shard is _END:
                    break
                await emit(
                    {
                        "event": "shard",
                        "index": index,
                        "trial": shard.trial,
                        "process": shard.process,
                        "n_samples": shard.n_samples,
                        "digest": shard_digest(shard),
                    }
                )
                index += 1
            await emit({"event": "done", **job.status()})
        except ConnectionError:
            pass  # client hung up mid-stream; the job keeps running
        # body has no Content-Length: Connection: close delimits it

    async def _analyses(self, writer: asyncio.StreamWriter, job: Job) -> None:
        """Finalized analysis products of a completed job (blocks until
        terminal; only ``done`` jobs have a dataset to analyse)."""
        await job.wait()
        if job.state is not JobState.DONE:
            await self._send_json(
                writer,
                409,
                {
                    "error": (
                        f"job {job.id} is {job.state.value}; "
                        "analyses need a completed job"
                    ),
                    **job.status(),
                },
            )
            return
        payload = await self.service.job_analyses(job)
        await self._send_json(writer, 200, payload)

    # ------------------------------------------------------------------
    # response plumbing
    # ------------------------------------------------------------------
    async def _send_headers(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        *,
        content_type: str,
        content_length: Optional[int] = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            "Connection: close",
        ]
        if content_length is not None:
            lines.append(f"Content-Length: {content_length}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Dict[str, object]
    ) -> None:
        body = json.dumps(payload).encode("utf-8") + b"\n"
        await self._send_headers(
            writer,
            status,
            content_type="application/json",
            content_length=len(body),
        )
        writer.write(body)
        await writer.drain()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "listening" if self.started else "stopped"
        return f"CampaignHTTPServer({self.url}, {state})"


__all__ = ["CampaignHTTPServer", "MAX_BODY_BYTES"]
