"""The campaign service: an async multi-tenant front end to the campaign layer.

This package turns the in-process campaign machinery — sessions, the
backend registry, the parallel shard executor and the config-hash caches —
into a long-running *server* that many concurrent clients can share:

* :mod:`repro.service.jobs` — the job model: a submitted
  :class:`~repro.experiments.config.CampaignConfig` (or scenario name)
  becomes a :class:`Job` with a lifecycle
  (``queued → running → streaming → done/failed/cancelled``), a priority
  and live progress counters (shards completed / total, samples per
  second).
* :mod:`repro.service.queue` — the scheduler: a bounded worker pool pulls
  jobs from a priority queue; submissions beyond the configured queue
  depth are rejected explicitly (:class:`RejectedError`) instead of
  growing without bound, and running jobs cancel cooperatively between
  shards.
* :mod:`repro.service.dedup` — request coalescing: concurrent submissions
  with the same :func:`~repro.experiments.session.config_cache_key` attach
  to one in-flight computation and all receive its results; completed
  results are served straight from the session's ``.npz`` dataset cache.
* :mod:`repro.service.api` — the in-process async client API:
  ``handle = await service.submit(...)``, ``await handle.result()`` and
  ``async for shard in handle.stream()`` with shards arriving as the
  executor produces them.
* :mod:`repro.service.http` — an optional stdlib-only HTTP front end
  (``POST /jobs``, ``GET /jobs/<id>``, ``GET /jobs/<id>/result``,
  newline-delimited-JSON shard streaming, ``GET /stats``), reachable from
  the CLI via ``python -m repro serve`` / ``python -m repro submit``.

Results are bit-identical to :meth:`CampaignSession.run
<repro.experiments.session.CampaignSession.run>` for the same config — the
service executes the very same backends through the very same executor, and
the integration tests pin the digests.
"""

from repro.service.api import CampaignService
from repro.service.dedup import RequestCoalescer
from repro.service.http import CampaignHTTPServer
from repro.service.jobs import (
    Job,
    JobCancelledError,
    JobHandle,
    JobProgress,
    JobState,
    dataset_digest,
    shard_digest,
)
from repro.service.queue import JobQueue, JobScheduler, RejectedError

__all__ = [
    "CampaignService",
    "CampaignHTTPServer",
    "Job",
    "JobCancelledError",
    "JobHandle",
    "JobProgress",
    "JobQueue",
    "JobScheduler",
    "JobState",
    "RejectedError",
    "RequestCoalescer",
    "dataset_digest",
    "shard_digest",
]
