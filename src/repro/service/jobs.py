"""The campaign service's job model.

A submitted campaign request becomes a :class:`Job`: one unit of scheduled
work with a lifecycle (:class:`JobState`), a priority, live progress
counters (:class:`JobProgress`) and a list of buffered shards that both the
final result and late stream subscribers are served from.  Clients never
touch jobs directly — they hold :class:`JobHandle`\\ s, which several
concurrent clients can share when their submissions coalesce onto one job
(see :mod:`repro.service.dedup`).

Threading model: the service's event loop owns every job's mutable state.
The worker *thread* that actually executes campaign shards posts its
transitions back onto the loop with ``loop.call_soon_threadsafe`` (see
:meth:`repro.service.api.CampaignService._produce`), so subscribers,
progress readers and the HTTP front end all observe a job from a single
thread.  The one exception is :attr:`Job.cancel_requested`, a
:class:`threading.Event` the worker thread polls *between shards* — that is
what makes cancellation cooperative: a running job stops at the next shard
boundary, never mid-shard.
"""

from __future__ import annotations

import asyncio
import enum
import hashlib
import time
from dataclasses import dataclass, field
from threading import Event as ThreadEvent
from typing import (
    TYPE_CHECKING,
    AsyncIterator,
    Callable,
    Dict,
    List,
    Optional,
)

import numpy as np

from repro.core.timing import TimingDataset, TimingShard
from repro.experiments.session import CampaignResult, config_cache_key

if TYPE_CHECKING:  # pragma: no cover - static typing only
    from repro.experiments.config import CampaignConfig


def dataset_digest(dataset: TimingDataset) -> str:
    """sha256 of the dense ``compute_times_s`` array.

    The same convention the integration tests pin campaign bit-identity
    with, so a digest returned by the service can be compared directly
    against the recorded scenario-matrix digests.
    """
    blob = np.ascontiguousarray(dataset.compute_times_s, dtype=np.float64).tobytes()
    return hashlib.sha256(blob).hexdigest()


def shard_digest(shard: TimingShard) -> str:
    """sha256 of one shard's ``compute_time_s`` column."""
    column = np.ascontiguousarray(
        shard.columns["compute_time_s"], dtype=np.float64
    )
    return hashlib.sha256(column.tobytes()).hexdigest()


class JobState(str, enum.Enum):
    """Lifecycle of a campaign job."""

    QUEUED = "queued"
    RUNNING = "running"
    STREAMING = "streaming"  # running, with at least one shard delivered
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: states a job can never leave
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)


class JobCancelledError(RuntimeError):
    """Raised by :meth:`JobHandle.result` when the job was cancelled."""


#: end-of-stream sentinel pushed into subscriber queues
_END = object()


@dataclass
class JobProgress:
    """Live per-job progress counters (updated as shards are delivered)."""

    shards_total: int = 0
    shards_done: int = 0
    samples_done: int = 0
    submitted_at: float = field(default_factory=time.perf_counter)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def samples_per_second(self) -> float:
        """Throughput since the job started (0.0 before any shard lands)."""
        if self.started_at is None:
            return 0.0
        end = self.finished_at if self.finished_at is not None else time.perf_counter()
        elapsed = end - self.started_at
        return self.samples_done / elapsed if elapsed > 0 else 0.0

    @property
    def queue_latency_s(self) -> Optional[float]:
        """Time spent waiting in the queue (None while still queued)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def elapsed_s(self) -> Optional[float]:
        """Submit-to-finish latency (None until the job is terminal)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def as_dict(self) -> Dict[str, object]:
        return {
            "shards_total": self.shards_total,
            "shards_done": self.shards_done,
            "samples_done": self.samples_done,
            "samples_per_second": self.samples_per_second,
            "queue_latency_s": self.queue_latency_s,
            "elapsed_s": self.elapsed_s,
        }


class Job:
    """One scheduled campaign execution.

    All mutating methods (``_mark_running``/``_deliver``/``_finish``/...)
    must be called on the service's event-loop thread; the worker thread
    reaches them through ``loop.call_soon_threadsafe``.
    """

    def __init__(
        self,
        job_id: str,
        config: "CampaignConfig",
        *,
        priority: int = 0,
        use_cache: bool = True,
        shards_total: int = 0,
    ) -> None:
        self.id = job_id
        self.config = config
        self.priority = int(priority)
        self.use_cache = bool(use_cache)
        self.cache_key = config_cache_key(config)
        self.state = JobState.QUEUED
        self.progress = JobProgress(shards_total=shards_total)
        self.error: Optional[BaseException] = None
        self.result: Optional[CampaignResult] = None
        self.digest: Optional[str] = None
        self.from_cache = False
        #: polled by the worker thread between shards (cooperative cancel)
        self.cancel_requested = ThreadEvent()
        self._shards: List[TimingShard] = []
        self._subscribers: List[asyncio.Queue] = []
        self._done = asyncio.Event()
        self._done_callbacks: List[Callable[["Job"], None]] = []

    # ------------------------------------------------------------------
    @property
    def application(self) -> str:
        return self.config.application

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def shards(self) -> List[TimingShard]:
        """The shards delivered so far (all of them once the job is done)."""
        return list(self._shards)

    def add_done_callback(self, callback: Callable[["Job"], None]) -> None:
        """Run ``callback(job)`` when the job reaches a terminal state."""
        if self.finished:
            callback(self)
        else:
            self._done_callbacks.append(callback)

    # ------------------------------------------------------------------
    # loop-thread transitions
    # ------------------------------------------------------------------
    def _mark_running(self) -> None:
        if self.finished:
            return
        self.state = JobState.RUNNING
        self.progress.started_at = time.perf_counter()

    def _deliver(self, shard: TimingShard) -> None:
        """Buffer one produced shard and broadcast it to subscribers."""
        if self.finished:
            return
        self._shards.append(shard)
        self.progress.shards_done += 1
        self.progress.samples_done += shard.n_samples
        self.state = JobState.STREAMING
        for queue in self._subscribers:
            queue.put_nowait(shard)

    def _settle(self, state: JobState) -> None:
        self.state = state
        self.progress.finished_at = time.perf_counter()
        for queue in self._subscribers:
            queue.put_nowait(_END)
        self._done.set()
        callbacks, self._done_callbacks = self._done_callbacks, []
        for callback in callbacks:
            callback(self)

    def _finish(
        self, result: CampaignResult, digest: str, *, from_cache: bool
    ) -> None:
        if self.finished:
            return
        self.result = result
        self.digest = digest
        self.from_cache = from_cache
        self._settle(JobState.DONE)

    def _fail(self, error: BaseException) -> None:
        if self.finished:
            return
        self.error = error
        self._settle(JobState.FAILED)

    def _mark_cancelled(self) -> None:
        if self.finished:
            return
        self._settle(JobState.CANCELLED)

    # ------------------------------------------------------------------
    # client-facing operations (loop thread)
    # ------------------------------------------------------------------
    def cancel(self) -> bool:
        """Request cancellation.

        A queued job is cancelled immediately (the scheduler skips it when
        it reaches the queue head); a running job stops cooperatively at
        the next shard boundary.  Returns ``False`` when the job already
        finished.  Cancelling affects *every* handle coalesced onto this
        job.
        """
        if self.finished:
            return False
        self.cancel_requested.set()
        if self.state is JobState.QUEUED:
            self._mark_cancelled()
        return True

    def subscribe(self) -> asyncio.Queue:
        """A queue receiving this job's shards (buffered ones replayed).

        Late subscribers first receive every already-delivered shard, then
        live ones, then the end-of-stream sentinel — so a coalesced client
        that attached mid-run still observes the full shard sequence in
        serial order.
        """
        queue: asyncio.Queue = asyncio.Queue()
        for shard in self._shards:
            queue.put_nowait(shard)
        if self.finished:
            queue.put_nowait(_END)
        else:
            self._subscribers.append(queue)
        return queue

    async def wait(self) -> None:
        """Block until the job reaches a terminal state."""
        await self._done.wait()

    def result_or_raise(self) -> CampaignResult:
        """The finished result (raising for failed/cancelled jobs)."""
        if self.state is JobState.FAILED:
            assert self.error is not None
            raise self.error
        if self.state is JobState.CANCELLED:
            raise JobCancelledError(f"job {self.id} was cancelled")
        if self.result is None:
            raise RuntimeError(f"job {self.id} has not finished ({self.state.value})")
        return self.result

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """JSON-friendly job status (the ``GET /jobs/<id>`` payload)."""
        payload: Dict[str, object] = {
            "job_id": self.id,
            "state": self.state.value,
            "application": self.application,
            "scenario": getattr(self.config, "scenario", None),
            "backend": self.config.backend,
            "priority": self.priority,
            "cache_key": self.cache_key,
            "from_cache": self.from_cache,
            **self.progress.as_dict(),
        }
        if self.digest is not None:
            payload["digest"] = self.digest
        if self.error is not None:
            payload["error"] = repr(self.error)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.id!r}, {self.application!r}, state={self.state.value}, "
            f"shards={self.progress.shards_done}/{self.progress.shards_total})"
        )


class JobHandle:
    """A client's view of one (possibly shared) job.

    Multiple handles point at the same :class:`Job` when submissions
    coalesce; :attr:`coalesced` tells a client whether its submission
    attached to an already-in-flight computation.
    """

    def __init__(self, job: Job, *, coalesced: bool = False) -> None:
        self._job = job
        self.coalesced = coalesced

    # ------------------------------------------------------------------
    @property
    def job(self) -> Job:
        return self._job

    @property
    def job_id(self) -> str:
        return self._job.id

    @property
    def state(self) -> JobState:
        return self._job.state

    @property
    def progress(self) -> JobProgress:
        return self._job.progress

    @property
    def digest(self) -> Optional[str]:
        return self._job.digest

    def status(self) -> Dict[str, object]:
        return self._job.status()

    def cancel(self) -> bool:
        """Cancel the underlying job (affects all coalesced handles)."""
        return self._job.cancel()

    # ------------------------------------------------------------------
    async def result(self) -> CampaignResult:
        """Wait for completion and return the campaign result.

        Raises :class:`JobCancelledError` for cancelled jobs and re-raises
        the original exception for failed ones.
        """
        await self._job.wait()
        return self._job.result_or_raise()

    async def stream(self) -> AsyncIterator[TimingShard]:
        """Yield the job's shards incrementally, as the executor produces
        them (already-produced shards are replayed first for late
        subscribers).  After the last shard, failed/cancelled jobs raise
        exactly like :meth:`result`.
        """
        queue = self._job.subscribe()
        while True:
            item = await queue.get()
            if item is _END:
                break
            yield item
        if self._job.state is not JobState.DONE:
            self._job.result_or_raise()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobHandle({self._job!r}, coalesced={self.coalesced})"
