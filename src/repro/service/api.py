"""The in-process async campaign service.

:class:`CampaignService` is the front door for concurrent clients: it
accepts scenario names or :class:`~repro.experiments.config.CampaignConfig`
objects, coalesces identical in-flight submissions, serves completed
configurations straight out of the session's config-hash ``.npz`` cache,
and executes everything else on a bounded worker pool — streaming shards
back the moment the executor produces them::

    service = CampaignService(workers=2, max_queue=32, cache_dir="cache/")
    async with service:
        handle = await service.submit("manzano-default", scale="smoke")
        async for shard in handle.stream():
            ...                       # shards arrive incrementally
        result = await handle.result()  # bit-identical to CampaignSession.run

Execution bridges the synchronous campaign machinery into asyncio with
``loop.run_in_executor``: each claimed job occupies one thread of a pool
sized to the worker count, iterates
:meth:`ShardExecutor.iter_shards <repro.experiments.executor.ShardExecutor.iter_shards>`
(the documented incremental shard contract) and posts every shard back to
the event loop, where the job broadcasts it to stream subscribers.  The
thread polls the job's cancel flag between shards, so cancellation stops a
running job at the next shard boundary.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, Optional, Union

from repro.analysis import AnalysisContext, run_columnar_analyses
from repro.core.timing import TimingDataset
from repro.experiments.backends import campaign_group_key, get_backend
from repro.experiments.config import CampaignConfig
from repro.experiments.executor import ShardExecutor
from repro.experiments.session import (
    CampaignResult,
    campaign_cache_path,
    config_cache_key,
)
from repro.service.dedup import RequestCoalescer
from repro.service.jobs import Job, JobHandle, JobState, dataset_digest
from repro.service.queue import JobScheduler, RejectedError

#: campaign-size presets a submission may name (mirrors the CLI's --scale)
SCALES = ("smoke", "benchmark", "paper")


class _CancelledBetweenShards(Exception):
    """Internal: the producing thread observed the cancel flag."""


class CampaignService:
    """Async multi-tenant campaign server (in-process API).

    Parameters
    ----------
    workers:
        Concurrent jobs (asyncio worker tasks, each backed by one thread
        of the execution pool).  Within a job, ``config.max_workers`` still
        fans shards across the parallel executor.
    max_queue:
        Admission bound: submissions beyond this many *waiting* jobs raise
        :class:`~repro.service.queue.RejectedError`.
    cache_dir:
        Directory shared with :class:`~repro.experiments.session.CampaignSession`
        for config-hash-keyed ``.npz`` results; completed configurations
        are served from it without re-execution (``cache_hits`` counter).
        ``None`` disables caching.  Writes go through the atomic
        temp-file protocol and corrupt entries are detected and recomputed,
        so many service workers and sessions can share one directory.
    cache_max_bytes:
        Size budget of the shared cache tier
        (:class:`~repro.io.cache_tier.CacheTier`): every write LRU-evicts
        entries over budget.  ``None`` defers to ``$REPRO_CACHE_MAX_BYTES``
        and, failing that, leaves the tier unbounded.
    executor_mode:
        Worker-pool flavour for within-job shard parallelism (``"process"``
        or ``"thread"``), as in :class:`CampaignSession`.
    default_scale:
        Preset used when a scenario-name submission does not specify one.
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        max_queue: int = 32,
        cache_dir: Optional[Union[str, Path]] = None,
        cache_max_bytes: Optional[int] = None,
        executor_mode: str = "process",
        default_scale: str = "smoke",
    ) -> None:
        if default_scale not in SCALES:
            raise ValueError(
                f"default_scale must be one of {SCALES}, got {default_scale!r}"
            )
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.cache_tier = None
        if self.cache_dir is not None:
            from repro.io.cache_tier import CacheTier

            self.cache_tier = CacheTier(self.cache_dir, max_bytes=cache_max_bytes)
        self.executor_mode = executor_mode
        self.default_scale = default_scale
        self._scheduler = JobScheduler(
            self._execute, workers=workers, max_queue=max_queue
        )
        self._coalescer = RequestCoalescer()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._jobs: Dict[str, Job] = {}
        self._analyses: Dict[str, Dict[str, object]] = {}
        self._analyses_locks: Dict[str, asyncio.Lock] = {}
        self._counter_lock = threading.Lock()
        self._counters = {
            "submitted": 0,
            "rejected": 0,
            "cache_hits": 0,
            "cache_misses": 0,
        }
        self._next_id = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._scheduler.started

    async def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._scheduler.workers,
                thread_name_prefix="campaign-job",
            )
        await self._scheduler.start()

    async def stop(self) -> None:
        """Cancel outstanding jobs cooperatively and stop the workers."""
        for job in self._jobs.values():
            if not job.finished:
                job.cancel()
        if self._pool is not None:
            # threads observe the cancel flag at the next shard boundary
            await asyncio.get_running_loop().run_in_executor(
                None, self._pool.shutdown, True
            )
            self._pool = None
        await self._scheduler.stop()

    async def __aenter__(self) -> "CampaignService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def resolve_config(
        self,
        request: Union[str, CampaignConfig],
        *,
        scale: Optional[str] = None,
        **overrides,
    ) -> CampaignConfig:
        """Turn a submission into a concrete :class:`CampaignConfig`.

        ``request`` is either a registered scenario name (resolved at
        ``scale``, with dimension/seed/backend/max_workers overrides
        forwarded) or an already-built config (used as-is; ``scale`` and
        overrides are rejected to avoid silently ignoring them).
        """
        if isinstance(request, CampaignConfig):
            if scale is not None or overrides:
                raise ValueError(
                    "scale/overrides only apply to scenario-name submissions; "
                    "pass a fully-built CampaignConfig instead"
                )
            return request
        from repro.scenarios import get_scenario

        return get_scenario(str(request)).campaign_config(
            scale if scale is not None else self.default_scale, **overrides
        )

    async def submit(
        self,
        request: Union[str, CampaignConfig],
        *,
        scale: Optional[str] = None,
        priority: int = 0,
        use_cache: bool = True,
        coalesce: bool = True,
        **overrides,
    ) -> JobHandle:
        """Submit a campaign; returns immediately with a :class:`JobHandle`.

        Identical concurrent submissions (same
        :func:`~repro.experiments.session.config_cache_key`) coalesce onto
        one in-flight job unless ``coalesce=False``; higher ``priority``
        jobs run earlier.  Raises
        :class:`~repro.service.queue.RejectedError` when the queue is at
        its admission bound.
        """
        if not self.started:
            raise RuntimeError("service not started; use 'async with service:'")
        config = self.resolve_config(request, scale=scale, **overrides)
        self._count("submitted")
        if coalesce and use_cache:
            existing = self._coalescer.lookup(config_cache_key(config))
            if existing is not None:
                return JobHandle(existing, coalesced=True)
        self._next_id += 1
        job = Job(
            f"job-{self._next_id:06d}",
            config,
            priority=priority,
            use_cache=use_cache,
            shards_total=len(get_backend(config.backend).shard_specs(config)),
        )
        try:
            self._scheduler.submit(job)
        except RejectedError:
            self._count("rejected")
            raise
        self._jobs[job.id] = job
        if coalesce and use_cache:
            self._coalescer.register(job)
        return JobHandle(job, coalesced=False)

    def get_job(self, job_id: str) -> Optional[Job]:
        """The job with ``job_id``, or ``None``."""
        return self._jobs.get(job_id)

    # ------------------------------------------------------------------
    # analyses
    # ------------------------------------------------------------------
    async def job_analyses(self, job: Job) -> Dict[str, object]:
        """Finalized analysis products of a completed job, as JSON data.

        Blocks until the job is terminal (raising, as
        :meth:`JobHandle.result` does, for failed or cancelled jobs), then
        folds the job's result through every registered pass — on the
        execution pool, through the columnar fast path
        (:func:`~repro.analysis.run_columnar_analyses` over
        :meth:`CampaignResult.iter_column_blocks`), so exact-mode products
        are bit-identical to the per-shard streaming engine.  The payload
        is computed once per job and memoised; concurrent callers share
        one computation.
        """
        await job.wait()
        result = job.result_or_raise()
        if job.id not in self._analyses:
            lock = self._analyses_locks.setdefault(job.id, asyncio.Lock())
            async with lock:
                if job.id not in self._analyses:
                    assert self._pool is not None
                    loop = asyncio.get_running_loop()
                    self._analyses[job.id] = await loop.run_in_executor(
                        self._pool, self._compute_analyses, result
                    )
            self._analyses_locks.pop(job.id, None)
        return {
            "job_id": job.id,
            "digest": job.digest,
            "analyses": self._analyses[job.id],
        }

    def _compute_analyses(self, result: CampaignResult) -> Dict[str, object]:
        """Synchronous analysis body (worker thread): columnar fold."""
        context = AnalysisContext.from_dataset(result.dataset)
        return run_columnar_analyses(
            result.iter_column_blocks(), "all", context
        ).as_payload()

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Service-wide counters (the ``GET /stats`` payload)."""
        states: Dict[str, int] = {state.value: 0 for state in JobState}
        for job in self._jobs.values():
            states[job.state.value] += 1
        with self._counter_lock:
            counters = dict(self._counters)
        return {
            **counters,
            **self._coalescer.stats(),
            "queue_depth": self._scheduler.depth,
            "max_queue": self._scheduler.queue.max_depth,
            "running": self._scheduler.running,
            "workers": self._scheduler.workers,
            "jobs": states,
            "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            "cache_tier": (
                self.cache_tier.stats() if self.cache_tier is not None else None
            ),
        }

    def _count(self, name: str, amount: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] += amount

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    async def _execute(self, job: Job) -> None:
        """Worker-task handler: run one claimed job on the thread pool.

        When the claimed job uses the ``"campaign"`` backend, every
        *compatible* job still waiting in the queue (same
        :func:`~repro.experiments.backends.campaign_group_key` — the
        application geometry and schedule that let cost tensors concatenate)
        is claimed along with it and the whole group executes as one
        whole-campaign tensor pass
        (:meth:`~repro.experiments.backends.CampaignTensorBackend.run_many`),
        each job's samples bit-identical to a solo run.  The drain happens
        on the event-loop thread before any await, so no worker can race
        for the claimed peers.
        """
        loop = asyncio.get_running_loop()
        group = [job]
        if job.config.backend == "campaign":
            key = campaign_group_key(job.config)
            group.extend(
                self._scheduler.queue.drain_waiting(
                    lambda other: other.state is JobState.QUEUED
                    and not other.cancel_requested.is_set()
                    and other.config.backend == "campaign"
                    and campaign_group_key(other.config) == key
                )
            )
        for member in group:
            member._mark_running()
        assert self._pool is not None
        if len(group) == 1:
            await loop.run_in_executor(self._pool, self._produce, job, loop)
        else:
            await loop.run_in_executor(self._pool, self._produce_group, group, loop)

    def _produce(self, job: Job, loop: asyncio.AbstractEventLoop) -> None:
        """Synchronous job body (worker thread).

        Every job mutation is posted back to the event loop; this thread
        only reads ``job.cancel_requested`` (between shards) and the
        immutable config.
        """

        def post(callback, *args) -> None:
            loop.call_soon_threadsafe(callback, *args)

        def check_cancel() -> None:
            if job.cancel_requested.is_set():
                raise _CancelledBetweenShards()

        try:
            config = job.config
            cache_path = campaign_cache_path(self.cache_dir, config)
            if cache_path is not None and job.use_cache:
                from repro.io.dataset_io import try_load_dataset

                # corruption-tolerant: a truncated or stale entry loads as
                # None (and is removed) — the job falls through to recompute
                dataset = try_load_dataset(cache_path)
                if dataset is not None:
                    self._count("cache_hits")
                    if self.cache_tier is not None:
                        self.cache_tier.touch(cache_path)
                    scenario = getattr(config, "scenario", None)
                    if dataset.metadata.get("scenario") != scenario:
                        dataset = dataset.with_metadata(scenario=scenario)
                    result = CampaignResult(config, dataset=dataset, from_cache=True)
                    shards = result.shards  # derived per trial on cache hits
                    post(setattr, job.progress, "shards_total", len(shards))
                    for shard in shards:
                        check_cancel()
                        post(job._deliver, shard)
                    post(
                        functools.partial(
                            job._finish,
                            result,
                            dataset_digest(dataset),
                            from_cache=True,
                        )
                    )
                    return
            if self.cache_dir is not None:
                self._count("cache_misses")
            backend = get_backend(config.backend)
            executor = ShardExecutor(mode=self.executor_mode)
            shards = []
            for shard in executor.iter_shards(backend, config):
                check_cancel()
                shards.append(shard)
                post(job._deliver, shard)
            check_cancel()
            metadata = backend.metadata(config)
            dataset = TimingDataset.merge(shards, metadata=metadata)
            if cache_path is not None:
                from repro.io.dataset_io import save_dataset

                save_dataset(dataset, cache_path)  # atomic temp + replace
                if self.cache_tier is not None:
                    self.cache_tier.admit(cache_path)
            result = CampaignResult(
                config, shards=shards, dataset=dataset, metadata=metadata
            )
            post(
                functools.partial(
                    job._finish, result, dataset_digest(dataset), from_cache=False
                )
            )
        except _CancelledBetweenShards:
            post(job._mark_cancelled)
        except BaseException as error:  # surfaced through handle.result()
            post(job._fail, error)

    def _produce_group(self, jobs, loop: asyncio.AbstractEventLoop) -> None:
        """Synchronous grouped job body (worker thread).

        Cache-hit members are served individually (their entries may differ
        — the group key ignores seeds and machines); the remaining members
        run through **one**
        :meth:`~repro.experiments.backends.CampaignTensorBackend.run_many`
        tensor pass.  Each job's cancel flag is polled at the pass and
        delivery boundaries; a failure of the shared pass fails every
        not-yet-finished member.
        """

        def post(callback, *args) -> None:
            loop.call_soon_threadsafe(callback, *args)

        live = []
        for job in jobs:
            cache_path = campaign_cache_path(self.cache_dir, job.config)
            if cache_path is not None and job.use_cache and cache_path.exists():
                self._produce(job, loop)  # full cache-hit flow, per job
            else:
                live.append(job)
        pending = []
        for job in live:
            if self.cache_dir is not None:
                self._count("cache_misses")
            if job.cancel_requested.is_set():
                post(job._mark_cancelled)
            else:
                pending.append(job)
        if not pending:
            return
        try:
            backend = get_backend("campaign")
            datasets = backend.run_many(
                [job.config for job in pending], mode=self.executor_mode
            )
            for job, dataset in zip(pending, datasets):
                if job.cancel_requested.is_set():
                    post(job._mark_cancelled)
                    continue
                cache_path = campaign_cache_path(self.cache_dir, job.config)
                if cache_path is not None:
                    from repro.io.dataset_io import save_dataset

                    save_dataset(dataset, cache_path)  # atomic temp + replace
                    if self.cache_tier is not None:
                        self.cache_tier.admit(cache_path)
                result = CampaignResult(job.config, dataset=dataset)
                shards = result.shards  # derived per trial, as on cache hits
                post(setattr, job.progress, "shards_total", len(shards))
                for shard in shards:
                    post(job._deliver, shard)
                post(
                    functools.partial(
                        job._finish,
                        result,
                        dataset_digest(dataset),
                        from_cache=False,
                    )
                )
        except BaseException as error:  # surfaced through handle.result()
            for job in pending:
                if not job.finished:
                    post(job._fail, error)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CampaignService(workers={self._scheduler.workers}, "
            f"max_queue={self._scheduler.queue.max_depth}, "
            f"jobs={len(self._jobs)}, cache_dir={self.cache_dir})"
        )
