"""``python -m repro serve`` / ``python -m repro submit``.

Two thin subcommands in front of the campaign service:

* ``serve`` hosts :class:`~repro.service.http.CampaignHTTPServer` in the
  foreground until interrupted::

      python -m repro serve --host 127.0.0.1 --port 8642 --workers 2 \\
          --max-queue 32 --cache-dir cache/

* ``submit`` POSTs a scenario to a running server, follows the
  newline-delimited JSON shard stream pretty-printing progress as shards
  land, and exits with the job's fate (non-zero for failed/cancelled jobs
  or a digest mismatch)::

      python -m repro submit manzano-default --scale smoke \\
          --url http://127.0.0.1:8642 \\
          --expect-digest bb2fcafc7160d709...

  ``--expect-digest`` is what the CI smoke check uses: the streamed job's
  final dataset digest must equal the pinned scenario-matrix digest,
  proving the HTTP path end to end is bit-identical to
  :meth:`CampaignSession.run <repro.experiments.session.CampaignSession.run>`.

The client side is synchronous ``urllib.request`` on purpose — it doubles
as a living example that the service needs nothing special on the consumer
end.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import urllib.error
import urllib.request
from pathlib import Path
from typing import Optional, Sequence

#: the serve subcommand's default bind (shared with submit's default URL)
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign serve",
        description="Host the campaign service over HTTP (POST /jobs, "
        "GET /jobs/<id>[/result|/stream], GET /stats).",
    )
    parser.add_argument("--host", default=DEFAULT_HOST, help="bind address")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="concurrent jobs (default: 2)",
    )
    parser.add_argument(
        "--max-queue",
        type=_positive_int,
        default=32,
        help="admission bound: queued jobs beyond this are rejected with "
        "HTTP 429 (default: 32)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="serve completed configurations from this campaign cache",
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="cache-tier size budget in MiB; least-recently-used entries "
        "are evicted over budget (default: $REPRO_CACHE_MAX_BYTES)",
    )
    parser.add_argument(
        "--executor-mode",
        choices=("process", "thread"),
        default="process",
        help="within-job shard executor flavour (default: process)",
    )
    parser.add_argument(
        "--scale",
        choices=("smoke", "benchmark", "paper"),
        default="smoke",
        help="default campaign scale for submissions that omit one "
        "(default: smoke)",
    )
    parser.add_argument(
        "--port-file",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the bound port to this file once listening (with "
        "--port 0 this is how scripts learn the ephemeral port; the CI "
        "service smoke job reads it instead of hardcoding a port)",
    )
    return parser


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro serve``."""
    from repro.service.api import CampaignService
    from repro.service.http import CampaignHTTPServer

    args = build_serve_parser().parse_args(argv)
    service = CampaignService(
        workers=args.workers,
        max_queue=args.max_queue,
        cache_dir=args.cache_dir,
        cache_max_bytes=(
            int(args.cache_max_mb * 2**20) if args.cache_max_mb is not None else None
        ),
        executor_mode=args.executor_mode,
        default_scale=args.scale,
    )
    server = CampaignHTTPServer(service, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        print(
            f"[repro-serve] listening on {server.url} "
            f"({args.workers} worker(s), max queue {args.max_queue}, "
            f"cache {args.cache_dir or 'disabled'})",
            flush=True,
        )
        # machine-readable bound-port line: with --port 0 the OS picks the
        # port, and scripts (the CI service smoke job) parse it from here
        # or from --port-file rather than assuming a fixed port is free
        print(f"[repro-serve] port={server.port}", flush=True)
        if args.port_file is not None:
            args.port_file.parent.mkdir(parents=True, exist_ok=True)
            args.port_file.write_text(f"{server.port}\n")
        assert server._server is not None
        await server._server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("[repro-serve] interrupted, shutting down", flush=True)
    return 0


# ----------------------------------------------------------------------
# submit
# ----------------------------------------------------------------------
def build_submit_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign submit",
        description="Submit a scenario to a running campaign server and "
        "stream its shard progress.",
    )
    parser.add_argument("scenario", help="registered scenario name")
    parser.add_argument(
        "--url",
        default=f"http://{DEFAULT_HOST}:{DEFAULT_PORT}",
        help="server base URL (default: %(default)s)",
    )
    parser.add_argument(
        "--scale",
        choices=("smoke", "benchmark", "paper"),
        default=None,
        help="campaign scale (default: the server's default)",
    )
    parser.add_argument(
        "--priority", type=int, default=0, help="job priority (higher runs first)"
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the server's campaign cache for this job",
    )
    parser.add_argument(
        "--no-coalesce",
        action="store_true",
        help="never attach to an identical in-flight job",
    )
    parser.add_argument(
        "--no-stream",
        action="store_true",
        help="skip the shard stream; just wait for the final result",
    )
    parser.add_argument(
        "--expect-digest",
        default=None,
        metavar="SHA256",
        help="fail (exit 1) unless the final dataset digest equals this "
        "(the CI smoke check pins the scenario-matrix digest here)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="per-request timeout in seconds (default: 600)",
    )
    return parser


def _request(url: str, *, data: Optional[bytes] = None, timeout: float = 600.0):
    request = urllib.request.Request(
        url,
        data=data,
        method="POST" if data is not None else "GET",
        headers={"Content-Type": "application/json"} if data is not None else {},
    )
    return urllib.request.urlopen(request, timeout=timeout)


def submit_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro submit``."""
    args = build_submit_parser().parse_args(argv)
    base = args.url.rstrip("/")
    payload = {
        "scenario": args.scenario,
        "priority": args.priority,
        "use_cache": not args.no_cache,
        "coalesce": not args.no_coalesce,
    }
    if args.scale is not None:
        payload["scale"] = args.scale
    try:
        with _request(
            f"{base}/jobs",
            data=json.dumps(payload).encode("utf-8"),
            timeout=args.timeout,
        ) as response:
            submitted = json.loads(response.read())
    except urllib.error.HTTPError as error:
        detail = error.read().decode("utf-8", "replace").strip()
        print(f"[repro-submit] rejected ({error.code}): {detail}", file=sys.stderr)
        return 1
    except urllib.error.URLError as error:
        print(
            f"[repro-submit] cannot reach {base}: {error.reason} "
            "(is 'python -m repro serve' running?)",
            file=sys.stderr,
        )
        return 1
    job_id = submitted["job_id"]
    attached = " (coalesced onto in-flight job)" if submitted.get("coalesced") else ""
    print(
        f"[repro-submit] {args.scenario} -> {job_id} "
        f"[{submitted['state']}]{attached}",
        flush=True,
    )

    final = None
    if not args.no_stream:
        with _request(f"{base}/jobs/{job_id}/stream", timeout=args.timeout) as stream:
            for line in stream:
                event = json.loads(line)
                if event.get("event") == "shard":
                    total = submitted.get("shards_total") or "?"
                    print(
                        f"[repro-submit]   shard {event['index'] + 1}/{total}: "
                        f"trial={event['trial']} process={event['process']} "
                        f"{event['n_samples']} samples "
                        f"digest={event['digest'][:16]}",
                        flush=True,
                    )
                elif event.get("event") == "done":
                    final = event
    if final is None:
        with _request(f"{base}/jobs/{job_id}/result", timeout=args.timeout) as response:
            final = json.loads(response.read())

    state = final.get("state")
    digest = final.get("digest")
    rate = final.get("samples_per_second") or 0.0
    print(
        f"[repro-submit] {job_id} finished: state={state} "
        f"samples={final.get('samples_done')} ({rate:,.0f} samples/s) "
        f"from_cache={final.get('from_cache')}",
        flush=True,
    )
    if state != "done":
        print(
            f"[repro-submit] job did not complete: {final.get('error', state)}",
            file=sys.stderr,
        )
        return 1
    print(f"[repro-submit] dataset digest: {digest}", flush=True)
    if args.expect_digest is not None and digest != args.expect_digest:
        print(
            f"[repro-submit] DIGEST MISMATCH: expected {args.expect_digest}, "
            f"got {digest}",
            file=sys.stderr,
        )
        return 1
    if args.expect_digest is not None:
        print("[repro-submit] digest matches the pinned value", flush=True)
    return 0


__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "build_serve_parser",
    "build_submit_parser",
    "serve_main",
    "submit_main",
]
