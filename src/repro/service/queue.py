"""The service scheduler: a bounded priority queue and its worker pool.

Two layers:

* :class:`JobQueue` — the admission-controlled priority queue.  ``put``
  either accepts a job or raises :class:`RejectedError` when the queue
  already holds ``max_depth`` jobs; the depth never grows past the
  configured bound (the "millions of users" stance: shed load explicitly
  at the front door rather than buffering unboundedly and falling over
  later).  Higher ``Job.priority`` runs earlier; equal priorities run in
  submission (FIFO) order.
* :class:`JobScheduler` — ``workers`` long-lived asyncio tasks pulling
  from the queue and awaiting a job handler (the service's execute
  coroutine).  Jobs cancelled while queued are skipped when they reach the
  queue head; running jobs cancel cooperatively between shards (see
  :mod:`repro.service.jobs`).
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Awaitable, Callable, List, Optional

from repro.service.jobs import Job, JobState


class RejectedError(RuntimeError):
    """Admission control rejected a submission (queue at max depth)."""

    def __init__(self, depth: int, max_depth: int) -> None:
        super().__init__(
            f"queue is full ({depth}/{max_depth} jobs queued); "
            "retry later or raise --max-queue"
        )
        self.depth = depth
        self.max_depth = max_depth


class JobQueue:
    """Priority queue with an explicit admission bound.

    Depth counts jobs *waiting* (accepted but not yet claimed by a
    worker); running jobs do not occupy queue slots.
    """

    def __init__(self, max_depth: int = 32) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = int(max_depth)
        self._heap: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self._seq = itertools.count()
        self._depth = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of jobs currently waiting in the queue."""
        return self._depth

    def put(self, job: Job) -> None:
        """Enqueue ``job`` or raise :class:`RejectedError` at max depth.

        Higher ``job.priority`` is served first; ties break FIFO via a
        monotonic sequence number.
        """
        if self._depth >= self.max_depth:
            raise RejectedError(self._depth, self.max_depth)
        self._depth += 1
        self._heap.put_nowait((-job.priority, next(self._seq), job))

    async def get(self) -> Job:
        """Claim the highest-priority waiting job (may be cancelled)."""
        _, _, job = await self._heap.get()
        self._depth -= 1
        return job

    def drain_waiting(self, predicate: Callable[[Job], bool]) -> List[Job]:
        """Synchronously claim every waiting job matching ``predicate``.

        Non-matching jobs are re-queued with their original priority and
        sequence keys, so their relative order is untouched.  Must run on
        the event-loop thread with no ``await`` in between (the queue is
        not locked); the grouped campaign execution path uses this to pull
        compatible jobs out of the queue the moment one of them is claimed
        by a worker.
        """
        claimed: List[Job] = []
        kept = []
        while True:
            try:
                entry = self._heap.get_nowait()
            except asyncio.QueueEmpty:
                break
            if predicate(entry[2]):
                claimed.append(entry[2])
            else:
                kept.append(entry)
        for entry in kept:
            self._heap.put_nowait(entry)
        self._depth -= len(claimed)
        return claimed

    def __len__(self) -> int:
        return self._depth


class JobScheduler:
    """Bounded worker pool draining a :class:`JobQueue`.

    Parameters
    ----------
    handler:
        ``async handler(job)`` executing one claimed job end to end
        (including marking it done/failed/cancelled).  The scheduler only
        guards against handler crashes so a worker task never dies.
    workers:
        Number of concurrent jobs (one asyncio task each; the service
        pairs them with an equal-sized thread pool for the synchronous
        shard execution).
    max_queue:
        Admission bound forwarded to :class:`JobQueue`.
    """

    def __init__(
        self,
        handler: Callable[[Job], Awaitable[None]],
        *,
        workers: int = 2,
        max_queue: int = 32,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self.queue = JobQueue(max_queue)
        self._handler = handler
        self._tasks: List[asyncio.Task] = []
        self._running = 0

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._tasks)

    @property
    def running(self) -> int:
        """Jobs currently being executed by a worker."""
        return self._running

    @property
    def depth(self) -> int:
        return self.queue.depth

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if self._tasks:
            return
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"campaign-worker-{i}")
            for i in range(self.workers)
        ]

    async def stop(self) -> None:
        """Cancel the worker tasks and wait for them to unwind."""
        tasks, self._tasks = self._tasks, []
        for task in tasks:
            task.cancel()
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass

    def submit(self, job: Job) -> None:
        """Admit ``job`` to the queue (raises :class:`RejectedError`)."""
        self.queue.put(job)

    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        while True:
            job = await self.queue.get()
            if job.finished:
                continue  # cancelled while queued
            if job.state is not JobState.QUEUED:
                continue  # claimed by a grouped execution while waiting
            if job.cancel_requested.is_set():
                job._mark_cancelled()
                continue
            self._running += 1
            try:
                await self._handler(job)
            except asyncio.CancelledError:
                raise
            except BaseException as error:  # defensive: keep the worker alive
                job._fail(error)
            finally:
                self._running -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobScheduler(workers={self.workers}, depth={self.depth}, "
            f"running={self.running}, max_queue={self.queue.max_depth})"
        )
