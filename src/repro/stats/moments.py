"""Vectorised sample moments.

All functions accept an array of shape ``(..., n)`` and reduce over the last
axis, so a ``(16000, 48)`` matrix of process-iteration samples is handled in
one call.  Definitions follow the "biased" sample moments used by the
classical normality-test literature (Fisher–Pearson ``g1`` skewness,
``g2``-style kurtosis without bias correction), matching
``scipy.stats.skew(..., bias=True)`` and ``scipy.stats.kurtosis(...,
fisher=False, bias=True)``.
"""

from __future__ import annotations

import numpy as np


def _as_float_array(x) -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64)
    if arr.shape[-1] < 1:
        raise ValueError("need at least one sample along the last axis")
    return arr


def central_moment(x, order: int) -> np.ndarray:
    """``order``-th central sample moment along the last axis."""
    arr = _as_float_array(x)
    mean = arr.mean(axis=-1, keepdims=True)
    return np.mean((arr - mean) ** order, axis=-1)


def skewness(x) -> np.ndarray:
    """Fisher–Pearson coefficient of skewness ``g1 = m3 / m2**1.5``."""
    arr = _as_float_array(x)
    m2 = central_moment(arr, 2)
    m3 = central_moment(arr, 3)
    safe_m2 = np.where(m2 > 0, m2, 1.0)
    return np.where(m2 > 0, m3 / np.power(safe_m2, 1.5), 0.0)


def kurtosis(x, *, fisher: bool = False) -> np.ndarray:
    """Sample kurtosis ``b2 = m4 / m2**2`` (Pearson; subtract 3 for Fisher)."""
    arr = _as_float_array(x)
    m2 = central_moment(arr, 2)
    m4 = central_moment(arr, 4)
    safe_m2 = np.where(m2 > 0, m2, 1.0)
    b2 = np.where(m2 > 0, m4 / (safe_m2 * safe_m2), 0.0)
    return b2 - 3.0 if fisher else b2


def skewness_kurtosis(x) -> "tuple[np.ndarray, np.ndarray]":
    """Skewness ``g1`` and Pearson kurtosis ``b2`` from one deviations pass.

    Bit-identical to calling :func:`skewness` and :func:`kurtosis`
    separately: the shared mean/deviation tensor goes through exactly the
    same ``**``/``mean`` operations, only computed once instead of five
    times.  This is the moment kernel of the fused normality battery.
    """
    arr = _as_float_array(x)
    mean = arr.mean(axis=-1, keepdims=True)
    deviations = arr - mean
    m2 = np.mean(deviations ** 2, axis=-1)
    m3 = np.mean(deviations ** 3, axis=-1)
    m4 = np.mean(deviations ** 4, axis=-1)
    safe_m2 = np.where(m2 > 0, m2, 1.0)
    b1 = np.where(m2 > 0, m3 / np.power(safe_m2, 1.5), 0.0)
    b2 = np.where(m2 > 0, m4 / (safe_m2 * safe_m2), 0.0)
    return b1, b2


def standardize(x, *, ddof: int = 1) -> np.ndarray:
    """Standardise samples along the last axis: ``(x - mean) / std``.

    Groups with zero variance are returned as zeros (they are degenerate for
    every normality test and handled explicitly by the callers).
    """
    arr = _as_float_array(x)
    mean = arr.mean(axis=-1, keepdims=True)
    std = arr.std(axis=-1, ddof=ddof, keepdims=True)
    safe = np.where(std > 0, std, 1.0)
    out = (arr - mean) / safe
    return np.where(std > 0, out, 0.0)


def coefficient_of_variation(x) -> np.ndarray:
    """Standard deviation divided by the mean (last axis)."""
    arr = _as_float_array(x)
    mean = arr.mean(axis=-1)
    std = arr.std(axis=-1, ddof=1) if arr.shape[-1] > 1 else np.zeros_like(mean)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(mean != 0, std / mean, 0.0)
