"""Quantile sketches: P² marker estimation and a mergeable percentile sketch.

The streaming analysis passes need per-group percentiles without holding the
merged campaign in memory.  Two tools are provided:

* :class:`P2Quantile` — the classic Jain/Chlamtac P² estimator: five markers
  tracking one quantile of a stream in O(1) memory.  It is *not* mergeable
  (marker positions depend on arrival order), so the shard-parallel passes
  use it only for single-stream consumers; it is exposed here because it is
  the textbook baseline the mergeable sketch is validated against.
* :class:`PercentileSketch` — the accumulator the passes actually use.  In
  ``exact`` mode it stores every sample (the bit-identical fallback: a
  quantile query equals ``np.percentile`` over the pooled samples,
  regardless of shard order).  In compressed mode it is a KLL-style
  multi-level compactor: retained values live on levels of geometrically
  decaying capacity, where a level-``h`` value stands for ``2**h`` original
  samples.  A level over its capacity is sorted and every other element is
  promoted one level up (the deterministic even/odd choice alternates via a
  per-level parity counter), so the total retained state stays at or below
  ``capacity`` values while quantile queries interpolate the *weighted* CDF
  of the survivors.  The sketch is exact until the first compaction (the
  bottom level's budget is the full capacity), always answers ``minimum`` /
  ``maximum`` exactly (tracked as scalars), and merging is level-wise
  concatenation plus the same compaction sweep — rank error stays bounded
  by the compaction schedule (roughly ``levels / capacity`` of rank, at or
  below the old strided recompression's error; property-tested).
* :class:`BoundedTopK` — a keyed companion: a bounded, mergeable pool of
  ``(value, key)`` candidates spanning the stream's value range, for
  queries that must answer with a *key* (e.g. the exemplar
  process-iteration whose laggard gap is closest to the class median,
  Figures 5/7/9) without retaining every group.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


class P2Quantile:
    """Jain & Chlamtac's P² single-quantile estimator (five markers).

    >>> sketch = P2Quantile(0.5)
    >>> for x in data: sketch.update(x)
    >>> sketch.value  # approximate median
    """

    __slots__ = ("q", "n", "_initial", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = float(q)
        self.n = 0
        self._initial: List[float] = []
        self._heights = np.zeros(5)
        self._positions = np.arange(1.0, 6.0)
        self._desired = np.array([1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0])
        self._rates = np.array([0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0])

    # ------------------------------------------------------------------
    def update(self, value: float) -> "P2Quantile":
        """Observe one sample (returns ``self``)."""
        x = float(value)
        self.n += 1
        if self.n <= 5:
            self._initial.append(x)
            if self.n == 5:
                self._heights = np.sort(np.array(self._initial))
            return self
        heights = self._heights
        if x < heights[0]:
            heights[0] = x
            cell = 0
        elif x >= heights[4]:
            heights[4] = x
            cell = 3
        else:
            cell = int(np.searchsorted(heights, x, side="right")) - 1
            cell = min(cell, 3)
        self._positions[cell + 1 :] += 1.0
        self._desired += self._rates
        # adjust the three interior markers with the parabolic (P²) formula
        for i in (1, 2, 3):
            d = self._desired[i] - self._positions[i]
            left = self._positions[i] - self._positions[i - 1]
            right = self._positions[i + 1] - self._positions[i]
            if (d >= 1.0 and right > 1.0) or (d <= -1.0 and left > 1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                self._positions[i] += step
        return self

    def update_batch(self, values: Sequence[float]) -> "P2Quantile":
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.update(float(value))
        return self

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (pos[j] - pos[i])

    # ------------------------------------------------------------------
    @property
    def value(self) -> float:
        """Current estimate of the tracked quantile."""
        if self.n == 0:
            raise ValueError("no samples observed")
        if self.n <= 5:
            return float(
                np.percentile(np.array(self._initial), 100.0 * self.q)
            )
        return float(self._heights[2])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"P2Quantile(q={self.q}, n={self.n})"


class PercentileSketch:
    """Mergeable KLL-style quantile sketch with an exact fallback.

    Parameters
    ----------
    capacity:
        Maximum number of retained support values in compressed mode,
        across all compactor levels.  While the total sample count stays at
        or below the capacity the sketch *is* exact (the bottom level's
        budget is the full capacity, so nothing compacts before then).
    exact:
        Keep every sample (unbounded memory, bit-identical quantiles —
        ``quantile`` equals ``np.percentile`` over the pooled samples
        independent of shard order).

    Compressed mode keeps values on *levels*: a value on level ``h`` stands
    for ``2**h`` of the original samples.  When level ``h`` exceeds its
    budget it is sorted and every other element is promoted to level
    ``h + 1`` (the other half is discarded); the even/odd choice alternates
    deterministically via a per-level parity counter, so equal states fold
    equal streams identically — no randomness, reproducible campaigns.
    Level budgets decay geometrically from the top (the KLL schedule),
    which is what bounds both the state and the rank error; compaction is
    *lazy* — nothing is discarded while the total retained count fits in
    ``capacity``, keeping the sketch as accurate as the budget allows.
    """

    __slots__ = (
        "capacity",
        "exact",
        "n",
        "_support",
        "_levels",
        "_parity",
        "_min",
        "_max",
    )

    #: per-level budget decay of the KLL schedule (top level is largest)
    _DECAY = 0.5

    def __init__(self, capacity: int = 2048, *, exact: bool = False) -> None:
        if capacity < 8:
            raise ValueError("capacity must be >= 8")
        self.capacity = int(capacity)
        self.exact = bool(exact)
        self.n = 0
        self._support = np.empty(0, dtype=np.float64)
        self._levels: List[np.ndarray] = [np.empty(0, dtype=np.float64)]
        self._parity: List[int] = [0]
        self._min = float("inf")
        self._max = float("-inf")

    # ------------------------------------------------------------------
    def update(self, samples) -> "PercentileSketch":
        """Fold a batch of samples in (returns ``self``)."""
        arr = np.asarray(samples, dtype=np.float64).ravel()
        if arr.size == 0:
            return self
        self.n += int(arr.size)
        if self.exact:
            self._support = np.concatenate([self._support, arr])
            return self
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))
        self._levels[0] = np.concatenate([self._levels[0], arr])
        self._compact()
        return self

    def merge(self, other: "PercentileSketch") -> "PercentileSketch":
        """New sketch summarising the union of both sample sets."""
        if self.exact != other.exact:
            raise ValueError("cannot merge exact and compressed sketches")
        merged = PercentileSketch(
            min(self.capacity, other.capacity), exact=self.exact
        )
        merged.n = self.n + other.n
        if self.exact:
            merged._support = np.concatenate([self._support, other._support])
            return merged
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        empty = np.empty(0, dtype=np.float64)
        for h in range(max(len(self._levels), len(other._levels))):
            mine = self._levels[h] if h < len(self._levels) else empty
            theirs = other._levels[h] if h < len(other._levels) else empty
            if h == len(merged._levels):
                merged._levels.append(empty)
                merged._parity.append(0)
            merged._levels[h] = np.concatenate([mine, theirs])
            merged._parity[h] = (
                self._parity[h] if h < len(self._parity) else 0
            ) + (other._parity[h] if h < len(other._parity) else 0)
        merged._compact()
        return merged

    # ------------------------------------------------------------------
    def _level_budget(self, h: int, n_levels: int) -> int:
        """Retained-value budget of level ``h`` with ``n_levels`` in play.

        With one level the whole capacity is the budget (the exact-until-
        first-compaction guarantee); afterwards budgets decay geometrically
        from the top so the total stays within ``capacity``
        (``sum cap*(1-c)*c^d <= cap``).
        """
        if n_levels <= 1:
            return self.capacity
        top = max(int(np.ceil(self.capacity * (1.0 - self._DECAY))), 4)
        budget = int(np.ceil(top * self._DECAY ** (n_levels - 1 - h)))
        return max(budget, 2)

    def _compact_level(self, h: int) -> None:
        """Promote half of level ``h`` one level up, discarding the rest."""
        buf = np.sort(self._levels[h], kind="stable")
        parity = self._parity[h]
        self._parity[h] = parity + 1
        keep = buf[:0]
        if buf.size % 2:
            # odd buffer: hold one element back (alternating ends) so the
            # promoted pairs cover the rest exactly — weight is conserved
            if parity & 1:
                keep, buf = buf[:1], buf[1:]
            else:
                keep, buf = buf[-1:], buf[:-1]
        promoted = buf[(parity & 1) :: 2]
        self._levels[h] = keep
        if h + 1 == len(self._levels):
            self._levels.append(np.empty(0, dtype=np.float64))
            self._parity.append(0)
        self._levels[h + 1] = np.concatenate([self._levels[h + 1], promoted])

    def _compact(self) -> None:
        """Lazy compaction sweep (the space-efficient KLL variant).

        Nothing compacts while the total retained count fits in
        ``capacity`` — the sketch stays as full (and as accurate) as the
        budget allows.  Over capacity, the lowest over-budget level is
        compacted first (cheap: its survivors carry the smallest weights);
        if every level is individually within budget, the lowest level
        holding at least a pair is compacted to restore the invariant.
        """
        while sum(len(level) for level in self._levels) > self.capacity:
            n_levels = len(self._levels)
            pick = None
            for h in range(n_levels):
                if len(self._levels[h]) > self._level_budget(h, n_levels):
                    pick = h
                    break
            if pick is None:
                for h, level in enumerate(self._levels):
                    if len(level) >= 2:
                        pick = h
                        break
            if pick is None:  # pragma: no cover - every level is a singleton
                break
            self._compact_level(pick)

    def _weighted(self) -> Tuple[np.ndarray, np.ndarray]:
        """Retained values sorted ascending with their sample weights."""
        values = np.concatenate(self._levels)
        weights = np.concatenate(
            [
                np.full(level.size, 1 << h, dtype=np.int64)
                for h, level in enumerate(self._levels)
            ]
        )
        order = np.argsort(values, kind="stable")
        return values[order], weights[order]

    # ------------------------------------------------------------------
    def quantile(self, percentile) -> np.ndarray:
        """Approximate percentile(s) of the accumulated samples (0..100).

        Exact mode — and compressed mode before the first compaction —
        returns exactly ``np.percentile`` of the pooled samples.  After
        compaction the query interpolates the weighted CDF of the retained
        values (each level-``h`` survivor counts ``2**h`` samples), with
        the extremes pinned to the exact minimum/maximum.
        """
        if self.n == 0:
            raise ValueError("no samples observed")
        if self.exact:
            return np.percentile(self._support, percentile)
        if len(self._levels) == 1:
            # never compacted: every sample is retained at weight one
            return np.percentile(self._levels[0], percentile)
        q = np.asarray(percentile, dtype=np.float64)
        if np.any((q < 0.0) | (q > 100.0)):
            raise ValueError("percentiles must be in [0, 100]")
        values, weights = self._weighted()
        # each survivor stands for a block of `weight` consecutive ranks;
        # anchor it at the block's midpoint rank and interpolate linearly,
        # with the exact extremes pinned at ranks 0 and n-1
        cum = np.cumsum(weights)
        mids = cum - (weights + 1.0) / 2.0
        ranks = np.concatenate([[-0.5], mids, [self.n - 0.5]])
        anchors = np.concatenate([[self._min], values, [self._max]])
        result = np.interp(q / 100.0 * (self.n - 1), ranks, anchors)
        if q.ndim == 0:
            return result[()]
        return result

    @property
    def support(self) -> np.ndarray:
        """The retained (sorted in compressed mode) support values."""
        if self.exact:
            return self._support
        values = np.sort(np.concatenate(self._levels), kind="stable")
        if values.size:
            values[0] = min(float(values[0]), self._min)
            values[-1] = max(float(values[-1]), self._max)
        return values

    @property
    def minimum(self) -> float:
        if self.exact:
            return float(self._support.min())
        if self.n == 0:
            raise ValueError("no samples observed")
        return float(self._min)

    @property
    def maximum(self) -> float:
        if self.exact:
            return float(self._support.max())
        if self.n == 0:
            raise ValueError("no samples observed")
        return float(self._max)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "exact" if self.exact else f"capacity={self.capacity}"
        return f"PercentileSketch(n={self.n}, {mode})"


class BoundedTopK:
    """Bounded, mergeable pool of ``(value, key)`` candidates.

    Keeps at most ``capacity`` candidates sorted by value; over capacity it
    recompresses to evenly spaced order statistics of the pooled values
    (always pinning the exact minimum and maximum), carrying each retained
    value's key along.  The pool therefore spans the full value range with
    roughly quantile-spaced candidates, so :meth:`nearest` — the key whose
    value is closest to a target, e.g. a class-median laggard gap — is off
    by at most one quantile spacing (≈ ``n / capacity`` ranks).

    While the stream holds at most ``capacity`` candidates the pool is
    exact.  Keys are kept opaque (any picklable object; the analysis passes
    use process-iteration key tuples).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 4:
            raise ValueError("capacity must be >= 4")
        self.capacity = int(capacity)
        self.n = 0
        self._values = np.empty(0, dtype=np.float64)
        self._keys: List[object] = []

    # ------------------------------------------------------------------
    def update(self, values, keys: Sequence[object]) -> "BoundedTopK":
        """Fold a batch of candidates in (returns ``self``)."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        keys = list(keys)
        if arr.size != len(keys):
            raise ValueError(
                f"values and keys disagree ({arr.size} vs {len(keys)})"
            )
        if arr.size == 0:
            return self
        self.n += int(arr.size)
        self._absorb(np.concatenate([self._values, arr]), self._keys + keys)
        return self

    def merge(self, other: "BoundedTopK") -> "BoundedTopK":
        """New pool summarising the union of both candidate sets."""
        merged = BoundedTopK(min(self.capacity, other.capacity))
        merged.n = self.n + other.n
        merged._absorb(
            np.concatenate([self._values, other._values]),
            self._keys + other._keys,
        )
        return merged

    def _absorb(self, values: np.ndarray, keys: List[object]) -> None:
        order = np.argsort(values, kind="stable")
        self._values = values[order]
        self._keys = [keys[i] for i in order]
        if len(self._values) > self.capacity:
            idx = np.round(
                np.linspace(0, len(self._values) - 1, self.capacity)
            ).astype(np.int64)
            self._values = self._values[idx]
            self._keys = [self._keys[i] for i in idx]

    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """Retained candidate values, ascending."""
        return self._values

    @property
    def keys(self) -> List[object]:
        """Retained candidate keys, aligned with :attr:`values`."""
        return list(self._keys)

    def quantile(self, percentile) -> np.ndarray:
        """Approximate percentile(s) of the candidate values (0..100)."""
        if self.n == 0:
            raise ValueError("no candidates observed")
        return np.percentile(self._values, percentile)

    def nearest(self, target: float):
        """The key whose value is closest to ``target`` (``None`` if empty)."""
        if len(self._values) == 0:
            return None
        best = int(np.argmin(np.abs(self._values - float(target))))
        return self._keys[best]

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BoundedTopK(n={self.n}, retained={len(self._values)}, "
            f"capacity={self.capacity})"
        )
