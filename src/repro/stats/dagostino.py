"""D'Agostino's K² omnibus test for normality (batch vectorised).

The omnibus statistic combines a transformed skewness statistic (D'Agostino
1971, the test cited by the paper) with a transformed kurtosis statistic
(Anscombe & Glynn 1983):

.. math:: K^2 = Z_1(\\sqrt{b_1})^2 + Z_2(b_2)^2 \\sim \\chi^2_2

Implementation follows D'Agostino, Belanger & D'Agostino Jr. (1990), the same
formulation as ``scipy.stats.normaltest`` / ``skewtest`` / ``kurtosistest``;
the test suite asserts agreement with SciPy to ~1e-10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import chdtrc, ndtr  # type: ignore[import-untyped]

from repro.stats.moments import kurtosis, skewness


@dataclass(frozen=True)
class DAgostinoResult:
    """Outcome of the K² omnibus test for a batch of groups.

    Attributes
    ----------
    statistic:
        K² statistic per group.
    pvalue:
        Two-sided p-value per group (χ² with 2 degrees of freedom).
    z_skew, z_kurtosis:
        The component Z statistics.
    """

    statistic: np.ndarray
    pvalue: np.ndarray
    z_skew: np.ndarray
    z_kurtosis: np.ndarray

    def passes(self, alpha: float = 0.05) -> np.ndarray:
        """Boolean mask of groups that *fail to reject* normality at ``alpha``."""
        return self.pvalue > alpha


def skewness_test(x, *, b1=None) -> tuple[np.ndarray, np.ndarray]:
    """D'Agostino's transformed skewness statistic ``Z1`` and its p-value.

    Requires at least 8 samples per group (as SciPy does).  ``b1`` accepts
    a precomputed skewness array (the fused battery shares one deviations
    pass across tests); passing it changes nothing numerically because
    :func:`~repro.stats.moments.skewness` is deterministic.
    """
    arr = np.asarray(x, dtype=np.float64)
    n = arr.shape[-1]
    if n < 8:
        raise ValueError(f"skewness test requires n >= 8 samples, got {n}")
    if b1 is None:
        b1 = skewness(arr)
    y = b1 * np.sqrt(((n + 1.0) * (n + 3.0)) / (6.0 * (n - 2.0)))
    beta2 = (
        3.0
        * (n * n + 27.0 * n - 70.0)
        * (n + 1.0)
        * (n + 3.0)
        / ((n - 2.0) * (n + 5.0) * (n + 7.0) * (n + 9.0))
    )
    w2 = -1.0 + np.sqrt(2.0 * (beta2 - 1.0))
    delta = 1.0 / np.sqrt(0.5 * np.log(w2))
    alpha = np.sqrt(2.0 / (w2 - 1.0))
    y = np.where(y == 0, 1.0, y)  # keep log argument finite; sign restored below
    z = delta * np.log(y / alpha + np.sqrt((y / alpha) ** 2 + 1.0))
    z = np.where(b1 == 0, 0.0, z)
    pvalue = 2.0 * (1.0 - ndtr(np.abs(z)))
    return z, pvalue


def kurtosis_test(x, *, b2=None) -> tuple[np.ndarray, np.ndarray]:
    """Anscombe–Glynn transformed kurtosis statistic ``Z2`` and its p-value.

    Requires at least 5 samples per group (as SciPy does; SciPy warns for
    n < 20, we simply compute).  ``b2`` accepts a precomputed Pearson
    kurtosis array (see :func:`skewness_test`).
    """
    arr = np.asarray(x, dtype=np.float64)
    n = arr.shape[-1]
    if n < 5:
        raise ValueError(f"kurtosis test requires n >= 5 samples, got {n}")
    if b2 is None:
        b2 = kurtosis(arr, fisher=False)
    expected = 3.0 * (n - 1.0) / (n + 1.0)
    variance = (
        24.0 * n * (n - 2.0) * (n - 3.0) / ((n + 1.0) ** 2 * (n + 3.0) * (n + 5.0))
    )
    x_std = (b2 - expected) / np.sqrt(variance)
    sqrt_beta1 = (
        6.0
        * (n * n - 5.0 * n + 2.0)
        / ((n + 7.0) * (n + 9.0))
        * np.sqrt(6.0 * (n + 3.0) * (n + 5.0) / (n * (n - 2.0) * (n - 3.0)))
    )
    a = 6.0 + 8.0 / sqrt_beta1 * (
        2.0 / sqrt_beta1 + np.sqrt(1.0 + 4.0 / sqrt_beta1**2)
    )
    term1 = 1.0 - 2.0 / (9.0 * a)
    denom = 1.0 + x_std * np.sqrt(2.0 / (a - 4.0))
    # cube root preserving sign, guarding the denom == 0 degenerate case
    safe_denom = np.where(denom == 0, 1.0, denom)
    ratio = (1.0 - 2.0 / a) / safe_denom
    term2 = np.sign(ratio) * np.abs(ratio) ** (1.0 / 3.0)
    z = (term1 - term2) / np.sqrt(2.0 / (9.0 * a))
    z = np.where(denom == 0, 0.0, z)
    pvalue = 2.0 * (1.0 - ndtr(np.abs(z)))
    return z, pvalue


def dagostino_k2(x, *, b1=None, b2=None) -> DAgostinoResult:
    """D'Agostino–Pearson K² omnibus test along the last axis.

    Parameters
    ----------
    x:
        Array of shape ``(..., n)`` with ``n >= 8`` samples per group.
    b1, b2:
        Optional precomputed skewness / Pearson kurtosis arrays (the fused
        battery path shares one deviations pass across both component
        tests); omitting them reproduces the standalone computation.

    Returns
    -------
    DAgostinoResult
        Per-group statistic, p-value and component Z scores.
    """
    arr = np.asarray(x, dtype=np.float64)
    z_skew, _ = skewness_test(arr, b1=b1)
    z_kurt, _ = kurtosis_test(arr, b2=b2)
    k2 = z_skew * z_skew + z_kurt * z_kurt
    pvalue = chdtrc(2.0, k2)
    return DAgostinoResult(
        statistic=np.asarray(k2),
        pvalue=np.asarray(pvalue),
        z_skew=np.asarray(z_skew),
        z_kurtosis=np.asarray(z_kurt),
    )
