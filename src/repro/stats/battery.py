"""The three-test normality battery used throughout the paper's §4.1.

Table 1 reports, per application, the percentage of process-iteration groups
that *pass* (fail to reject) each of D'Agostino, Shapiro–Wilk and
Anderson–Darling at 5 % significance.  :class:`NormalityBattery` runs the
three batch tests on a ``(groups, n)`` matrix and returns a
:class:`NormalityReport` that knows how to express itself as a Table-1 row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.stats.anderson import anderson_darling
from repro.stats.dagostino import dagostino_k2
from repro.stats.moments import skewness_kurtosis
from repro.stats.shapiro import shapiro_wilk

#: Canonical test names, in the order Table 1 lists them.
TEST_NAMES: Tuple[str, str, str] = ("dagostino", "shapiro_wilk", "anderson_darling")

#: Human-readable labels matching the paper's table.
TEST_LABELS: Dict[str, str] = {
    "dagostino": "D'Agostino",
    "shapiro_wilk": "Shapiro-Wilk",
    "anderson_darling": "Anderson-Darling",
}


@dataclass(frozen=True)
class TestOutcome:
    """Result of one test applied to a batch of groups."""

    name: str
    statistic: np.ndarray
    pvalue: np.ndarray
    passed: np.ndarray

    @property
    def pass_rate(self) -> float:
        """Fraction of groups that failed to reject normality."""
        return float(np.mean(self.passed))

    @property
    def n_groups(self) -> int:
        return int(np.size(self.passed))


@dataclass
class NormalityReport:
    """Aggregated outcome of the battery on one batch of groups."""

    alpha: float
    n_groups: int
    group_size: int
    outcomes: Dict[str, TestOutcome] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def pass_rate(self, test: str) -> float:
        """Pass rate of one test (``'dagostino'`` etc.)."""
        return self.outcomes[test].pass_rate

    def pass_rates(self) -> Dict[str, float]:
        """Pass rate of every test, keyed by canonical name."""
        return {name: outcome.pass_rate for name, outcome in self.outcomes.items()}

    def rejected_all(self) -> bool:
        """True when every test rejects normality for every group.

        This is the §4.1 application-level / application-iteration-level
        outcome for MiniFE and MiniMD ("results ... led to rejecting the null
        hypothesis").
        """
        return all(outcome.pass_rate == 0.0 for outcome in self.outcomes.values())

    def unanimous_pass(self) -> np.ndarray:
        """Mask of groups passed by *all* tests."""
        masks = [outcome.passed for outcome in self.outcomes.values()]
        return np.logical_and.reduce(masks)

    def table_row(self, label: str = "") -> Dict[str, object]:
        """One row of Table 1: percentage of groups passing each test."""
        row: Dict[str, object] = {"application": label}
        for name in TEST_NAMES:
            row[TEST_LABELS[name]] = 100.0 * self.pass_rate(name)
        return row

    def summary(self) -> str:
        """Readable multi-line summary."""
        lines = [
            f"normality battery: {self.n_groups} group(s) of {self.group_size} "
            f"samples, alpha={self.alpha}"
        ]
        for name in TEST_NAMES:
            outcome = self.outcomes[name]
            lines.append(
                f"  {TEST_LABELS[name]:<17}: {100 * outcome.pass_rate:6.2f}% pass"
            )
        return "\n".join(lines)


class NormalityBattery:
    """Runs the paper's three normality tests on batches of sample groups.

    Parameters
    ----------
    alpha:
        Significance level; the paper uses 5 %.
    tests:
        Subset of :data:`TEST_NAMES` to run (all three by default).
    """

    def __init__(
        self, alpha: float = 0.05, tests: Optional[List[str]] = None
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.alpha = alpha
        self.tests = list(tests) if tests is not None else list(TEST_NAMES)
        unknown = set(self.tests) - set(TEST_NAMES)
        if unknown:
            raise ValueError(f"unknown tests: {sorted(unknown)}")

    # ------------------------------------------------------------------
    def run(self, groups) -> NormalityReport:
        """Run the battery.

        Parameters
        ----------
        groups:
            Array of shape ``(n_groups, n)`` (or ``(n,)`` for a single group)
            of samples; every row is tested independently.
        """
        arr = np.asarray(groups, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        if arr.ndim != 2:
            raise ValueError("groups must be 1-D or 2-D")
        if arr.shape[-1] < 8:
            raise ValueError(
                f"the battery requires at least 8 samples per group, got {arr.shape[-1]}"
            )
        report = NormalityReport(
            alpha=self.alpha, n_groups=arr.shape[0], group_size=arr.shape[1]
        )
        for name in self.tests:
            report.outcomes[name] = self._run_single(name, arr)
        return report

    # ------------------------------------------------------------------
    def run_fused(self, groups) -> NormalityReport:
        """Run the battery sharing intermediates across the three tests.

        One deviations pass supplies skewness and kurtosis to D'Agostino,
        and one ``np.sort`` of the sample matrix is shared by Shapiro–Wilk
        and Anderson–Darling — the dominant costs when the battery runs on
        a whole campaign's group matrix at once (the columnar analysis
        path).  Every shared intermediate is produced by exactly the
        operations the tests would perform themselves, so the outcomes are
        bit-identical to :meth:`run`.
        """
        arr = np.asarray(groups, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[np.newaxis, :]
        if arr.ndim != 2:
            raise ValueError("groups must be 1-D or 2-D")
        if arr.shape[-1] < 8:
            raise ValueError(
                f"the battery requires at least 8 samples per group, got {arr.shape[-1]}"
            )
        b1 = b2 = sorted_x = None
        if "dagostino" in self.tests:
            b1, b2 = skewness_kurtosis(arr)
        if "shapiro_wilk" in self.tests or "anderson_darling" in self.tests:
            sorted_x = np.sort(arr, axis=-1)
        report = NormalityReport(
            alpha=self.alpha, n_groups=arr.shape[0], group_size=arr.shape[1]
        )
        for name in self.tests:
            report.outcomes[name] = self._run_single(
                name, arr, b1=b1, b2=b2, sorted_x=sorted_x
            )
        return report

    # ------------------------------------------------------------------
    def _run_single(
        self,
        name: str,
        arr: np.ndarray,
        *,
        b1: Optional[np.ndarray] = None,
        b2: Optional[np.ndarray] = None,
        sorted_x: Optional[np.ndarray] = None,
    ) -> TestOutcome:
        if name == "dagostino":
            result = dagostino_k2(arr, b1=b1, b2=b2)
            passed = result.passes(self.alpha)
            return TestOutcome(name, result.statistic, result.pvalue, passed)
        if name == "shapiro_wilk":
            result = shapiro_wilk(arr, sorted_x=sorted_x)
            passed = result.passes(self.alpha)
            return TestOutcome(name, result.statistic, result.pvalue, passed)
        if name == "anderson_darling":
            result = anderson_darling(arr, sorted_x=sorted_x)
            passed = result.passes(self.alpha)
            return TestOutcome(name, result.statistic, result.pvalue, passed)
        raise ValueError(f"unknown test {name!r}")
