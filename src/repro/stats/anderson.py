"""Anderson–Darling test for normality (batch vectorised).

Implements the EDF statistic of Stephens (1974) — the reference the paper
cites — for the composite hypothesis that the data come from a normal
distribution with unknown mean and variance (Stephens' "case 3"):

.. math::

    A^2 = -n - \\frac{1}{n}\\sum_{i=1}^{n} (2i-1)
          \\left[\\ln \\Phi(y_{(i)}) + \\ln(1-\\Phi(y_{(n+1-i)}))\\right]

with the small-sample correction ``A*² = A² (1 + 0.75/n + 2.25/n²)``.

Two decision interfaces are provided, because the paper reports the 5 %
significance level:

* :meth:`AndersonDarlingResult.passes` — compare ``A*²`` against Stephens'
  critical value table (identical to ``scipy.stats.anderson``).
* ``pvalue`` — the D'Agostino & Stephens (1986) approximation, convenient for
  plotting and for the battery's uniform interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from scipy.special import ndtr  # type: ignore[import-untyped]


#: Stephens (1974) critical values of A*² for the normal case with estimated
#: parameters, keyed by significance level in percent.
CRITICAL_VALUES: Dict[float, float] = {
    15.0: 0.576,
    10.0: 0.656,
    5.0: 0.787,
    2.5: 0.918,
    1.0: 1.092,
}


@dataclass(frozen=True)
class AndersonDarlingResult:
    """Outcome of the Anderson–Darling test for a batch of groups.

    Attributes
    ----------
    statistic:
        The corrected statistic ``A*²`` per group.
    raw_statistic:
        The uncorrected ``A²``.
    pvalue:
        Approximate p-value (D'Agostino & Stephens 1986).
    """

    statistic: np.ndarray
    raw_statistic: np.ndarray
    pvalue: np.ndarray

    def passes(self, alpha: float = 0.05) -> np.ndarray:
        """Groups that *fail to reject* normality at significance ``alpha``.

        Uses Stephens' critical-value table when ``alpha`` matches a tabulated
        level (as the paper's 5 % level does), otherwise the approximate
        p-value.
        """
        level = alpha * 100.0
        for key, crit in CRITICAL_VALUES.items():
            if abs(level - key) < 1e-9:
                return self.statistic < crit
        return self.pvalue > alpha


def _approximate_pvalue(a2_star: np.ndarray) -> np.ndarray:
    """D'Agostino & Stephens (1986, table 4.9) p-value approximation.

    The published quadratic-in-``A*²`` fit is only meaningful for moderate
    statistics; beyond ``A*² = 10`` the p-value is far below double precision
    anyway, so the statistic is clamped there to keep the formula monotone
    (without the clamp the quadratic term would eventually *grow* again and
    overflow).
    """
    a = np.minimum(np.asarray(a2_star, dtype=np.float64), 10.0)
    p = np.empty_like(a)
    hi = a >= 0.6
    mid = (a >= 0.34) & ~hi
    low = (a >= 0.2) & ~hi & ~mid
    tiny = a < 0.2
    p[hi] = np.exp(1.2937 - 5.709 * a[hi] + 0.0186 * a[hi] ** 2)
    p[mid] = np.exp(0.9177 - 4.279 * a[mid] - 1.38 * a[mid] ** 2)
    p[low] = 1.0 - np.exp(-8.318 + 42.796 * a[low] - 59.938 * a[low] ** 2)
    p[tiny] = 1.0 - np.exp(-13.436 + 101.14 * a[tiny] - 223.73 * a[tiny] ** 2)
    return np.clip(p, 0.0, 1.0)


def anderson_darling(x, *, sorted_x=None) -> AndersonDarlingResult:
    """Anderson–Darling normality test along the last axis of ``x``.

    Parameters
    ----------
    x:
        Array of shape ``(..., n)`` with ``n >= 8`` samples per group.
    sorted_x:
        Optional presorted copy of ``x`` along the last axis (shared with
        Shapiro–Wilk by the fused battery).  Must equal
        ``np.sort(x, axis=-1)``; the result is unchanged.

    Returns
    -------
    AndersonDarlingResult
    """
    arr = np.asarray(x, dtype=np.float64)
    n = arr.shape[-1]
    if n < 8:
        raise ValueError(f"Anderson–Darling test requires n >= 8 samples, got {n}")
    sorted_arr = np.sort(arr, axis=-1) if sorted_x is None else np.asarray(sorted_x)
    mean = sorted_arr.mean(axis=-1, keepdims=True)
    std = sorted_arr.std(axis=-1, ddof=1, keepdims=True)
    degenerate = (std <= 0).reshape(std.shape[:-1])
    safe_std = np.where(std > 0, std, 1.0)
    y = (sorted_arr - mean) / safe_std
    cdf = ndtr(y)
    eps = np.finfo(np.float64).tiny
    log_cdf = np.log(np.clip(cdf, eps, 1.0))
    log_sf = np.log(np.clip(1.0 - cdf[..., ::-1], eps, 1.0))
    i = np.arange(1, n + 1, dtype=np.float64)
    a2 = -n - np.sum((2.0 * i - 1.0) / n * (log_cdf + log_sf), axis=-1)
    a2_star = a2 * (1.0 + 0.75 / n + 2.25 / (n * n))
    pvalue = _approximate_pvalue(a2_star)
    # Constant groups: force a rejection (A² is undefined; the measurement
    # pipeline treats an all-identical arrival vector as trivially non-normal).
    a2 = np.where(degenerate, np.inf, a2)
    a2_star = np.where(degenerate, np.inf, a2_star)
    pvalue = np.where(degenerate, 0.0, pvalue)
    return AndersonDarlingResult(
        statistic=np.asarray(a2_star),
        raw_statistic=np.asarray(a2),
        pvalue=np.asarray(pvalue),
    )
