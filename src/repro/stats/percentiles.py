"""Percentile utilities behind the paper's percentile plots (Figures 4, 6, 8).

The figures plot, for every application iteration, the {5, 25, 50, 75, 95}th
percentiles of the 3840 thread-arrival samples collected for that iteration
(48 threads × 8 processes × 10 trials).  :func:`percentile_table` produces
exactly that matrix; :class:`PercentileSeries` wraps it with convenience
accessors for the analysis layer (IQR trajectories, section means, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

#: Percentiles used by the paper's plots.
DEFAULT_PERCENTILES: Tuple[float, ...] = (5.0, 25.0, 50.0, 75.0, 95.0)


def iqr(x, axis: int = -1) -> np.ndarray:
    """Inter-quartile range (75th − 25th percentile) along ``axis``."""
    arr = np.asarray(x, dtype=np.float64)
    q75, q25 = np.percentile(arr, [75.0, 25.0], axis=axis)
    return q75 - q25


def percentile_table(
    x, percentiles: Sequence[float] = DEFAULT_PERCENTILES, axis: int = -1
) -> np.ndarray:
    """Percentiles of ``x`` along ``axis``; result shape ``(len(percentiles), ...)``."""
    arr = np.asarray(x, dtype=np.float64)
    return np.percentile(arr, list(percentiles), axis=axis)


@dataclass
class PercentileSeries:
    """Per-iteration percentile trajectories for one application.

    Attributes
    ----------
    iterations:
        Application-iteration indices (x axis of Figures 4/6/8).
    percentiles:
        The percentile levels, e.g. ``(5, 25, 50, 75, 95)``.
    values:
        Matrix of shape ``(len(percentiles), len(iterations))`` in the same
        time unit as the input samples.
    unit:
        Unit label for reports (default milliseconds, as in the figures).
    """

    iterations: np.ndarray
    percentiles: Tuple[float, ...]
    values: np.ndarray
    unit: str = "ms"

    def __post_init__(self) -> None:
        self.iterations = np.asarray(self.iterations)
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.shape != (len(self.percentiles), len(self.iterations)):
            raise ValueError(
                "values must have shape (n_percentiles, n_iterations); got "
                f"{self.values.shape}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def from_samples(
        cls,
        samples_by_iteration: np.ndarray,
        percentiles: Sequence[float] = DEFAULT_PERCENTILES,
        unit: str = "ms",
    ) -> "PercentileSeries":
        """Build a series from a ``(n_iterations, n_samples)`` matrix."""
        matrix = np.asarray(samples_by_iteration, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("samples_by_iteration must be 2-D")
        values = percentile_table(matrix, percentiles, axis=-1)
        return cls(
            iterations=np.arange(matrix.shape[0]),
            percentiles=tuple(percentiles),
            values=values,
            unit=unit,
        )

    # ------------------------------------------------------------------
    def series(self, percentile: float) -> np.ndarray:
        """Trajectory of one percentile level across iterations."""
        for idx, level in enumerate(self.percentiles):
            if abs(level - percentile) < 1e-9:
                return self.values[idx]
        raise KeyError(f"percentile {percentile} not in {self.percentiles}")

    @property
    def median(self) -> np.ndarray:
        return self.series(50.0)

    @property
    def iqr(self) -> np.ndarray:
        """Per-iteration inter-quartile range."""
        return self.series(75.0) - self.series(25.0)

    def iqr_summary(self, iteration_slice: slice = slice(None)) -> Dict[str, float]:
        """Mean and maximum IQR over a range of iterations (paper §4.2)."""
        window = self.iqr[iteration_slice]
        return {"mean": float(window.mean()), "max": float(window.max())}

    def mean_median(self, iteration_slice: slice = slice(None)) -> float:
        """Mean of the per-iteration medians (the paper's 'mean median')."""
        return float(self.median[iteration_slice].mean())

    def skew_direction(self) -> str:
        """'early' when low percentiles sit further from the median than high ones.

        This is the observation the paper makes for MiniFE ("the 5th and 25th
        percentiles are generally further from the median than the 95th and
        75th"), indicating frequent early arrivals.
        """
        low_gap = float(np.mean(self.median - self.series(5.0)))
        high_gap = float(np.mean(self.series(95.0) - self.median))
        if low_gap > high_gap * 1.05:
            return "early"
        if high_gap > low_gap * 1.05:
            return "late"
        return "symmetric"

    def to_dict(self) -> Dict[str, list]:
        """JSON-friendly representation (used by the figure exporters)."""
        payload = {"iteration": self.iterations.tolist(), "unit": self.unit}
        for idx, level in enumerate(self.percentiles):
            payload[f"p{level:g}"] = self.values[idx].tolist()
        return payload
