"""Statistical machinery for thread-arrival-time analysis.

The paper runs three normality tests — D'Agostino's K² omnibus test,
Shapiro–Wilk and Anderson–Darling — on 16 000 process-iteration groups per
application (48 samples each) plus coarser aggregations.  SciPy implements all
three, but only one sample at a time; this subpackage provides **batch
vectorised** implementations (one call handles a ``(groups, n)`` matrix) that
are validated against SciPy in the test suite and used to regenerate Table 1
at full paper scale in seconds.

Public entry points
-------------------
* :func:`~repro.stats.dagostino.dagostino_k2` — K² omnibus test.
* :func:`~repro.stats.shapiro.shapiro_wilk` — Shapiro–Wilk W (Royston AS R94).
* :func:`~repro.stats.anderson.anderson_darling` — Anderson–Darling A².
* :class:`~repro.stats.battery.NormalityBattery` — runs all three and reports
  pass rates the way Table 1 does.
* :mod:`~repro.stats.percentiles` / :mod:`~repro.stats.histogram` — the
  percentile-plot and fixed-bin-width histogram primitives behind Figures 3–9.
* :mod:`~repro.stats.streaming` / :mod:`~repro.stats.sketch` — mergeable
  one-pass accumulators (moments, lattice histograms, percentile sketches)
  behind the shard-streaming analysis passes of :mod:`repro.analysis`.
"""

from repro.stats.anderson import AndersonDarlingResult, anderson_darling
from repro.stats.battery import NormalityBattery, NormalityReport, TestOutcome
from repro.stats.dagostino import DAgostinoResult, dagostino_k2, kurtosis_test, skewness_test
from repro.stats.histogram import FixedWidthHistogram, fixed_width_histogram
from repro.stats.moments import kurtosis, skewness, standardize
from repro.stats.percentiles import PercentileSeries, iqr, percentile_table
from repro.stats.shapiro import ShapiroWilkResult, shapiro_wilk
from repro.stats.sketch import BoundedTopK, P2Quantile, PercentileSketch
from repro.stats.streaming import StreamingHistogram, StreamingMoments

__all__ = [
    "dagostino_k2",
    "skewness_test",
    "kurtosis_test",
    "DAgostinoResult",
    "shapiro_wilk",
    "ShapiroWilkResult",
    "anderson_darling",
    "AndersonDarlingResult",
    "NormalityBattery",
    "NormalityReport",
    "TestOutcome",
    "skewness",
    "kurtosis",
    "standardize",
    "iqr",
    "percentile_table",
    "PercentileSeries",
    "fixed_width_histogram",
    "FixedWidthHistogram",
    "StreamingMoments",
    "StreamingHistogram",
    "P2Quantile",
    "PercentileSketch",
    "BoundedTopK",
]
