"""One-pass, mergeable accumulators for sharded campaign analysis.

The streaming analysis engine (:mod:`repro.analysis`) folds campaign shards
into per-pass accumulators instead of materialising the merged
:class:`~repro.core.timing.TimingDataset`.  That requires *mergeable*
summaries: statistics that can be computed per shard and combined in any
order without revisiting the samples.  This module provides two of them:

* :class:`StreamingMoments` — count, mean and the second-to-fourth central
  moment sums, updated one batch at a time and merged with Chan's parallel
  update formulas (the higher-moment generalisation due to Pébay).  Exposes
  the same "biased" skewness/kurtosis definitions as
  :mod:`repro.stats.moments`.
* :class:`StreamingHistogram` — fixed-bin-width counts on the absolute
  lattice ``k * bin_width``.  Because every
  :func:`~repro.stats.histogram.fixed_width_histogram` aligns its origin to
  that lattice (``origin = floor(min / width) * width``), per-shard
  histograms merge *exactly*: bin counts are integers on a shared grid, and
  the finalised histogram reproduces the edges the merged-dataset call would
  have produced (the exact minimum and maximum are tracked alongside the
  counts).

Percentile sketches — the third mergeable primitive — live in
:mod:`repro.stats.sketch`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.stats.histogram import (
    FixedWidthHistogram,
    fixed_width_histogram,
    lattice_layout,
)


class StreamingMoments:
    """Mergeable one-pass moments (count, mean, M2, M3, M4, min, max).

    ``update`` folds one batch of samples in; ``merge`` combines two
    accumulators via the pairwise update of Chan et al. (extended to the
    third and fourth moments by Pébay), so per-shard accumulators pooled in
    any order agree with the moments of the pooled samples to floating-point
    accuracy.

    The derived :attr:`skewness` (Fisher–Pearson ``g1``) and
    :attr:`kurtosis` (Pearson ``b2``) match the biased definitions of
    :mod:`repro.stats.moments`.
    """

    __slots__ = ("n", "mean", "m2", "m3", "m4", "minimum", "maximum")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.m3 = 0.0
        self.m4 = 0.0
        self.minimum = np.inf
        self.maximum = -np.inf

    # ------------------------------------------------------------------
    @classmethod
    def from_samples(cls, samples) -> "StreamingMoments":
        """Accumulator equivalent to one ``update`` with ``samples``."""
        acc = cls()
        acc.update(samples)
        return acc

    def update(self, samples) -> "StreamingMoments":
        """Fold a batch of samples in (vectorised; returns ``self``)."""
        arr = np.asarray(samples, dtype=np.float64).ravel()
        if arr.size == 0:
            return self
        batch = StreamingMoments()
        batch.n = int(arr.size)
        batch.mean = float(arr.mean())
        deltas = arr - batch.mean
        sq = deltas * deltas
        batch.m2 = float(sq.sum())
        batch.m3 = float((sq * deltas).sum())
        batch.m4 = float((sq * sq).sum())
        batch.minimum = float(arr.min())
        batch.maximum = float(arr.max())
        self._combine(batch)
        return self

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """New accumulator equivalent to pooling both sample sets."""
        merged = StreamingMoments()
        merged._combine(self)
        merged._combine(other)
        return merged

    def _combine(self, other: "StreamingMoments") -> None:
        if other.n == 0:
            return
        if self.n == 0:
            self.n = other.n
            self.mean = other.mean
            self.m2, self.m3, self.m4 = other.m2, other.m3, other.m4
            self.minimum, self.maximum = other.minimum, other.maximum
            return
        na, nb = float(self.n), float(other.n)
        n = na + nb
        delta = other.mean - self.mean
        delta_n = delta / n
        m2 = self.m2 + other.m2 + delta * delta_n * na * nb
        m3 = (
            self.m3
            + other.m3
            + delta * delta_n * delta_n * na * nb * (na - nb)
            + 3.0 * delta_n * (na * other.m2 - nb * self.m2)
        )
        m4 = (
            self.m4
            + other.m4
            + delta * delta_n**3 * na * nb * (na * na - na * nb + nb * nb)
            + 6.0 * delta_n * delta_n * (na * na * other.m2 + nb * nb * self.m2)
            + 4.0 * delta_n * (na * other.m3 - nb * self.m3)
        )
        self.mean += delta_n * nb
        self.m2, self.m3, self.m4 = m2, m3, m4
        self.n = int(n)
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self.n

    def variance(self, ddof: int = 0) -> float:
        """Sample variance (population by default, matching the biased moments)."""
        if self.n - ddof <= 0:
            return 0.0
        return self.m2 / (self.n - ddof)

    def std(self, ddof: int = 0) -> float:
        return float(np.sqrt(self.variance(ddof)))

    @property
    def skewness(self) -> float:
        """Fisher–Pearson ``g1 = m3 / m2**1.5`` (biased central moments)."""
        if self.n == 0 or self.m2 <= 0.0:
            return 0.0
        m2 = self.m2 / self.n
        m3 = self.m3 / self.n
        return float(m3 / np.power(m2, 1.5))

    @property
    def kurtosis(self) -> float:
        """Pearson ``b2 = m4 / m2**2`` (subtract 3 for the Fisher form)."""
        if self.n == 0 or self.m2 <= 0.0:
            return 0.0
        m2 = self.m2 / self.n
        m4 = self.m4 / self.n
        return float(m4 / (m2 * m2))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingMoments(n={self.n}, mean={self.mean:.6g}, "
            f"std={self.std():.6g})"
        )


class StreamingHistogram:
    """Mergeable fixed-bin-width histogram accumulator.

    Per-batch histograms live on the absolute lattice ``k * bin_width``, and
    :func:`~repro.stats.histogram.fixed_width_histogram` bins every sample
    by its integer lattice index (``floor(x / width)``) — a per-sample rule
    independent of the rest of the batch — so they combine *exactly*
    through :meth:`FixedWidthHistogram.merge`: integer counts added on a
    shared grid, regardless of how the samples were batched or in which
    order the partials merge.  The exact minimum and maximum samples are
    tracked alongside so :meth:`finalize` can rebuild the edges with the
    very :func:`~repro.stats.histogram.lattice_layout` the merged-dataset
    path uses.
    """

    __slots__ = ("bin_width", "unit", "n", "minimum", "maximum", "_hist")

    def __init__(self, bin_width: float, *, unit: str = "s") -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.bin_width = float(bin_width)
        self.unit = unit
        self.n = 0
        self.minimum = np.inf
        self.maximum = -np.inf
        #: running count grid (None until the first update)
        self._hist: Optional[FixedWidthHistogram] = None

    # ------------------------------------------------------------------
    def update(self, samples) -> "StreamingHistogram":
        """Fold a batch of samples in (returns ``self``)."""
        arr = np.asarray(samples, dtype=np.float64).ravel()
        if arr.size == 0:
            return self
        hist = fixed_width_histogram(arr, self.bin_width, unit=self.unit)
        self._hist = hist if self._hist is None else self._hist.merge(hist)
        self.n += int(arr.size)
        self.minimum = min(self.minimum, float(arr.min()))
        self.maximum = max(self.maximum, float(arr.max()))
        return self

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """New accumulator holding the union of both count grids."""
        if abs(self.bin_width - other.bin_width) > 1e-15 * max(self.bin_width, 1.0):
            raise ValueError("cannot merge streaming histograms of unequal bin width")
        merged = StreamingHistogram(self.bin_width, unit=self.unit)
        grids = [part._hist for part in (self, other) if part._hist is not None]
        if len(grids) == 2:
            merged._hist = grids[0].merge(grids[1])
        elif grids:
            merged._hist = grids[0]
        merged.n = self.n + other.n
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    # ------------------------------------------------------------------
    def finalize(self) -> FixedWidthHistogram:
        """The merged histogram, with the merged-dataset path's edges.

        Edges are re-derived from the tracked global minimum/maximum with the
        same origin/bin-count formula :func:`fixed_width_histogram` uses, so
        the result is indistinguishable from histogramming the pooled
        samples directly.
        """
        if self.n == 0 or self._hist is None:
            raise ValueError("cannot finalize an empty streaming histogram")
        width = self.bin_width
        _, origin, n_bins = lattice_layout(self.minimum, self.maximum, width)
        edges = origin + width * np.arange(n_bins + 1)
        counts = np.zeros(n_bins, dtype=np.int64)
        start = int(round((self._hist.edges[0] - origin) / width))
        stop = start + self._hist.n_bins
        # per-batch +1 bin-count slack can leave trailing (necessarily
        # empty) grid cells beyond the global edge range — trim them
        usable = min(stop, n_bins)
        accumulated = np.asarray(self._hist.counts, dtype=np.int64)
        if start < 0 or np.any(accumulated[max(usable - start, 0) :] != 0):
            raise AssertionError("streaming histogram counts fell off the grid")
        counts[start:usable] = accumulated[: usable - start]
        return FixedWidthHistogram(
            edges=edges, counts=counts, bin_width=width, unit=self.unit
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bins = self._hist.n_bins if self._hist is not None else 0
        return (
            f"StreamingHistogram(bin_width={self.bin_width}, n={self.n}, "
            f"bins={bins})"
        )
